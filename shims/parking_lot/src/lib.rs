//! Offline stand-in for `parking_lot`.
//!
//! Wraps the std synchronization primitives behind the poison-free
//! `parking_lot` API surface this workspace uses (`lock()` returning the
//! guard directly). Poisoned locks are recovered transparently: a panicking
//! rank thread already propagates its panic through the universe launcher,
//! so lock poisoning adds no information here.

use std::ops::{Deref, DerefMut};

/// Mutual exclusion lock with the `parking_lot` (non-poisoning) interface.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// Guard returned by [`Mutex::lock`].
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: self
                .inner
                .lock()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: g }),
            Err(std::sync::TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: poison.into_inner(),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

/// Reader-writer lock with the `parking_lot` (non-poisoning) interface.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

/// Shared guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockReadGuard<'a, T>,
}

/// Exclusive guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: std::sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Create the lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: std::sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }

    /// Acquire the exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(|poison| poison.into_inner()),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_roundtrip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn mutex_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1, 2]);
        assert_eq!(l.read().len(), 2);
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn try_lock_contention() {
        let m = Mutex::new(());
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }
}
