//! Offline stand-in for `crossbeam-channel`.
//!
//! Implements the unbounded MPMC channel subset the runtime uses
//! (`unbounded`, `Sender::send`, `Receiver::recv` / `try_recv`,
//! disconnect-on-drop semantics) over a `Mutex<VecDeque>` + `Condvar`.
//! Throughput is lower than real crossbeam but semantics are identical,
//! including FIFO ordering per channel — the property the fabric's
//! non-overtaking guarantee rests on.

use std::collections::VecDeque;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error returned by [`Sender::send`] when every receiver is gone; carries
/// the unsent message back.
#[derive(PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> fmt::Debug for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("SendError(..)")
    }
}

impl<T> fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("sending on a disconnected channel")
    }
}

/// Error returned by [`Receiver::recv`]: channel empty and all senders gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("receiving on an empty and disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Channel currently has no message.
    Empty,
    /// Channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for TryRecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TryRecvError::Empty => f.write_str("receiving on an empty channel"),
            TryRecvError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for TryRecvError {}

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived within the timeout.
    Timeout,
    /// Channel is empty and every sender has been dropped.
    Disconnected,
}

impl fmt::Display for RecvTimeoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecvTimeoutError::Timeout => f.write_str("timed out waiting on channel"),
            RecvTimeoutError::Disconnected => {
                f.write_str("receiving on an empty and disconnected channel")
            }
        }
    }
}

impl std::error::Error for RecvTimeoutError {}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    avail: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

/// Sending half of the channel; cloneable.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// Receiving half of the channel; cloneable.
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

/// Create an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        avail: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

impl<T> Sender<T> {
    /// Enqueue a message; fails only when every receiver is dropped.
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        if self.shared.receivers.load(Ordering::Acquire) == 0 {
            return Err(SendError(msg));
        }
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        q.push_back(msg);
        drop(q);
        self.shared.avail.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.shared.senders.fetch_add(1, Ordering::AcqRel);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
            // Last sender: wake blocked receivers so they observe disconnect.
            self.shared.avail.notify_all();
        }
    }
}

impl<T> fmt::Debug for Sender<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Sender { .. }")
    }
}

impl<T> Receiver<T> {
    /// Block until a message arrives; fails when the channel is empty and
    /// every sender is dropped.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvError);
            }
            q = self.shared.avail.wait(q).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Block until a message arrives or `timeout` elapses.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Result<T, RecvTimeoutError> {
        let deadline = std::time::Instant::now() + timeout;
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = std::time::Instant::now();
            let Some(remaining) = deadline
                .checked_duration_since(now)
                .filter(|d| !d.is_zero())
            else {
                return Err(RecvTimeoutError::Timeout);
            };
            let (guard, _res) = self
                .shared
                .avail
                .wait_timeout(q, remaining)
                .unwrap_or_else(|p| p.into_inner());
            q = guard;
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut q = self.shared.queue.lock().unwrap_or_else(|p| p.into_inner());
        if let Some(msg) = q.pop_front() {
            return Ok(msg);
        }
        if self.shared.senders.load(Ordering::Acquire) == 0 {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Number of messages currently queued.
    pub fn len(&self) -> usize {
        self.shared
            .queue
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .len()
    }

    /// True if no message is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        self.shared.receivers.fetch_add(1, Ordering::AcqRel);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
    }
}

impl<T> fmt::Debug for Receiver<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Receiver { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_preserved() {
        let (tx, rx) = unbounded();
        for i in 0..100 {
            tx.send(i).unwrap();
        }
        for i in 0..100 {
            assert_eq!(rx.recv().unwrap(), i);
        }
    }

    #[test]
    fn try_recv_empty_then_value() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(9).unwrap();
        assert_eq!(rx.try_recv(), Ok(9));
    }

    #[test]
    fn recv_fails_after_senders_drop() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(1).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_fails_after_receivers_drop() {
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn blocking_recv_wakes_on_send() {
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv().unwrap());
        std::thread::sleep(std::time::Duration::from_millis(20));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn recv_timeout_times_out_then_delivers() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        tx.send(3).unwrap();
        assert_eq!(rx.recv_timeout(Duration::from_millis(5)), Ok(3));
        drop(tx);
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Disconnected)
        );
    }

    #[test]
    fn recv_timeout_wakes_on_send() {
        use std::time::Duration;
        let (tx, rx) = unbounded::<u8>();
        let h = std::thread::spawn(move || rx.recv_timeout(Duration::from_secs(5)).unwrap());
        std::thread::sleep(Duration::from_millis(10));
        tx.send(42).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }

    #[test]
    fn mpmc_all_messages_delivered_once() {
        let (tx, rx) = unbounded::<u64>();
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let tx = tx.clone();
                std::thread::spawn(move || {
                    for i in 0..250u64 {
                        tx.send(p * 1000 + i).unwrap();
                    }
                })
            })
            .collect();
        drop(tx);
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let rx = rx.clone();
                std::thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Ok(v) = rx.recv() {
                        got.push(v);
                    }
                    got
                })
            })
            .collect();
        drop(rx);
        for p in producers {
            p.join().unwrap();
        }
        let mut all: Vec<u64> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        let expected: Vec<u64> = (0..4)
            .flat_map(|p| (0..250).map(move |i| p * 1000 + i))
            .collect();
        assert_eq!(all, expected);
    }
}
