//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace
//! patches `rand` to this minimal implementation of the API surface the
//! repo actually uses: [`RngCore`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension trait with `gen_range` / `gen_bool`. Generators are
//! deterministic and high-quality (xoshiro-family), which is all the test
//! and benchmark code here relies on — nothing in this workspace needs
//! cryptographic randomness or bit-compatibility with upstream `rand`.

/// Core random-number-generation interface.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a small seed.
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    /// Draw one uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
                let v = self.start as f64 + unit * (self.end as f64 - self.start as f64);
                if (v as $t) < self.end { v as $t } else { self.start }
            }
        }
    )*};
}
float_sample_range!(f32, f64);

/// Convenience extension methods, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Uniform sample from a range (half-open or inclusive).
    fn gen_range<T, B: SampleRange<T>>(&mut self, range: B) -> T {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        ((self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Namespaces mirroring the upstream crate layout.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Small fast generator (xoshiro256**), stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::StdRng;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-3i64..4);
            assert!((-3..4).contains(&v));
            let u: usize = rng.gen_range(1..5);
            assert!((1..5).contains(&u));
            let f: f64 = rng.gen_range(0.0f64..1.0);
            assert!((0.0..1.0).contains(&f));
            let inc: u32 = rng.gen_range(2u32..=2);
            assert_eq!(inc, 2);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
