//! Offline stand-in for `rand_chacha`.
//!
//! Provides a deterministic, seedable generator under the familiar
//! [`ChaCha8Rng`] name. The underlying algorithm is xoshiro256** rather
//! than ChaCha — every use in this workspace only needs a reproducible
//! stream, not the ChaCha keystream — seeded identically via splitmix64.

use rand::{RngCore, SeedableRng};

/// Deterministic seedable generator (API-compatible subset of the real
/// `ChaCha8Rng`: `seed_from_u64` + `RngCore`).
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    inner: rand::rngs::StdRng,
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        ChaCha8Rng {
            inner: rand::rngs::StdRng::seed_from_u64(seed),
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// Alias matching the other ChaCha variants upstream exports.
pub type ChaCha12Rng = ChaCha8Rng;
/// Alias matching the other ChaCha variants upstream exports.
pub type ChaCha20Rng = ChaCha8Rng;

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_reproduce() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let va: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn works_through_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let x: usize = rng.gen_range(0..10);
        assert!(x < 10);
    }
}
