//! Test configuration, case errors, and the deterministic RNG driving
//! strategy sampling.

use std::fmt;

/// Why a single test case failed (or was rejected).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The case hit a failed assertion or explicit `fail`.
    Fail(String),
    /// The case asked to be discarded (`prop_assume`-style).
    Reject(String),
}

impl TestCaseError {
    /// Fail the current case with a reason.
    pub fn fail(reason: impl fmt::Display) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// Discard the current case with a reason.
    pub fn reject(reason: impl fmt::Display) -> Self {
        TestCaseError::Reject(reason.to_string())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(r) => write!(f, "{r}"),
            TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
        }
    }
}

impl std::error::Error for TestCaseError {}

/// Result type of one property-test case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` configuration. Only the fields the workspace references
/// are meaningful; the rest exist for struct-update compatibility.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to sample and run.
    pub cases: u32,
    /// Accepted for API compatibility; this shim does not shrink.
    pub max_shrink_iters: u32,
    /// Accepted for API compatibility; rejects simply re-sample upstream,
    /// here they fail the test (nothing in this workspace rejects).
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 1024,
            max_global_rejects: 1024,
        }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }

    /// The case count after applying the `PROPTEST_CASES` env override.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

/// Deterministic xoshiro256** generator used for sampling.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seed from an arbitrary name (module path + test name), so each test
    /// gets a fixed, reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        // FNV-1a fold of the name into a 64-bit seed.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self::from_seed(h)
    }

    /// Seed from a 64-bit value via splitmix64 state expansion.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams_match() {
        let mut a = TestRng::deterministic("some::test");
        let mut b = TestRng::deterministic("some::test");
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn distinct_names_distinct_streams() {
        let mut a = TestRng::deterministic("a");
        let mut b = TestRng::deterministic("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn config_with_cases() {
        let c = ProptestConfig::with_cases(48);
        assert_eq!(c.cases, 48);
        let d = ProptestConfig {
            cases: 24,
            max_shrink_iters: 64,
            ..ProptestConfig::default()
        };
        assert_eq!(d.cases, 24);
        assert_eq!(d.max_shrink_iters, 64);
    }

    #[test]
    fn unit_f64_in_range() {
        let mut rng = TestRng::from_seed(3);
        for _ in 0..1000 {
            let u = rng.unit_f64();
            assert!((0.0..1.0).contains(&u));
        }
    }
}
