//! Sampling strategies: the composable core of the shim.
//!
//! A strategy is anything that can draw a value from a [`TestRng`].
//! Upstream proptest separates value *trees* (for shrinking) from
//! strategies; without shrinking the two collapse into plain samplers,
//! which keeps every combinator a few lines.

use std::ops::{Range, RangeInclusive};
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A source of sampled values.
pub trait Strategy {
    /// The type of value produced.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every sampled value.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Build a second strategy from every sampled value and sample that.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { inner: self, f }
    }

    /// Erase the concrete strategy type (cheap, `Arc`-backed, cloneable).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }

    /// Recursive strategy: `recurse` wraps the current strategy into a
    /// deeper one; each level mixes the base case back in so sampled
    /// recursion depth varies from 0 to `depth`.
    fn prop_recursive<S2, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        S2: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> S2 + 'static,
    {
        let base = self.boxed();
        let mut current = base.clone();
        for _ in 0..depth {
            let deeper = recurse(current).boxed();
            current = Union::with_weights(vec![(1, base.clone()), (2, deeper)]).boxed();
        }
        current
    }
}

/// Object-safe sampling, used behind [`BoxedStrategy`].
trait DynStrategy<T> {
    fn sample_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn sample_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.sample(rng)
    }
}

/// Type-erased, cloneable strategy handle.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy(..)")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample_dyn(rng)
    }
}

/// Strategy producing one fixed (cloned) value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, S2, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    S2: Strategy,
    F: Fn(S::Value) -> S2,
{
    type Value = S2::Value;
    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.sample(rng)).sample(rng)
    }
}

/// Weighted choice among strategies of one value type (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T> Union<T> {
    /// Uniform choice.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        Self::with_weights(arms.into_iter().map(|s| (1, s)).collect())
    }

    /// Weighted choice.
    pub fn with_weights(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total_weight = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total_weight > 0, "prop_oneof! needs positive total weight");
        Union { arms, total_weight }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total_weight);
        for (w, arm) in &self.arms {
            if pick < *w as u64 {
                return arm.sample(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights exhausted")
    }
}

// ----- ranges as strategies ------------------------------------------------

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                (lo as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}
int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let v = self.start as f64
                    + rng.unit_f64() * (self.end as f64 - self.start as f64);
                if (v as $t) < self.end { v as $t } else { self.start }
            }
        }
    )*};
}
float_range_strategy!(f32, f64);

// ----- tuples of strategies ------------------------------------------------

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    };
}
tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
tuple_strategy!(A, B, C, D, E, F, G);
tuple_strategy!(A, B, C, D, E, F, G, H);
tuple_strategy!(A, B, C, D, E, F, G, H, I);
tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::from_seed(11)
    }

    #[test]
    fn just_clones_value() {
        let s = Just(vec![1, 2, 3]);
        assert_eq!(s.sample(&mut rng()), vec![1, 2, 3]);
    }

    #[test]
    fn map_and_flat_map_compose() {
        let s = (1usize..4).prop_map(|n| n * 10);
        let v = s.sample(&mut rng());
        assert!([10, 20, 30].contains(&v));
        let f = (1usize..3).prop_flat_map(|n| (0usize..n).prop_map(move |k| (n, k)));
        let (n, k) = f.sample(&mut rng());
        assert!(k < n);
    }

    #[test]
    fn union_uniform_hits_all_arms() {
        let u = Union::new(vec![
            Just(1u8).boxed(),
            Just(2u8).boxed(),
            Just(3u8).boxed(),
        ]);
        let mut seen = [false; 4];
        let mut r = rng();
        for _ in 0..200 {
            seen[u.sample(&mut r) as usize] = true;
        }
        assert!(seen[1] && seen[2] && seen[3]);
    }

    #[test]
    fn recursive_strategy_bounded_depth() {
        // depth counter: leaf = 0, recursion adds 1
        let leaf = Just(0u32);
        let s = leaf.prop_recursive(4, 16, 2, |inner| inner.prop_map(|d| d + 1));
        let mut r = rng();
        let mut max = 0;
        for _ in 0..500 {
            max = max.max(s.sample(&mut r));
        }
        assert!(max <= 4);
        assert!(max >= 1, "recursion never taken");
    }

    #[test]
    fn int_ranges_in_bounds() {
        let mut r = rng();
        for _ in 0..500 {
            let v = (-7i64..8).sample(&mut r);
            assert!((-7..8).contains(&v));
            let w = (3usize..=3).sample(&mut r);
            assert_eq!(w, 3);
        }
    }

    #[test]
    fn tuple_samples_componentwise() {
        let s = (0u32..3, 10usize..12);
        let (a, b) = s.sample(&mut rng());
        assert!(a < 3);
        assert!((10..12).contains(&b));
    }
}
