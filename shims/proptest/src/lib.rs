//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace patches
//! `proptest` to this self-contained implementation of the subset the test
//! suites use: composable sampling [`strategy::Strategy`] values (ranges,
//! tuples, `Just`, `prop_map` / `prop_flat_map` / `prop_recursive`,
//! `prop_oneof!`, `collection::vec`, `any::<T>()`), the [`proptest!`] test
//! macro, and the `prop_assert*` family returning
//! [`test_runner::TestCaseError`].
//!
//! Differences from upstream, deliberate:
//! * **No shrinking.** A failing case reports the generated inputs (via
//!   `Debug`) and the deterministic per-test seed instead of a minimized
//!   counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from its module
//!   path and name, so failures reproduce exactly across runs; set
//!   `PROPTEST_CASES` to override the case count.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Common imports, mirroring `proptest::prelude`.
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    pub mod prop {
        //! `prop::` namespace alias used by some upstream idioms.
        pub use crate::collection;
    }
}

/// Define property tests: each `fn name(pat in strategy, ...) { body }`
/// expands to a `#[test]` running `cases` sampled inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!{ ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($pat:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let seed_name = concat!(module_path!(), "::", stringify!($name));
            let mut rng = $crate::test_runner::TestRng::deterministic(seed_name);
            let strat = ($($strat,)+);
            for case in 0..cases {
                let ($($pat,)+) = $crate::strategy::Strategy::sample(&strat, &mut rng);
                let inputs = format!("{:?}", ($(&$pat,)+));
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (move || { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{} (seed name {:?}): {}\n  inputs: {}",
                        stringify!($name), case + 1, cases, seed_name, e, inputs
                    );
                }
            }
        }
        $crate::__proptest_items!{ ($cfg) $($rest)* }
    };
}

/// Assert a condition inside a `proptest!` body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, $($fmt)+);
    }};
}

/// Choose uniformly among several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
