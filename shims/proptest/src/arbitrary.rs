//! `any::<T>()` — whole-domain strategies for primitives.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical whole-domain strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn sample_any(rng: &mut TestRng) -> Self;
}

/// Strategy over the full domain of `T` (see [`any`]).
#[derive(Debug)]
pub struct Any<T>(PhantomData<T>);

impl<T> Clone for Any<T> {
    fn clone(&self) -> Self {
        Any(PhantomData)
    }
}

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::sample_any(rng)
    }
}

impl Arbitrary for bool {
    fn sample_any(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn sample_any(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for f64 {
    fn sample_any(rng: &mut TestRng) -> f64 {
        // finite values only: keeps arithmetic-heavy properties meaningful
        rng.unit_f64() * 2e6 - 1e6
    }
}

impl Arbitrary for f32 {
    fn sample_any(rng: &mut TestRng) -> f32 {
        f64::sample_any(rng) as f32
    }
}

impl Arbitrary for () {
    fn sample_any(_rng: &mut TestRng) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn any_bool_takes_both_values() {
        let mut rng = TestRng::from_seed(5);
        let s = any::<bool>();
        let mut seen = [false; 2];
        for _ in 0..64 {
            seen[s.sample(&mut rng) as usize] = true;
        }
        assert!(seen[0] && seen[1]);
    }

    #[test]
    fn any_u8_covers_range_edges_eventually() {
        let mut rng = TestRng::from_seed(6);
        let s = any::<u8>();
        let mut lo = u8::MAX;
        let mut hi = u8::MIN;
        for _ in 0..10_000 {
            let v = s.sample(&mut rng);
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(lo < 8 && hi > 247, "poor coverage: lo={lo} hi={hi}");
    }
}
