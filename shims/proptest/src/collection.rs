//! Collection strategies (`proptest::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Length specification for [`vec`]: an exact size, a half-open range, or
/// an inclusive range.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    lo: usize,
    /// Inclusive upper bound.
    hi: usize,
}

impl SizeRange {
    fn sample(&self, rng: &mut TestRng) -> usize {
        let span = (self.hi - self.lo + 1) as u64;
        self.lo + rng.below(span) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy for `Vec`s with element strategy `element` and length drawn
/// from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Result of [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let len = self.size.sample(rng);
        (0..len).map(|_| self.element.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_size() {
        let s = vec(0u8..10, 3);
        let v = s.sample(&mut TestRng::from_seed(1));
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn ranged_size_within_bounds() {
        let s = vec(0u8..10, 1..5);
        let mut rng = TestRng::from_seed(2);
        for _ in 0..200 {
            let v = s.sample(&mut rng);
            assert!((1..5).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 10));
        }
    }

    #[test]
    fn inclusive_size() {
        let s = vec(0u8..2, 2..=2);
        assert_eq!(s.sample(&mut TestRng::from_seed(3)).len(), 2);
    }
}
