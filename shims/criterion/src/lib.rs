//! Offline stand-in for `criterion`.
//!
//! Implements the API surface the workspace's benches use — groups,
//! `bench_function` / `bench_with_input`, `iter` / `iter_custom`,
//! `Throughput`, `BenchmarkId`, the `criterion_group!` / `criterion_main!`
//! macros — over a plain wall-clock measurement loop. No statistics, plots,
//! or HTML reports: each benchmark prints one line with mean ns/iter (and
//! derived throughput when declared). Good enough to compare variants in
//! the same process; not a replacement for upstream criterion's rigor.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            measurement_time: Duration::from_millis(300),
            warm_up_time: Duration::from_millis(30),
        }
    }
}

impl Criterion {
    /// Accepted for compatibility; this shim never plots.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Accepted for compatibility; CLI args are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time per benchmark.
    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            throughput: None,
            _criterion: self,
        }
    }

    /// Benchmark a closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let (m, w) = (self.measurement_time, self.warm_up_time);
        run_one("", &id.into_benchmark_id(), None, m, w, &mut f);
        self
    }
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Identifier from the parameter alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Conversion into a benchmark id; implemented for ids and plain names.
pub trait IntoBenchmarkId {
    /// The rendered identifier.
    fn into_benchmark_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> String {
        self
    }
}

/// Declared per-iteration data volume, used to derive throughput.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    measurement_time: Duration,
    warm_up_time: Duration,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility; the shim sizes samples by time alone.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Target measurement time for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Warm-up time for benchmarks in this group.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Declare per-iteration volume for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Benchmark a closure.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.throughput,
            self.measurement_time,
            self.warm_up_time,
            &mut f,
        );
        self
    }

    /// Benchmark a closure against a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &self.name,
            &id.into_benchmark_id(),
            self.throughput,
            self.measurement_time,
            self.warm_up_time,
            &mut |b| f(b, input),
        );
        self
    }

    /// Finish the group (a no-op beyond dropping it).
    pub fn finish(self) {}
}

/// Measurement handle passed to benchmark closures.
pub struct Bencher {
    warm_up_time: Duration,
    measurement_time: Duration,
    /// Total measured time and iterations, filled by `iter*`.
    result: Option<(Duration, u64)>,
}

impl Bencher {
    /// Measure a closure by running it in timed batches until the
    /// measurement budget is spent.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and calibration: find a batch size taking >= ~1 ms.
        let warm_deadline = Instant::now() + self.warm_up_time;
        let mut batch = 1u64;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let took = start.elapsed();
            if took >= Duration::from_millis(1) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
            if Instant::now() >= warm_deadline && took > Duration::ZERO {
                break;
            }
        }
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        while total < self.measurement_time {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            total += start.elapsed();
            iters += batch;
        }
        self.result = Some((total, iters));
    }

    /// Measure with caller-provided timing: `f` runs `iters` iterations
    /// and reports how long they took.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        // One calibration call, then one measured call sized to the budget.
        let probe_iters = 10u64;
        let probe = f(probe_iters).max(Duration::from_nanos(1));
        let per_iter = probe.as_secs_f64() / probe_iters as f64;
        let target = (self.measurement_time.as_secs_f64() / per_iter).clamp(1.0, 1e7);
        let iters = target as u64;
        let total = f(iters);
        self.result = Some((total + probe, iters + probe_iters));
    }
}

fn run_one(
    group: &str,
    id: &str,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    warm_up_time: Duration,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut b = Bencher {
        warm_up_time,
        measurement_time,
        result: None,
    };
    f(&mut b);
    let label = if group.is_empty() {
        id.to_string()
    } else {
        format!("{group}/{id}")
    };
    match b.result {
        None => println!("bench {label}: no measurement recorded"),
        Some((total, iters)) => {
            let ns = total.as_secs_f64() * 1e9 / iters.max(1) as f64;
            let extra = match throughput {
                Some(Throughput::Bytes(bytes)) => {
                    let gib = bytes as f64 / ns; // bytes per ns == GiB-ish/s (1e9 B/s)
                    format!("  ({:.3} GB/s)", gib)
                }
                Some(Throughput::Elements(n)) => {
                    format!("  ({:.1} Melem/s)", n as f64 * 1e3 / ns)
                }
                None => String::new(),
            };
            println!("bench {label}: {ns:>12.1} ns/iter{extra}");
        }
    }
}

/// Declare a benchmark group function (both plain and configured forms).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declare the benchmark binary's `main`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn id_rendering() {
        assert_eq!(BenchmarkId::new("f", 16).into_benchmark_id(), "f/16");
        assert_eq!(
            BenchmarkId::from_parameter("row").into_benchmark_id(),
            "row"
        );
    }

    #[test]
    fn iter_records_measurement() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim_selftest");
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.finish();
    }

    #[test]
    fn iter_custom_records_measurement() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("shim_selftest");
        g.bench_with_input(BenchmarkId::new("custom", 1), &1u64, |b, _| {
            b.iter_custom(Duration::from_nanos)
        });
        g.finish();
    }
}
