//! # cartesian-collectives — facade crate
//!
//! A from-scratch Rust reproduction of *Cartesian Collective Communication*
//! (Träff & Hunold, ICPP 2019). This facade re-exports the workspace
//! crates under one roof; see the individual crates for the full APIs:
//!
//! * [`cartcomm`] — the paper's contribution: `CartComm`, the
//!   message-combining alltoall/allgather schedules, the trivial baseline,
//!   persistent handles, and the distributed-graph baseline collectives.
//! * [`comm`] — the threads-as-ranks message-passing substrate.
//! * [`topo`] — Cartesian/mesh/torus topologies, neighborhoods, stencils.
//! * [`types`] — the derived-datatype engine (zero-copy gather/scatter).
//! * [`sim`] — the α-β network cost simulator and machine profiles.
//! * [`stats`] — the Appendix-A measurement statistics.
//! * [`obs`] — round-level tracing + metrics (the paper's `C`/`V`
//!   accounting, observed at runtime), and the cross-rank profiler:
//!   global round DAG, critical-path analysis, α-β fitting, Perfetto
//!   export (`obs::profile`, driven by the `cartprof` binary).
//!
//! ```
//! use cartesian_collectives::prelude::*;
//!
//! let nb = RelNeighborhood::moore(2, 1).unwrap();
//! let outs = Universe::builder(9).run(|comm| {
//!     let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
//!     let send: Vec<i32> = (0..8).map(|i| i as i32).collect();
//!     let mut recv = vec![0i32; 8];
//!     cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
//!     recv
//! });
//! assert_eq!(outs.len(), 9);
//! ```

pub use cartcomm;
pub use cartcomm_comm as comm;
pub use cartcomm_obs as obs;
pub use cartcomm_sim as sim;
pub use cartcomm_stats as stats;
pub use cartcomm_topo as topo;
pub use cartcomm_types as types;

/// The most commonly used items in one import.
pub mod prelude {
    pub use cartcomm::neighbor::DistGraphComm;
    #[allow(deprecated)]
    pub use cartcomm::ops::Algorithm;
    pub use cartcomm::ops::{Algo, PersistentCollective, WBlock};
    pub use cartcomm::{CartComm, CartError, CartResult};
    pub use cartcomm_comm::{
        Comm, ExchangeBatch, ExchangeOpts, ProfiledRun, SpawnRole, TransportKind, Universe,
    };
    pub use cartcomm_obs::{
        AlphaBetaFit, CriticalPath, MetricsDelta, Obs, PerfettoExport, RingBufferSink, RoundDag,
        TraceCollector, TraceEvent,
    };
    pub use cartcomm_topo::{dims_create, CartTopology, DistGraphTopology, RelNeighborhood};
    pub use cartcomm_types::{Datatype, FlatType, Primitive};
}
