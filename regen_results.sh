#!/bin/sh
# Regenerate every saved experiment output in results/ (see results/README.md).
set -e
cd "$(dirname "$0")"
cargo run -q -p cartcomm-bench --bin table1 > results/table1.txt
cargo run -q -p cartcomm-bench --bin table2 > results/table2.txt
cargo run -q -p cartcomm-bench --bin fig3 > results/fig3_clean.txt
cargo run -q -p cartcomm-bench --bin fig3 -- --quirks > results/fig3_quirks.txt
cargo run -q -p cartcomm-bench --bin fig4 -- --quirks > results/fig4_quirks.txt
cargo run -q -p cartcomm-bench --bin fig5 > results/fig5.txt
cargo run -q -p cartcomm-bench --bin fig6 > results/fig6.txt
cargo run -q -p cartcomm-bench --bin fig6 -- --quirks > results/fig6_quirks.txt
cargo run -q -p cartcomm-bench --bin fig7 > results/fig7.txt
cargo run -q -p cartcomm-bench --bin schedule_dump -- 2 3 > results/schedule_2d_moore.txt
cargo run -q -p cartcomm-bench --bin remap_ablation > results/remap_ablation.txt
echo "results/ regenerated"
