//! Algorithm 2: the message-combining Cartesian allgather schedule.
//!
//! In the allgather, every process sends *the same* block to all of its `t`
//! target neighbors. The block is routed along a tree over intermediate
//! relative processes, built by recursively bucket-sorting the neighborhood
//! one dimension at a time; within phase `k` there is one round per distinct
//! non-zero coordinate at tree level `k`, and a block is forwarded once per
//! subtree (not once per neighbor), so the per-process volume equals the
//! number of non-zero tree edges (Proposition 3.3).
//!
//! The shape (and volume) of the tree depends on the order in which
//! dimensions are processed (Figure 2); following §3.2 we default to
//! increasing `C_k` order, with the alternatives available for the §3.4
//! ablation.

use cartcomm_topo::RelNeighborhood;

use crate::plan::{BlockRef, LocalCopy, Plan, PlanKind, PlanPhase, PlanRound};
use crate::schedule::arena::{CoordGroups, TreeArena};

/// Dimension-processing order for the allgather tree (§3.2/§3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DimOrder {
    /// Increasing number of distinct k-th coordinates (the paper's default,
    /// chosen "without claim of optimality").
    IncreasingCk,
    /// The dimensions as given, `0, 1, …, d−1` (Figure 2 left).
    Given,
    /// Decreasing `C_k` (the adversarial order, for ablations).
    DecreasingCk,
}

/// Compute the message-combining allgather schedule with the default
/// increasing-`C_k` dimension order.
pub fn allgather_plan(nb: &RelNeighborhood) -> Plan {
    allgather_plan_with_order(nb, DimOrder::IncreasingCk)
}

/// Compute the message-combining allgather schedule with an explicit
/// dimension order (ablation hook for §3.4).
pub fn allgather_plan_with_order(nb: &RelNeighborhood, order: DimOrder) -> Plan {
    let d = nb.ndims();
    let t = nb.len();

    // Dimension permutation sigma.
    let cks = nb.distinct_nonzero_coords();
    let mut sigma: Vec<usize> = (0..d).collect();
    match order {
        DimOrder::IncreasingCk => sigma.sort_by_key(|&k| (cks[k], k)),
        DimOrder::Given => {}
        DimOrder::DecreasingCk => sigma.sort_by_key(|&k| (usize::MAX - cks[k], k)),
    }

    // ---- tree construction (Algorithm 2, CSR arena) ------------------------
    let mut temp_slots = 0usize;
    // Fill copies produced when several neighbor indices share one path:
    // (phase index, copy).
    let mut fills: Vec<(usize, LocalCopy)> = Vec::new();
    let arena = TreeArena::build(nb, &sigma, &mut temp_slots, &mut fills);

    // ---- schedule extraction (BFS over the level CSR) ----------------------
    let mut phases: Vec<PlanPhase> = (0..=d).map(|_| PlanPhase::default()).collect();
    let mut rounds_total = 0usize;
    let mut volume = 0usize;
    // One reusable edge slab serves every level's grouping.
    let mut edges: CoordGroups<(BlockRef, BlockRef, usize)> = CoordGroups::new();
    for k in 0..d {
        // Group non-zero edges at level k by edge coordinate. Edges are
        // pushed in node (preorder) order and the grouping is stable, so
        // sender and receiver agree on wire order within each round.
        edges.clear();
        for &nid in arena.level(k) {
            let parent_slot = arena.node(nid).slot;
            for &(c, child) in arena.children(nid) {
                if c != 0 {
                    let ch = arena.node(child);
                    edges.push(c, (parent_slot, ch.slot, ch.rep));
                }
            }
        }
        edges.finish();
        volume += edges.len();
        for (c, run) in edges.groups() {
            let mut round = PlanRound {
                offset: {
                    let mut o = vec![0i64; d];
                    o[sigma[k]] = c;
                    o
                },
                sends: Vec::with_capacity(run.len()),
                recvs: Vec::with_capacity(run.len()),
                block_ids: Vec::with_capacity(run.len()),
            };
            for &(_, (from, to, rep)) in run {
                round.sends.push(from);
                round.recvs.push(to);
                round.block_ids.push(rep);
            }
            phases[k].rounds.push(round);
            rounds_total += 1;
        }
    }
    for (phase_idx, copy) in fills {
        phases[phase_idx].copies.push(copy);
    }
    // Drop a trailing phase with no work.
    while phases
        .last()
        .is_some_and(|p| p.rounds.is_empty() && p.copies.is_empty())
    {
        phases.pop();
    }

    let plan = Plan {
        kind: PlanKind::Allgather,
        ndims: d,
        t,
        phases,
        temp_slots,
        rounds: rounds_total,
        volume_blocks: volume,
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::Loc;
    use cartcomm_topo::Offset;
    use std::collections::HashMap;

    /// Simulate the plan symbolically: track, for each slot at a generic
    /// process `r`, the origin offset of the copy it holds (origin = r −
    /// path). Verify every receive-buffer block `j` ends holding the copy
    /// from origin `−N[j]` relative to the holder, i.e. from source
    /// neighbor `r − N[j]`.
    fn check_allgather_routing(nb: &RelNeighborhood, plan: &Plan) {
        let d = nb.ndims();
        // content[slot] = accumulated path offset of the held copy
        // (so the origin is r − path).
        let mut send_path = vec![0i64; d];
        let _ = &mut send_path;
        let mut recv_path: HashMap<usize, Offset> = HashMap::new();
        let mut temp_path: HashMap<usize, Offset> = HashMap::new();

        let read = |slot: BlockRef,
                    recv_path: &HashMap<usize, Offset>,
                    temp_path: &HashMap<usize, Offset>|
         -> Offset {
            match slot.loc {
                Loc::Send => vec![0i64; d],
                Loc::Recv => recv_path.get(&slot.slot).expect("recv slot filled").clone(),
                Loc::Temp => temp_path.get(&slot.slot).expect("temp slot filled").clone(),
            }
        };
        let write = |slot: BlockRef,
                     val: Offset,
                     recv_path: &mut HashMap<usize, Offset>,
                     temp_path: &mut HashMap<usize, Offset>| {
            match slot.loc {
                Loc::Send => panic!("plans never write the send buffer"),
                Loc::Recv => {
                    assert!(
                        recv_path.insert(slot.slot, val).is_none(),
                        "recv slot {} written twice",
                        slot.slot
                    );
                }
                Loc::Temp => {
                    assert!(
                        temp_path.insert(slot.slot, val).is_none(),
                        "temp slot {} written twice",
                        slot.slot
                    );
                }
            }
        };

        for phase in &plan.phases {
            for copy in &phase.copies {
                let v = read(copy.from, &recv_path, &temp_path);
                write(copy.to, v, &mut recv_path, &mut temp_path);
            }
            for round in &phase.rounds {
                // Messages arrive from relative -offset: the copy held by
                // the sender at path P arrives at us with path P + offset.
                for (j, _) in round.block_ids.iter().enumerate() {
                    let mut v = read(round.sends[j], &recv_path, &temp_path);
                    for (k, &o) in round.offset.iter().enumerate() {
                        v[k] += o;
                    }
                    write(round.recvs[j], v, &mut recv_path, &mut temp_path);
                }
            }
        }
        for j in 0..nb.len() {
            let got = recv_path
                .get(&j)
                .unwrap_or_else(|| panic!("recv block {j} never filled"));
            assert_eq!(
                got[..],
                nb.offset(j)[..],
                "block {j} holds the copy from the wrong origin"
            );
        }
    }

    #[test]
    fn moore_2d_counts_match_table1() {
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let plan = allgather_plan(&nb);
        assert_eq!(plan.rounds, 4);
        assert_eq!(plan.volume_blocks, 8); // = t for Moore stencils
        check_allgather_routing(&nb, &plan);
    }

    #[test]
    fn table1_allgather_volume_equals_t_for_stencil_families() {
        for d in 2..=4usize {
            for n in 3..=5usize {
                let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
                let plan = allgather_plan(&nb);
                assert_eq!(plan.volume_blocks, nb.len(), "V == t for d={d} n={n}");
                assert_eq!(plan.rounds, d * (n - 1), "C for d={d} n={n}");
                check_allgather_routing(&nb, &plan);
            }
        }
    }

    #[test]
    fn figure2_example_tree_volumes() {
        // N = [(-2,1,1), (-1,1,1), (1,1,1), (2,1,1)] (3 dimensions).
        let nb = RelNeighborhood::new(
            3,
            vec![vec![-2, 1, 1], vec![-1, 1, 1], vec![1, 1, 1], vec![2, 1, 1]],
        )
        .unwrap();
        // Given order (dim 0 first, Figure 2 left): V = 12.
        let left = allgather_plan_with_order(&nb, DimOrder::Given);
        assert_eq!(left.volume_blocks, 12);
        check_allgather_routing(&nb, &left);
        // Increasing C_k order (C_1 = C_2 = 1 first, then C_0 = 4; Figure 2
        // right): the tree has 6 non-zero edges. (The paper's prose says
        // V = 7; counting edges of the depicted tree gives 6 — see
        // EXPERIMENTS.md.)
        let right = allgather_plan(&nb);
        assert_eq!(right.volume_blocks, 6);
        assert!(right.volume_blocks < left.volume_blocks);
        check_allgather_routing(&nb, &right);
        // Both use C = 6 rounds.
        assert_eq!(left.rounds, right.rounds);
        assert_eq!(right.rounds, nb.combining_rounds());
    }

    #[test]
    fn decreasing_order_is_worst_for_figure2() {
        let nb = RelNeighborhood::new(
            3,
            vec![vec![-2, 1, 1], vec![-1, 1, 1], vec![1, 1, 1], vec![2, 1, 1]],
        )
        .unwrap();
        let worst = allgather_plan_with_order(&nb, DimOrder::DecreasingCk);
        assert_eq!(worst.volume_blocks, 12);
        check_allgather_routing(&nb, &worst);
    }

    #[test]
    fn self_neighbor_filled_by_local_copy() {
        let nb = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
        let plan = allgather_plan(&nb);
        let copies: Vec<_> = plan.all_copies().collect();
        assert_eq!(copies.len(), 1);
        assert_eq!(copies[0].from.loc, Loc::Send);
        assert_eq!(copies[0].to.loc, Loc::Recv);
        // self is index 4 in the row-major 3x3 family
        assert_eq!(copies[0].to.slot, 4);
        check_allgather_routing(&nb, &plan);
    }

    #[test]
    fn duplicate_offsets_fill_all_slots() {
        let nb = RelNeighborhood::new(2, vec![vec![1, 0], vec![1, 0], vec![0, 1]]).unwrap();
        let plan = allgather_plan(&nb);
        // one of the two (1,0) blocks arrives by wire, the other by copy
        assert_eq!(plan.all_copies().count(), 1);
        assert_eq!(plan.volume_blocks, 2);
        check_allgather_routing(&nb, &plan);
    }

    #[test]
    fn pure_forwarder_nodes_use_temp() {
        // Neighbors all share coord 1 in dim 1; with increasing-Ck order
        // dim 1 goes first creating a forwarder (0,1) that is not a
        // neighbor.
        let nb = RelNeighborhood::new(2, vec![vec![-1, 1], vec![1, 1], vec![2, 1]]).unwrap();
        let plan = allgather_plan(&nb);
        assert!(plan.temp_slots >= 1);
        assert_eq!(plan.volume_blocks, 1 + 3); // 1 hop to (0,1), then 3 fan-out
        check_allgather_routing(&nb, &plan);
    }

    #[test]
    fn empty_neighborhood() {
        let nb = RelNeighborhood::new(3, vec![]).unwrap();
        let plan = allgather_plan(&nb);
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.volume_blocks, 0);
    }

    #[test]
    fn von_neumann_equals_trivial_volume() {
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        let plan = allgather_plan(&nb);
        assert_eq!(plan.volume_blocks, 4);
        assert_eq!(plan.rounds, 4);
        check_allgather_routing(&nb, &plan);
    }

    #[test]
    fn random_neighborhoods_route_correctly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for case in 0..60 {
            let d = rng.gen_range(1..5);
            let t = rng.gen_range(1..18);
            let offsets: Vec<Vec<i64>> = (0..t)
                .map(|_| (0..d).map(|_| rng.gen_range(-2i64..3)).collect())
                .collect();
            let nb = RelNeighborhood::new(d, offsets).unwrap();
            for order in [
                DimOrder::IncreasingCk,
                DimOrder::Given,
                DimOrder::DecreasingCk,
            ] {
                let plan = allgather_plan_with_order(&nb, order);
                plan.validate()
                    .unwrap_or_else(|e| panic!("case {case}: {e}"));
                assert_eq!(plan.rounds, nb.combining_rounds());
                check_allgather_routing(&nb, &plan);
            }
        }
    }

    #[test]
    fn increasing_ck_wins_in_aggregate_over_random_inputs() {
        // The paper chooses increasing-C_k order "without claim of
        // optimality" (§3.2/§3.4): per instance it can occasionally lose to
        // another order, so we assert the *aggregate* behaviour — summed
        // over many random neighborhoods, the heuristic produces no more
        // volume than the adversarial decreasing order.
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(99);
        let (mut total_inc, mut total_dec) = (0usize, 0usize);
        for _ in 0..200 {
            let d = rng.gen_range(2..4);
            let t = rng.gen_range(1..12);
            let offsets: Vec<Vec<i64>> = (0..t)
                .map(|_| (0..d).map(|_| rng.gen_range(-2i64..3)).collect())
                .collect();
            let nb = RelNeighborhood::new(d, offsets).unwrap();
            total_inc += allgather_plan_with_order(&nb, DimOrder::IncreasingCk).volume_blocks;
            total_dec += allgather_plan_with_order(&nb, DimOrder::DecreasingCk).volume_blocks;
        }
        assert!(
            total_inc <= total_dec,
            "heuristic lost in aggregate: {total_inc} > {total_dec}"
        );
    }
}
