//! Reversed-tree schedules for the neighborhood reductions.
//!
//! The reduction schedules are the allgather routing tree run backwards
//! (Träff 2024's reduce-scatter/allreduce construction specialised to the
//! Cartesian neighborhoods of this repo): build the combining allgather
//! plan on the *negated* neighborhood, flip every edge, and walk the
//! phases in reverse. Where the forward tree fans a block out from the
//! root `Send(0)` to the `t` receive slots, the reversed tree funnels `t`
//! personalized contributions inward, combining partial results at every
//! join. Each rank is the root of its own reversed tree, so the whole
//! neighborhood reduces concurrently in the same `C` rounds and `V`
//! block-sends as the forward allgather (Props. 3.2/3.3 carry over by
//! edge-for-edge correspondence).
//!
//! Slot discipline: every forward slot becomes an internal temp of the
//! reversed plan (`Send(0) → Temp(0)` — the root accumulator,
//! `Recv(j) → Temp(1+j)` — the per-neighbor injection leaves,
//! `Temp(s) → Temp(1+t+s)` — the forwarders), the user's input blocks
//! appear only as `Send` sources of the phase-0 injection copies, and the
//! user's output is written once, by the final extraction copy
//! `Temp(0) → Recv(0)`. The combine operator is *not* part of the plan:
//! writes into an already-written slot combine with whatever
//! [`cartcomm_types::Reducer`] the executor is handed (first write
//! assigns), so one compiled plan serves every `(op, dtype)` pair.

use std::collections::HashSet;

use cartcomm_topo::RelNeighborhood;

use crate::plan::{BlockRef, Loc, LocalCopy, Plan, PlanKind, PlanPhase, PlanRound};
use crate::schedule::allgather::allgather_plan;

/// Compute the message-combining reduce-scatter schedule: the result
/// block at each rank is the elementwise reduction of input block `j` of
/// the rank at relative `−N[j]`, over all `j` (duplicate offsets count
/// per occurrence; a zero offset contributes the caller's own block `j`).
pub fn reduce_scatter_plan(nb: &RelNeighborhood) -> Plan {
    reversed_plan(nb, PlanKind::ReduceScatter)
}

/// Compute the message-combining allreduce schedule: the result block at
/// each rank is its own contribution combined with the contribution of
/// the rank at relative `−N[j]` for every *non-zero* offset `j`. The own
/// block counts exactly once even when the neighborhood contains the
/// zero offset (the zero-offset injection and its copy chain are pruned
/// at build time).
pub fn allreduce_plan(nb: &RelNeighborhood) -> Plan {
    reversed_plan(nb, PlanKind::Allreduce)
}

fn reversed_plan(nb: &RelNeighborhood, kind: PlanKind) -> Plan {
    debug_assert!(kind.is_reduction());
    let fwd = allgather_plan(&nb.negated());
    let t = nb.len();
    let d = nb.ndims();
    let temp_slots = 1 + t + fwd.temp_slots;

    let map = |br: BlockRef| -> BlockRef {
        match br.loc {
            Loc::Send => BlockRef::new(Loc::Temp, 0),
            Loc::Recv => BlockRef::new(Loc::Temp, 1 + br.slot),
            Loc::Temp => BlockRef::new(Loc::Temp, 1 + t + br.slot),
        }
    };

    // Phase 0 opens with the injection copies that seed the reversed
    // tree's leaves (and, for allreduce, its root) from the user's input.
    let mut cur = PlanPhase::default();
    match kind {
        PlanKind::ReduceScatter => {
            for j in 0..t {
                cur.copies.push(LocalCopy {
                    from: BlockRef::new(Loc::Send, j),
                    to: BlockRef::new(Loc::Temp, 1 + j),
                });
            }
        }
        PlanKind::Allreduce => {
            cur.copies.push(LocalCopy {
                from: BlockRef::new(Loc::Send, 0),
                to: BlockRef::new(Loc::Temp, 0),
            });
            for j in 0..t {
                if nb.offset(j).iter().any(|&c| c != 0) {
                    cur.copies.push(LocalCopy {
                        from: BlockRef::new(Loc::Send, 0),
                        to: BlockRef::new(Loc::Temp, 1 + j),
                    });
                }
            }
        }
        _ => unreachable!(),
    }

    // Walk the forward phases backwards. The forward order within phase k
    // is copies, then rounds; strict reversal is therefore
    // `rev(rounds_k), rev(copies_k), rev(rounds_{k−1}), …` — each batch
    // of reversed copies lands at the *start* of the next reversed phase,
    // which the copies-before-rounds execution order of [`PlanPhase`]
    // provides for free.
    let mut phases: Vec<PlanPhase> = Vec::with_capacity(fwd.phases.len() + 2);
    for fwd_phase in fwd.phases.iter().rev() {
        for r in &fwd_phase.rounds {
            cur.rounds.push(PlanRound {
                offset: r.offset.iter().map(|&c| -c).collect(),
                sends: r.recvs.iter().map(|&b| map(b)).collect(),
                recvs: r.sends.iter().map(|&b| map(b)).collect(),
                block_ids: r.block_ids.clone(),
            });
        }
        phases.push(std::mem::take(&mut cur));
        for c in fwd_phase.copies.iter().rev() {
            cur.copies.push(LocalCopy {
                from: map(c.to),
                to: map(c.from),
            });
        }
    }
    // Trailing phase: the reversed copies of the forward opening phase,
    // then the single write to the user's output.
    cur.copies.push(LocalCopy {
        from: BlockRef::new(Loc::Temp, 0),
        to: BlockRef::new(Loc::Recv, 0),
    });
    phases.push(cur);

    prune_dead_copies(&mut phases);
    phases.retain(|p| !p.copies.is_empty() || !p.rounds.is_empty());

    let plan = Plan {
        kind,
        ndims: d,
        t,
        phases,
        temp_slots,
        rounds: fwd.rounds,
        volume_blocks: fwd.volume_blocks,
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

/// Drop copies whose source temp slot never holds a value. Uninjected
/// leaves arise in the allreduce plan for zero-offset neighbors (their
/// forward paths are pure copy chains, so pruning them is what makes the
/// own contribution count exactly once) and in degenerate empty
/// neighborhoods. One pass in execution order suffices: a valid reversed
/// plan writes every slot it reads in an earlier phase or earlier in the
/// same phase's copy list.
fn prune_dead_copies(phases: &mut [PlanPhase]) {
    let mut written: HashSet<usize> = HashSet::new();
    for phase in phases.iter_mut() {
        phase.copies.retain(|c| {
            let live = match c.from.loc {
                Loc::Send => true,
                Loc::Temp => written.contains(&c.from.slot),
                Loc::Recv => unreachable!("reversed plans never read the output buffer"),
            };
            if live && c.to.loc == Loc::Temp {
                written.insert(c.to.slot);
            }
            live
        });
        for r in &phase.rounds {
            debug_assert!(
                r.sends
                    .iter()
                    .all(|b| b.loc != Loc::Temp || written.contains(&b.slot)),
                "reversed round gathers an unwritten slot"
            );
            for b in &r.recvs {
                if b.loc == Loc::Temp {
                    written.insert(b.slot);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_topo::Offset;
    use std::collections::BTreeMap;

    /// Symbolic dataflow check: each slot holds a multiset of
    /// `(origin offset δ, input block b)` terms meaning "input block `b`
    /// of the rank at relative `δ`". A round with offset `o` delivers the
    /// sender's terms shifted by `−o` (the sender sits at relative `−o`);
    /// writes into a written slot take the multiset union (what a
    /// reduction computes). The final output must hold exactly the
    /// collective's defining multiset.
    fn simulate(nb: &RelNeighborhood, plan: &Plan) -> BTreeMap<(Offset, usize), usize> {
        let mut temp: Vec<Option<BTreeMap<(Offset, usize), usize>>> = vec![None; plan.temp_slots];
        let mut out: Option<BTreeMap<(Offset, usize), usize>> = None;
        let d = nb.ndims();

        let read = |br: BlockRef,
                    temp: &Vec<Option<BTreeMap<(Offset, usize), usize>>>|
         -> BTreeMap<(Offset, usize), usize> {
            match br.loc {
                Loc::Send => {
                    let mut m = BTreeMap::new();
                    m.insert((vec![0i64; d], br.slot), 1);
                    m
                }
                Loc::Temp => temp[br.slot].clone().expect("read of unwritten temp"),
                Loc::Recv => panic!("reversed plans never read the output"),
            }
        };
        let merge = |dst: &mut Option<BTreeMap<(Offset, usize), usize>>,
                     src: BTreeMap<(Offset, usize), usize>| {
            let m = dst.get_or_insert_with(BTreeMap::new);
            for (k, v) in src {
                *m.entry(k).or_insert(0) += v;
            }
        };

        for phase in &plan.phases {
            for c in &phase.copies {
                let v = read(c.from, &temp);
                match c.to.loc {
                    Loc::Temp => merge(&mut temp[c.to.slot], v),
                    Loc::Recv => {
                        assert_eq!(c.to.slot, 0, "single output block");
                        merge(&mut out, v);
                    }
                    Loc::Send => panic!("write to input"),
                }
            }
            // Within a phase every gather happens before any scatter.
            type Multiset = BTreeMap<(Offset, usize), usize>;
            let mut arrivals: Vec<(BlockRef, Multiset)> = Vec::new();
            for r in &phase.rounds {
                for j in 0..r.block_ids.len() {
                    let mut v = read(r.sends[j], &temp);
                    let shifted: BTreeMap<(Offset, usize), usize> = v
                        .iter()
                        .map(|((delta, b), n)| {
                            let nd: Offset =
                                delta.iter().zip(&r.offset).map(|(x, o)| x - o).collect();
                            ((nd, *b), *n)
                        })
                        .collect();
                    v = shifted;
                    arrivals.push((r.recvs[j], v));
                }
            }
            for (to, v) in arrivals {
                match to.loc {
                    Loc::Temp => merge(&mut temp[to.slot], v),
                    Loc::Recv => panic!("reduction rounds land in temps"),
                    Loc::Send => panic!("write to input"),
                }
            }
        }
        out.expect("output never written")
    }

    fn expected(nb: &RelNeighborhood, kind: PlanKind) -> BTreeMap<(Offset, usize), usize> {
        let mut m = BTreeMap::new();
        match kind {
            PlanKind::ReduceScatter => {
                for j in 0..nb.len() {
                    let delta: Offset = nb.offset(j).iter().map(|&c| -c).collect();
                    *m.entry((delta, j)).or_insert(0) += 1;
                }
            }
            PlanKind::Allreduce => {
                *m.entry((vec![0i64; nb.ndims()], 0)).or_insert(0) += 1;
                for j in 0..nb.len() {
                    if nb.offset(j).iter().any(|&c| c != 0) {
                        let delta: Offset = nb.offset(j).iter().map(|&c| -c).collect();
                        *m.entry((delta, 0)).or_insert(0) += 1;
                    }
                }
            }
            _ => unreachable!(),
        }
        m
    }

    fn check_both(nb: &RelNeighborhood) {
        for (plan, kind) in [
            (reduce_scatter_plan(nb), PlanKind::ReduceScatter),
            (allreduce_plan(nb), PlanKind::Allreduce),
        ] {
            plan.validate().unwrap();
            assert_eq!(plan.kind, kind);
            assert_eq!(simulate(nb, &plan), expected(nb, kind), "{kind:?}");
        }
    }

    #[test]
    fn moore_2d_routes_and_matches_allgather_counts() {
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let fwd = allgather_plan(&nb.negated());
        let rs = reduce_scatter_plan(&nb);
        assert_eq!(rs.rounds, fwd.rounds);
        assert_eq!(rs.volume_blocks, fwd.volume_blocks);
        assert_eq!(rs.rounds, nb.combining_rounds());
        check_both(&nb);
    }

    #[test]
    fn moore_3d_and_von_neumann_route() {
        check_both(&RelNeighborhood::moore(3, 1).unwrap());
        check_both(&RelNeighborhood::von_neumann(2, 1).unwrap());
        check_both(&RelNeighborhood::von_neumann(3, 1).unwrap());
    }

    #[test]
    fn asymmetric_upwind_routes() {
        let nb = RelNeighborhood::new(
            2,
            vec![
                vec![-1, 0],
                vec![-2, 0],
                vec![0, -1],
                vec![-1, -1],
                vec![-2, -1],
            ],
        )
        .unwrap();
        check_both(&nb);
    }

    #[test]
    fn zero_offset_counts_once_in_allreduce() {
        let nb = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
        check_both(&nb);
        // The zero-offset leaf is pruned: no copy reads an uninjected slot
        // and the own term appears exactly once in the output.
        let ar = allreduce_plan(&nb);
        let out = simulate(&nb, &ar);
        assert_eq!(out.get(&(vec![0, 0], 0)), Some(&1));
    }

    #[test]
    fn zero_offset_injects_own_block_in_reduce_scatter() {
        let nb = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
        let rs = reduce_scatter_plan(&nb);
        let out = simulate(&nb, &rs);
        // Exactly one term per neighbor index, zero offset included.
        assert_eq!(out.values().sum::<usize>(), nb.len());
    }

    #[test]
    fn duplicate_offsets_count_per_occurrence() {
        let nb = RelNeighborhood::new(1, vec![vec![1], vec![1], vec![-2]]).unwrap();
        check_both(&nb);
        let out = simulate(&nb, &allreduce_plan(&nb));
        assert_eq!(out.get(&(vec![-1], 0)), Some(&2));
    }

    #[test]
    fn self_only_neighborhood_is_local() {
        let nb = RelNeighborhood::new(2, vec![vec![0, 0]]).unwrap();
        let ar = allreduce_plan(&nb);
        assert_eq!(ar.rounds, 0);
        assert_eq!(ar.volume_blocks, 0);
        check_both(&nb);
    }

    #[test]
    fn empty_neighborhood_allreduce_is_identity() {
        let nb = RelNeighborhood::new(3, vec![]).unwrap();
        let ar = allreduce_plan(&nb);
        assert_eq!(ar.rounds, 0);
        assert_eq!(simulate(&nb, &ar), expected(&nb, PlanKind::Allreduce));
    }

    #[test]
    fn random_neighborhoods_route_correctly() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(41);
        for case in 0..60 {
            let d = rng.gen_range(1..4);
            let t = rng.gen_range(1..14);
            let offsets: Vec<Vec<i64>> = (0..t)
                .map(|_| (0..d).map(|_| rng.gen_range(-2i64..3)).collect())
                .collect();
            let nb = RelNeighborhood::new(d, offsets).unwrap();
            let rs = reduce_scatter_plan(&nb);
            assert_eq!(rs.rounds, nb.negated().combining_rounds(), "case {case}");
            check_both(&nb);
        }
    }

    #[test]
    fn forwarder_heavy_neighborhood_routes() {
        let nb = RelNeighborhood::new(2, vec![vec![-1, 1], vec![1, 1], vec![2, 1]]).unwrap();
        let plan = reduce_scatter_plan(&nb);
        assert!(plan.temp_slots > 1 + nb.len());
        check_both(&nb);
    }
}
