//! Schedule computation for the message-combining Cartesian collectives.
//!
//! Both algorithms route data blocks by straightforward, coordinate-wise
//! path expansion: a block for relative neighbor `N[i] = (n₀, …, n_{d−1})`
//! travels via the intermediate relative processes `(n₀, 0, …, 0)`,
//! `(n₀, n₁, 0, …, 0)`, …, moving once per non-zero coordinate. The
//! schedules run in `d` communication phases; phase `k` has one round per
//! distinct non-zero k-th coordinate in the neighborhood, and each round
//! combines all blocks sharing that coordinate into one message
//! (Proposition 3.1: computable in O(td) time, locally, with no
//! communication).

pub mod allgather;
pub mod alltoall;
pub(crate) mod arena;
pub mod reduce;

pub use allgather::{allgather_plan, allgather_plan_with_order, DimOrder};
pub use alltoall::alltoall_plan;
pub use reduce::{allreduce_plan, reduce_scatter_plan};
