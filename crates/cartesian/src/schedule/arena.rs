//! Flat CSR-style arenas for schedule construction.
//!
//! The seed allgather builder stored its routing tree as heap nodes with
//! per-node `children: Vec<(i64, usize)>` and cloned the index sub-vector
//! at every recursion step — `O(t)` allocations for a `t`-neighborhood,
//! and a pointer-chasing walk for every consumer. This module replaces
//! that with two flat structures shared by both schedules:
//!
//! * [`TreeArena`] — the allgather routing tree in compressed-sparse-row
//!   form: one `nodes` vec, one shared `children` edge slab addressed by
//!   per-node `(offset, len)` ranges, and a level CSR for the BFS walk
//!   that extracts rounds. A node's child range is *pre-reserved* before
//!   its subtrees recurse (bucket boundaries are known first), so every
//!   range is contiguous even though construction is depth-first; the
//!   index sets recursion partitions are `&mut [usize]` sub-slices of one
//!   scratch buffer sorted in place. Construction performs zero
//!   allocation per node.
//! * [`CoordGroups`] — indices (or edges) grouped into runs of equal
//!   coordinate, ascending and stable: the flat analogue of the
//!   flush-on-coordinate-change round builder, with one reusable item
//!   slab and one run list instead of per-round state. Both the alltoall
//!   phase builder and the allgather level extraction group through it,
//!   so "one round per distinct non-zero coordinate" is implemented
//!   exactly once.
//!
//! Node ids are preorder (a parent precedes its children), level order
//! preserves preorder within each level, and grouping is stable — all
//! three invariants are what keeps the extracted plans byte-identical to
//! the seed's pointer-tree output (pinned by the golden fingerprints in
//! `tests/flat_tree_invariants.rs`).

use cartcomm_topo::RelNeighborhood;

use crate::plan::{BlockRef, Loc, LocalCopy};

/// One node of the flattened allgather routing tree.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ArenaNode {
    /// Where each process keeps the copy it holds for this subtree.
    pub(crate) slot: BlockRef,
    /// Representative neighbor index (first index in the subtree), used
    /// for wire sizing.
    pub(crate) rep: usize,
    /// Tree level (root = 0).
    level: u32,
    /// Start of this node's edge range in the shared `children` slab.
    child_start: usize,
    /// Number of child edges.
    child_len: usize,
}

/// The allgather routing tree as a contiguous CSR arena.
#[derive(Debug, Default)]
pub(crate) struct TreeArena {
    /// All nodes in preorder.
    nodes: Vec<ArenaNode>,
    /// Shared edge slab: `(edge coordinate, child node id)` in ascending
    /// coordinate order within each node's range.
    children: Vec<(i64, usize)>,
    /// Node ids grouped by level (CSR values), preorder within a level.
    level_nodes: Vec<usize>,
    /// Level CSR offsets: level `k` is `level_nodes[off[k]..off[k+1]]`.
    level_off: Vec<usize>,
}

impl TreeArena {
    /// Build the routing tree for `nb` under dimension permutation
    /// `sigma` (the paper's `AllgatherTree`, Algorithm 2). Temp-slot
    /// assignment and duplicate-offset fill copies come out through the
    /// two out-parameters, in the same order the pointer-tree builder
    /// produced them.
    pub(crate) fn build(
        nb: &RelNeighborhood,
        sigma: &[usize],
        temp_slots: &mut usize,
        fills: &mut Vec<(usize, LocalCopy)>,
    ) -> TreeArena {
        let d = nb.ndims();
        let t = nb.len();
        let mut b = Builder {
            nb,
            sigma,
            arena: TreeArena::default(),
            path: vec![0i64; d],
            temp_slots,
            fills,
        };
        if t > 0 {
            // The one index buffer of the whole construction: recursion
            // partitions it into `&mut` sub-slices, never copies it.
            let mut scratch: Vec<usize> = (0..t).collect();
            b.build_node(&mut scratch, 0, None);
        }
        let mut arena = b.arena;
        arena.build_level_csr(d);
        arena
    }

    /// Counting-sort node ids into the level CSR. Iterating ids in
    /// preorder keeps the within-level order identical to the insertion
    /// order of the seed's `levels: Vec<Vec<usize>>`.
    fn build_level_csr(&mut self, d: usize) {
        let mut off = vec![0usize; d + 2];
        for n in &self.nodes {
            off[n.level as usize + 1] += 1;
        }
        for k in 0..=d {
            off[k + 1] += off[k];
        }
        let mut cursor = off.clone();
        self.level_nodes = vec![0usize; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            self.level_nodes[cursor[n.level as usize]] = id;
            cursor[n.level as usize] += 1;
        }
        self.level_off = off;
    }

    /// Node ids at tree level `k`, in preorder.
    pub(crate) fn level(&self, k: usize) -> &[usize] {
        if k + 1 >= self.level_off.len() {
            return &[];
        }
        &self.level_nodes[self.level_off[k]..self.level_off[k + 1]]
    }

    pub(crate) fn node(&self, id: usize) -> &ArenaNode {
        &self.nodes[id]
    }

    /// A node's child edges: `(edge coordinate, child id)`, ascending by
    /// coordinate.
    pub(crate) fn children(&self, id: usize) -> &[(i64, usize)] {
        let n = &self.nodes[id];
        &self.children[n.child_start..n.child_start + n.child_len]
    }

    #[cfg(test)]
    pub(crate) fn node_count(&self) -> usize {
        self.nodes.len()
    }

    #[cfg(test)]
    pub(crate) fn edge_slab_len(&self) -> usize {
        self.children.len()
    }
}

struct Builder<'a> {
    nb: &'a RelNeighborhood,
    sigma: &'a [usize],
    arena: TreeArena,
    /// Path offset of the node under construction; entries for dimensions
    /// deeper than the current level are zero, so one buffer serves the
    /// whole recursion (set before descending, reset after).
    path: Vec<i64>,
    temp_slots: &'a mut usize,
    fills: &'a mut Vec<(usize, LocalCopy)>,
}

impl Builder<'_> {
    /// Recursive tree construction: bucket-sort the sub-neighborhood on
    /// the current sorted dimension in place and recurse per distinct
    /// coordinate. Returns the new node's id.
    fn build_node(
        &mut self,
        indices: &mut [usize],
        level: usize,
        // Slot inherited over a zero-coordinate edge (content identical
        // to the parent's, so the node aliases the parent's slot).
        inherited_slot: Option<BlockRef>,
    ) -> usize {
        let d = self.nb.ndims();
        let rep = indices[0];

        // Slot assignment. A node reached over a non-zero edge (or the
        // root) resolves its own slot: if some neighbor's offset equals
        // the node path, the incoming copy is that neighbor's final block
        // and lives in the receive buffer; otherwise the node is a pure
        // forwarder in a temp slot.
        let slot = if let Some(s) = inherited_slot {
            s
        } else if level == 0 {
            // Root: the process's own contribution, in the send buffer.
            // Any self-neighbors (offset zero) are filled by local copy
            // in phase 0.
            let slot = BlockRef::new(Loc::Send, 0);
            for &j in indices.iter() {
                if self.nb.offset(j).iter().all(|&c| c == 0) {
                    self.fills.push((
                        0,
                        LocalCopy {
                            from: slot,
                            to: BlockRef::new(Loc::Recv, j),
                        },
                    ));
                }
            }
            slot
        } else {
            let mut candidates = indices
                .iter()
                .copied()
                .filter(|&j| self.nb.offset(j)[..] == self.path[..]);
            if let Some(first) = candidates.next() {
                let slot = BlockRef::new(Loc::Recv, first);
                // Duplicate offsets: the remaining candidates receive a
                // local copy once the content has arrived (it arrives
                // during phase level-1, so the copy goes at the start of
                // phase `level`; the executor appends a final copies-only
                // phase when level == d).
                for j in candidates {
                    self.fills.push((
                        level.min(d),
                        LocalCopy {
                            from: slot,
                            to: BlockRef::new(Loc::Recv, j),
                        },
                    ));
                }
                slot
            } else {
                let slot = BlockRef::new(Loc::Temp, *self.temp_slots);
                *self.temp_slots += 1;
                slot
            }
        };

        // Bucket the sub-neighborhood on this level's dimension (stable,
        // in place) and pre-reserve the node's child range in the shared
        // slab: the bucket count is known before any subtree recurses, so
        // the range stays contiguous while descendants append theirs.
        let child_start = self.arena.children.len();
        let mut child_len = 0usize;
        if level < d {
            let dim = self.sigma[level];
            indices.sort_by_key(|&j| self.nb.offset(j)[dim]);
            let mut i = 0usize;
            while i < indices.len() {
                let c = self.nb.offset(indices[i])[dim];
                while i < indices.len() && self.nb.offset(indices[i])[dim] == c {
                    i += 1;
                }
                child_len += 1;
            }
            self.arena
                .children
                .resize(child_start + child_len, (0, usize::MAX));
        }

        let id = self.arena.nodes.len();
        self.arena.nodes.push(ArenaNode {
            slot,
            rep,
            level: level as u32,
            child_start,
            child_len,
        });

        if level < d {
            let dim = self.sigma[level];
            let mut start = 0usize;
            let mut edge = 0usize;
            while start < indices.len() {
                let c = self.nb.offset(indices[start])[dim];
                let mut end = start;
                while end < indices.len() && self.nb.offset(indices[end])[dim] == c {
                    end += 1;
                }
                self.path[dim] = c;
                let inherit = if c == 0 { Some(slot) } else { None };
                let child = self.build_node(&mut indices[start..end], level + 1, inherit);
                self.path[dim] = 0;
                self.arena.children[child_start + edge] = (c, child);
                edge += 1;
                start = end;
            }
            debug_assert_eq!(edge, child_len, "reserved range filled exactly");
        }
        id
    }
}

/// Items grouped into runs of equal coordinate — the flat round builder
/// both schedules share. Push `(coordinate, item)` pairs in any order,
/// [`finish`](CoordGroups::finish), then iterate
/// [`groups`](CoordGroups::groups): one run per distinct coordinate,
/// ascending, with the original push order preserved inside each run
/// (stable sort). The item slab and run list are reusable across phases
/// via [`clear`](CoordGroups::clear).
#[derive(Debug)]
pub(crate) struct CoordGroups<T> {
    items: Vec<(i64, T)>,
    /// `(start, end)` ranges into `items`; the run's coordinate is
    /// `items[start].0`.
    runs: Vec<(usize, usize)>,
}

impl<T> CoordGroups<T> {
    pub(crate) fn new() -> Self {
        CoordGroups {
            items: Vec::new(),
            runs: Vec::new(),
        }
    }

    pub(crate) fn clear(&mut self) {
        self.items.clear();
        self.runs.clear();
    }

    pub(crate) fn push(&mut self, coord: i64, item: T) {
        self.items.push((coord, item));
    }

    /// Stable-sort the items by coordinate and compute the run index.
    pub(crate) fn finish(&mut self) {
        self.items.sort_by_key(|e| e.0);
        self.runs.clear();
        let mut i = 0usize;
        while i < self.items.len() {
            let c = self.items[i].0;
            let start = i;
            while i < self.items.len() && self.items[i].0 == c {
                i += 1;
            }
            self.runs.push((start, i));
        }
    }

    /// Total items pushed (the phase's block volume contribution).
    pub(crate) fn len(&self) -> usize {
        self.items.len()
    }

    /// The runs: `(coordinate, items of the run)`.
    pub(crate) fn groups(&self) -> impl Iterator<Item = (i64, &[(i64, T)])> {
        self.runs
            .iter()
            .map(move |&(s, e)| (self.items[s].0, &self.items[s..e]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn moore_arena(d: usize) -> TreeArena {
        let nb = RelNeighborhood::moore(d, 1).unwrap();
        let sigma: Vec<usize> = (0..d).collect();
        let mut temp = 0usize;
        let mut fills = Vec::new();
        TreeArena::build(&nb, &sigma, &mut temp, &mut fills)
    }

    #[test]
    fn child_ranges_partition_the_slab() {
        for d in 1..=3usize {
            let arena = moore_arena(d);
            // Every slab entry belongs to exactly one node's range and no
            // placeholder survives construction.
            let mut covered = vec![0usize; arena.edge_slab_len()];
            for id in 0..arena.node_count() {
                let n = arena.node(id);
                for c in covered.iter_mut().skip(n.child_start).take(n.child_len) {
                    *c += 1;
                }
            }
            assert!(covered.iter().all(|&c| c == 1), "d={d}: slab partitioned");
            for id in 0..arena.node_count() {
                for &(_, child) in arena.children(id) {
                    assert_ne!(child, usize::MAX, "placeholder patched");
                    assert!(child < arena.node_count());
                }
            }
        }
    }

    #[test]
    fn preorder_ids_and_level_csr_agree() {
        let arena = moore_arena(2);
        // Parents precede children (preorder).
        for id in 0..arena.node_count() {
            for &(_, child) in arena.children(id) {
                assert!(child > id, "child {child} after parent {id}");
            }
        }
        // The level CSR lists every node exactly once, at its own level,
        // in ascending-id (= preorder) order within the level.
        let mut seen = vec![false; arena.node_count()];
        for k in 0..=2usize {
            let ids = arena.level(k);
            assert!(ids.windows(2).all(|w| w[0] < w[1]), "level {k} preorder");
            for &id in ids {
                assert!(!seen[id]);
                seen[id] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "every node in some level");
        assert!(arena.level(99).is_empty(), "out-of-range level is empty");
    }

    #[test]
    fn children_sorted_by_coordinate() {
        for d in 1..=3usize {
            let arena = moore_arena(d);
            for id in 0..arena.node_count() {
                let edges = arena.children(id);
                assert!(
                    edges.windows(2).all(|w| w[0].0 < w[1].0),
                    "d={d} node {id}: ascending distinct edge coords"
                );
            }
        }
    }

    #[test]
    fn coord_groups_runs_are_stable_and_ascending() {
        let mut g: CoordGroups<usize> = CoordGroups::new();
        for (c, i) in [(2, 0), (-1, 1), (2, 2), (0, 3), (-1, 4), (2, 5)] {
            g.push(c, i);
        }
        g.finish();
        let runs: Vec<(i64, Vec<usize>)> = g
            .groups()
            .map(|(c, items)| (c, items.iter().map(|&(_, i)| i).collect()))
            .collect();
        assert_eq!(
            runs,
            vec![(-1, vec![1, 4]), (0, vec![3]), (2, vec![0, 2, 5])]
        );
        assert_eq!(g.len(), 6);
        g.clear();
        g.finish();
        assert_eq!(g.groups().count(), 0);
    }
}
