//! Algorithm 1: the message-combining Cartesian alltoall schedule.
//!
//! Each process has a personalized block for each neighbor `N[i]`. The block
//! travels one hop per non-zero coordinate of `N[i]`; in phase `k`, all
//! blocks with the same non-zero k-th coordinate `c` are combined into one
//! message to the relative process `c·eₖ`. Between hops a block alternates
//! between the temporary buffer and the receive buffer so that the send
//! source and receive destination of one round never collide, and the last
//! hop always lands the block at its final position in the receive buffer.

use cartcomm_topo::RelNeighborhood;

use crate::plan::{BlockRef, Loc, LocalCopy, Plan, PlanKind, PlanPhase, PlanRound};
use crate::schedule::arena::CoordGroups;

/// Compute the message-combining alltoall schedule for a t-neighborhood
/// (the paper's `AlltoallSchedule`, Algorithm 1). Runs in O(td) time.
///
/// The resulting plan has `C = Σₖ Cₖ` rounds and block volume `V = Σᵢ zᵢ`
/// (Proposition 3.2), plus one non-communication phase holding the local
/// copies for any zero-offset (self) neighbors.
pub fn alltoall_plan(nb: &RelNeighborhood) -> Plan {
    let d = nb.ndims();
    let t = nb.len();
    // hops[i] = number of remaining hops of block i (the paper's z_i,
    // decremented as phases assign hops).
    let total_hops = nb.hops();
    let mut hops: Vec<usize> = total_hops.clone();

    let mut phases: Vec<PlanPhase> = Vec::with_capacity(d + 1);
    let mut rounds_total = 0usize;
    let mut volume = 0usize;

    // One reusable grouping slab serves every phase — the same flat
    // coordinate-run representation the allgather arena extraction uses.
    let mut groups: CoordGroups<usize> = CoordGroups::new();
    for k in 0..d {
        let order = nb.bucket_sort_by_coord(k);
        groups.clear();
        for &i in &order {
            let c = nb.offset(i)[k];
            if c != 0 {
                groups.push(c, i);
            }
        }
        groups.finish();
        let mut phase = PlanPhase::default();
        for (c, run) in groups.groups() {
            let mut round = PlanRound {
                offset: {
                    let mut o = vec![0i64; d];
                    o[k] = c;
                    o
                },
                sends: Vec::with_capacity(run.len()),
                recvs: Vec::with_capacity(run.len()),
                block_ids: Vec::with_capacity(run.len()),
            };
            for &(_, i) in run {
                // Buffer selection (Algorithm 1 lines 11-17): the block is
                // received into the receive buffer when its remaining hop
                // count is odd — so the final hop (1 remaining) lands in
                // the receive buffer — and into the temporary buffer
                // otherwise. It is sent from wherever the previous hop put
                // it; the very first hop reads the user's send buffer.
                let h = hops[i];
                debug_assert!(h >= 1);
                let send_loc = if h == total_hops[i] {
                    Loc::Send
                } else if h % 2 == 1 {
                    // previous receive (at h+1, even) went to Temp
                    Loc::Temp
                } else {
                    Loc::Recv
                };
                let recv_loc = if h % 2 == 1 { Loc::Recv } else { Loc::Temp };
                hops[i] -= 1;
                round.sends.push(BlockRef::new(send_loc, i));
                round.recvs.push(BlockRef::new(recv_loc, i));
                round.block_ids.push(i);
            }
            volume += round.block_ids.len();
            phase.rounds.push(round);
            rounds_total += 1;
        }
        phases.push(phase);
    }
    debug_assert!(hops.iter().all(|&h| h == 0), "all hops consumed");

    // Final non-communication phase: copy self-blocks send -> recv.
    let mut last = PlanPhase::default();
    for (i, &h) in total_hops.iter().enumerate() {
        if h == 0 {
            last.copies.push(LocalCopy {
                from: BlockRef::new(Loc::Send, i),
                to: BlockRef::new(Loc::Recv, i),
            });
        }
    }
    if !last.copies.is_empty() {
        phases.push(last);
    }

    let plan = Plan {
        kind: PlanKind::Alltoall,
        ndims: d,
        t,
        phases,
        temp_slots: t,
        rounds: rounds_total,
        volume_blocks: volume,
    };
    debug_assert_eq!(plan.validate(), Ok(()));
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_topo::RelNeighborhood;
    use std::collections::HashMap;

    /// Walk the plan and verify each block follows its dimension-wise path
    /// and ends in the receive buffer.
    fn check_block_routing(nb: &RelNeighborhood, plan: &Plan) {
        let t = nb.len();
        let hops = nb.hops();
        // last known location of each block, starting in Send.
        let mut loc: Vec<BlockRef> = (0..t).map(|i| BlockRef::new(Loc::Send, i)).collect();
        let mut hops_done = vec![0usize; t];
        let mut dims_done: Vec<Vec<usize>> = vec![Vec::new(); t];
        for (k, phase) in plan.phases.iter().enumerate() {
            for round in &phase.rounds {
                // the round's dimension
                let dim = round.offset.iter().position(|&c| c != 0).unwrap();
                assert_eq!(dim, k, "phase k only moves along dimension k");
                for (j, &b) in round.block_ids.iter().enumerate() {
                    let c = round.offset[dim];
                    assert_eq!(nb.offset(b)[dim], c, "block travels its own coordinate");
                    // sent from where it last was
                    assert_eq!(round.sends[j], loc[b], "send source continuity");
                    assert_eq!(round.recvs[j].slot, b, "blocks keep their index slot");
                    loc[b] = round.recvs[j];
                    hops_done[b] += 1;
                    dims_done[b].push(dim);
                }
            }
        }
        for i in 0..t {
            assert_eq!(hops_done[i], hops[i], "block {i} made all its hops");
            if hops[i] > 0 {
                assert_eq!(
                    loc[i],
                    BlockRef::new(Loc::Recv, i),
                    "block {i} ends in recv"
                );
            }
            // visited exactly the non-zero dims, in increasing order
            let expect: Vec<usize> = nb
                .offset(i)
                .iter()
                .enumerate()
                .filter(|(_, &c)| c != 0)
                .map(|(d, _)| d)
                .collect();
            assert_eq!(dims_done[i], expect);
        }
        // self blocks are copied
        let copied: Vec<usize> = plan.all_copies().map(|c| c.from.slot).collect();
        let selfs: Vec<usize> = (0..t).filter(|&i| hops[i] == 0).collect();
        assert_eq!(copied, selfs);
    }

    #[test]
    fn moore_2d_plan_counts() {
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.rounds, 4); // C = 2+2
        assert_eq!(plan.volume_blocks, 12); // Table 1
        assert_eq!(plan.count_rounds(), 4);
        check_block_routing(&nb, &plan);
    }

    #[test]
    fn table1_counts_all_cells() {
        for (d, n, c, v) in [
            (2usize, 3usize, 4usize, 12usize),
            (2, 4, 6, 24),
            (2, 5, 8, 40),
            (3, 3, 6, 54),
            (3, 4, 9, 144),
            (3, 5, 12, 300),
            (4, 3, 8, 216),
            (4, 4, 12, 768),
            (5, 3, 10, 810),
        ] {
            let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
            let plan = alltoall_plan(&nb);
            assert_eq!(plan.rounds, c, "rounds d={d} n={n}");
            assert_eq!(plan.volume_blocks, v, "volume d={d} n={n}");
            check_block_routing(&nb, &plan);
        }
    }

    #[test]
    fn self_only_neighborhood_is_pure_copy() {
        let nb = RelNeighborhood::new(2, vec![vec![0, 0]]).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.volume_blocks, 0);
        assert_eq!(plan.all_copies().count(), 1);
    }

    #[test]
    fn single_axis_neighbors_one_round_each() {
        let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
        let plan = alltoall_plan(&nb);
        // every block has 1 hop; C = 6, V = 6 == t (no combining gain)
        assert_eq!(plan.rounds, 6);
        assert_eq!(plan.volume_blocks, 6);
        check_block_routing(&nb, &plan);
    }

    #[test]
    fn repeated_offsets_travel_together() {
        let nb = RelNeighborhood::new(1, vec![vec![2], vec![2], vec![-1]]).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.rounds, 2);
        assert_eq!(plan.volume_blocks, 3);
        // The round for +2 carries both blocks
        let r2 = plan.phases[0]
            .rounds
            .iter()
            .find(|r| r.offset[0] == 2)
            .unwrap();
        assert_eq!(r2.block_ids.len(), 2);
        check_block_routing(&nb, &plan);
    }

    #[test]
    fn buffer_alternation_parity() {
        // Block with 3 hops: Send -> Recv? No: remaining hops 3 (odd) =>
        // first receive goes to Recv, then Temp, then Recv (final).
        let nb = RelNeighborhood::new(3, vec![vec![1, 2, 3]]).unwrap();
        let plan = alltoall_plan(&nb);
        let recvs: Vec<Loc> = plan
            .phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.recvs[0].loc)
            .collect();
        assert_eq!(recvs, vec![Loc::Recv, Loc::Temp, Loc::Recv]);
        let sends: Vec<Loc> = plan
            .phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.sends[0].loc)
            .collect();
        assert_eq!(sends, vec![Loc::Send, Loc::Recv, Loc::Temp]);
    }

    #[test]
    fn two_hop_block_uses_temp_then_recv() {
        let nb = RelNeighborhood::new(2, vec![vec![1, 1]]).unwrap();
        let plan = alltoall_plan(&nb);
        let seq: Vec<(Loc, Loc)> = plan
            .phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| (r.sends[0].loc, r.recvs[0].loc))
            .collect();
        assert_eq!(seq, vec![(Loc::Send, Loc::Temp), (Loc::Temp, Loc::Recv)]);
    }

    #[test]
    fn rounds_group_by_coordinate_value() {
        // coords {-1, 1, 2} in dim 0 => 3 rounds in phase 0
        let nb =
            RelNeighborhood::new(2, vec![vec![-1, 0], vec![1, 0], vec![2, 0], vec![1, 1]]).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.phases[0].rounds.len(), 3);
        assert_eq!(plan.phases[1].rounds.len(), 1);
        // the +1 round in phase 0 carries blocks 1 and 3
        let r = plan.phases[0]
            .rounds
            .iter()
            .find(|r| r.offset[0] == 1)
            .unwrap();
        let mut ids = r.block_ids.clone();
        ids.sort_unstable();
        assert_eq!(ids, vec![1, 3]);
        check_block_routing(&nb, &plan);
    }

    #[test]
    fn empty_neighborhood_empty_plan() {
        let nb = RelNeighborhood::new(2, vec![]).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.rounds, 0);
        assert_eq!(plan.volume_blocks, 0);
        assert_eq!(plan.all_copies().count(), 0);
    }

    #[test]
    fn wire_order_consistent_across_send_recv() {
        // In each round, sends[j] and recvs[j] refer to the same block id.
        let nb = RelNeighborhood::stencil_family(3, 4, -1).unwrap();
        let plan = alltoall_plan(&nb);
        for phase in &plan.phases {
            for round in &phase.rounds {
                for (j, &b) in round.block_ids.iter().enumerate() {
                    assert_eq!(round.sends[j].slot, b);
                    assert_eq!(round.recvs[j].slot, b);
                }
            }
        }
    }

    #[test]
    fn block_ids_within_round_are_bucket_sorted_stable() {
        let nb = RelNeighborhood::new(1, vec![vec![5], vec![5], vec![5]]).unwrap();
        let plan = alltoall_plan(&nb);
        assert_eq!(plan.phases[0].rounds[0].block_ids, vec![0, 1, 2]);
    }

    #[test]
    fn volume_formula_matches_prop_3_2() {
        use rand::{Rng, SeedableRng};
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(42);
        for _ in 0..50 {
            let d = rng.gen_range(1..5);
            let t = rng.gen_range(0..20);
            let offsets: Vec<Vec<i64>> = (0..t)
                .map(|_| (0..d).map(|_| rng.gen_range(-3i64..4)).collect())
                .collect();
            let nb = RelNeighborhood::new(d, offsets).unwrap();
            let plan = alltoall_plan(&nb);
            assert_eq!(plan.volume_blocks, nb.alltoall_volume());
            assert_eq!(plan.rounds, nb.combining_rounds());
            plan.validate().unwrap();
            check_block_routing(&nb, &plan);
        }
    }

    #[test]
    fn hashmap_free_of_duplicate_round_offsets_per_phase() {
        let nb = RelNeighborhood::stencil_family(4, 5, -1).unwrap();
        let plan = alltoall_plan(&nb);
        for phase in &plan.phases {
            let mut seen: HashMap<Vec<i64>, usize> = HashMap::new();
            for r in &phase.rounds {
                *seen.entry(r.offset.clone()).or_default() += 1;
            }
            assert!(seen.values().all(|&v| v == 1), "one round per coordinate");
        }
    }
}
