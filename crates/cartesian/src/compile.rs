//! Schedule compilation: rank-resolved executable programs.
//!
//! A [`Plan`](crate::plan::Plan) is rank-independent and symbolic; executing
//! it interpretively pays per-execute costs the paper's persistent `_init`
//! operations (Listing 3) exist to avoid: coordinate resolution per round,
//! datatype traversal per block, and allocation per phase. A
//! [`CompiledPlan`] resolves all of that **once** for a concrete
//! `(rank, topology, layouts)` triple:
//!
//! * every round's peer pair `(target, source)` and tag, via the relative
//!   shift of Listing 2 — no `rank_of_offset` at execute time;
//! * every gather/scatter flattened into a *span program*: a short list of
//!   `(offset, len)` memcpy ranges derived from the committed
//!   [`FlatType`](cartcomm_types::FlatType)s, with adjacent ranges coalesced
//!   so a contiguous block compiles to a single `memcpy`;
//! * every local copy composed source-against-destination into
//!   `(src_offset, dst_offset, len)` triples, executed directly when the
//!   ranges cannot alias and staged through a scratch buffer otherwise;
//! * exact wire sizes, and the minimum send/receive buffer lengths, checked
//!   once per execute instead of once per block.
//!
//! [`execute_compiled`] then runs the phases with **zero heap allocation,
//! zero coordinate math, and zero datatype traversal** in steady state: wire
//! buffers come from the rank's pool, and the send/result vectors live in a
//! reusable [`ExecScratch`]. The buffered and in-place entry points share
//! one core loop, so the two modes cannot drift.

use std::collections::HashSet;

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, PooledBuf, RecvSpec, SrcSel, Tag};
use cartcomm_topo::CartTopology;
use cartcomm_types::kernel::{self, PackSpan};
use cartcomm_types::{Reducer, TypeError};

use crate::error::{CartError, CartResult};
use crate::exec::ExecLayouts;
use crate::plan::{BlockRef, Loc, Plan, PlanKind};

/// Which concrete buffer a compiled span addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BufId {
    /// The user's send buffer (aliases `Recv` in in-place mode).
    Send,
    /// The user's receive buffer.
    Recv,
    /// The executor-owned temporary buffer.
    Temp,
}

/// A run of consecutive spans addressing one buffer — the unit the pack
/// kernel executes with a single call. Batching is decided at compile
/// time, so the executor's inner loop is one kernel invocation per
/// buffer run instead of one dispatch (and one `Vec` length update) per
/// span.
#[derive(Debug, Clone, Copy)]
struct SpanBatch {
    buf: BufId,
    /// Start of this batch's range in the program's span slab.
    start: usize,
    /// Number of spans in the range.
    count: usize,
    /// Total bytes the batch moves (precomputed).
    bytes: usize,
    /// Accumulate (reduce-combine) into the destination instead of
    /// assigning. Decided at compile time by the first-touch rule: the
    /// first write to a block slot in execution order assigns, every later
    /// write folds. Always `false` for the copy-semantics collectives.
    acc: bool,
}

/// A gather or scatter span program: per-buffer [`SpanBatch`]es over one
/// shared, coalesced `(offset, len)` slab. The slab keeps every span of
/// the program contiguous in memory, so executing — and fingerprinting —
/// walks cache-linear with zero per-round allocation.
#[derive(Debug, Clone, Default)]
struct SpanProgram {
    batches: Vec<SpanBatch>,
    spans: Vec<PackSpan>,
}

impl SpanProgram {
    /// Append one span, coalescing with the previous span when it is
    /// byte-adjacent in the same buffer (so a contiguous block — or
    /// several laid out back to back — stays a single memcpy range) and
    /// extending the current batch whenever the buffer and write mode are
    /// unchanged. A mode flip (assign → accumulate) always starts a new
    /// batch, so wide-copy batching applies to accumulate runs too without
    /// ever mixing the two kernels.
    fn push(&mut self, buf: BufId, off: usize, len: usize, acc: bool) {
        if let Some(b) = self.batches.last_mut() {
            if b.buf == buf && b.acc == acc {
                let last = &mut self.spans[b.start + b.count - 1];
                if last.0 + last.1 == off {
                    last.1 += len;
                } else {
                    self.spans.push((off, len));
                    b.count += 1;
                }
                b.bytes += len;
                return;
            }
        }
        let start = self.spans.len();
        self.spans.push((off, len));
        self.batches.push(SpanBatch {
            buf,
            start,
            count: 1,
            bytes: len,
            acc,
        });
    }

    /// Memcpy ranges in the program (after coalescing).
    fn span_count(&self) -> usize {
        self.spans.len()
    }

    /// Total bytes the program moves.
    fn bytes(&self) -> usize {
        self.batches.iter().map(|b| b.bytes).sum()
    }

    /// The slab slice a batch covers.
    fn batch_spans(&self, b: &SpanBatch) -> &[PackSpan] {
        &self.spans[b.start..b.start + b.count]
    }
}

/// A local block movement compiled to `(src_offset, dst_offset, len)`
/// memcpy triples between one source and one destination buffer.
#[derive(Debug, Clone)]
struct CompiledCopy {
    src: BufId,
    dst: BufId,
    /// `(src_offset, dst_offset, len)` ranges, coalesced.
    ops: Vec<(usize, usize, usize)>,
    /// Total bytes moved (stage-buffer sizing).
    bytes: usize,
    /// Safe to copy range-by-range when send/recv are distinct buffers.
    direct_split: bool,
    /// Safe to copy range-by-range when send/recv alias one buffer.
    direct_in_place: bool,
    /// Fold into the destination instead of assigning (first-touch rule;
    /// see [`SpanBatch::acc`]).
    acc: bool,
}

/// One fully resolved communication round.
#[derive(Debug, Clone)]
struct CompiledRound {
    /// Rank the outgoing message goes to (`rank + offset`).
    target: usize,
    /// Tag of this round (`tag_base + global round index`).
    tag: Tag,
    /// Exact bytes on the wire.
    wire_len: usize,
    /// Span program filling the outgoing wire buffer.
    gather: SpanProgram,
    /// Span program unpacking the incoming wire buffer.
    scatter: SpanProgram,
}

#[derive(Debug, Clone, Default)]
struct CompiledPhase {
    copies: Vec<CompiledCopy>,
    rounds: Vec<CompiledRound>,
    /// Receive slots of the phase, aligned with `rounds` (source rank and
    /// tag resolved at compile time).
    specs: Vec<RecvSpec>,
}

/// A schedule compiled for one rank: peers, tags, wire sizes, and span
/// programs all resolved ahead of execution — the executable object behind
/// the paper's persistent collectives and the communicator's plan cache.
#[derive(Debug, Clone)]
pub struct CompiledPlan {
    kind: PlanKind,
    phases: Vec<CompiledPhase>,
    temp_len: usize,
    /// Minimum send-buffer length any span touches.
    send_min_len: usize,
    /// Minimum receive-buffer length any span touches.
    recv_min_len: usize,
    rounds: usize,
    max_copy_bytes: usize,
    max_phase_rounds: usize,
}

/// Reusable per-handle executor state: the temp buffer, the copy staging
/// buffer, and the [`ExchangeBatch`] of the phase exchange. Holding one
/// of these across executes is what makes the steady state allocation-free.
#[derive(Default)]
pub struct ExecScratch {
    temp: Vec<u8>,
    stage: Vec<u8>,
    batch: ExchangeBatch,
}

impl ExecScratch {
    /// Scratch sized for `cp`: nothing grows during execution.
    pub fn for_plan(cp: &CompiledPlan) -> Self {
        ExecScratch {
            temp: vec![0u8; cp.temp_len],
            stage: Vec::with_capacity(cp.max_copy_bytes),
            batch: ExchangeBatch::with_capacity(cp.max_phase_rounds),
        }
    }
}

impl CompiledPlan {
    /// Compile `plan` for the calling `rank`. `lay` must carry temp-slot
    /// sizing (see `ops::size_temp`); `tag_base` is the tag of round 0.
    /// Fails with [`CartError::CombiningNeedsTorus`] if a round's offset
    /// leaves the topology (non-periodic dimension) and propagates layout
    /// errors (negative resolved displacements) as type errors.
    pub fn compile(
        topo: &CartTopology,
        rank: usize,
        plan: &Plan,
        lay: &ExecLayouts,
        tag_base: Tag,
    ) -> CartResult<CompiledPlan> {
        let mut cp = CompiledPlan {
            kind: plan.kind,
            phases: Vec::with_capacity(plan.phases.len()),
            temp_len: lay.temp_len(),
            send_min_len: 0,
            recv_min_len: 0,
            rounds: 0,
            max_copy_bytes: 0,
            max_phase_rounds: 0,
        };
        let mut round_idx: Tag = 0;
        // One negated-offset buffer serves every source lookup of the
        // compilation (the executor performs none at all).
        let mut neg: Vec<i64> = Vec::with_capacity(topo.ndims());
        // First-touch write tracking for the reduction kinds: the first
        // write to a block slot (walked in execution order — copies in list
        // order, then each round's receives in wire order) assigns, every
        // later one accumulates. Copy-semantics plans never accumulate.
        let reduce = plan.kind.is_reduction();
        let mut written: HashSet<(u8, usize)> = HashSet::new();
        let mut write_mode = |br: BlockRef| -> bool {
            reduce
                && !written.insert((
                    match br.loc {
                        Loc::Send => 1,
                        Loc::Recv => 2,
                        Loc::Temp => 3,
                    },
                    br.slot,
                ))
        };
        for phase in &plan.phases {
            let mut cphase = CompiledPhase::default();
            for copy in &phase.copies {
                let acc = write_mode(copy.to);
                let cc = cp.compile_copy(lay, copy.from, copy.to, acc)?;
                cp.max_copy_bytes = cp.max_copy_bytes.max(cc.bytes);
                cphase.copies.push(cc);
            }
            for round in &phase.rounds {
                let target = topo
                    .rank_of_offset(rank, &round.offset)?
                    .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
                neg.clear();
                neg.extend(round.offset.iter().map(|&c| -c));
                let source = topo
                    .rank_of_offset(rank, &neg)?
                    .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
                let tag = tag_base + round_idx;
                round_idx += 1;

                let mut gather = SpanProgram::default();
                let mut scatter = SpanProgram::default();
                let mut wire_len = 0usize;
                for j in 0..round.block_ids.len() {
                    wire_len += cp.push_block(lay, round.sends[j], &mut gather, false)?;
                    let acc = write_mode(round.recvs[j]);
                    cp.push_block(lay, round.recvs[j], &mut scatter, acc)?;
                }
                debug_assert_eq!(
                    wire_len,
                    round.block_ids.iter().map(|&b| lay.block_bytes[b]).sum(),
                    "gather program covers exactly the round's block bytes"
                );
                debug_assert_eq!(
                    scatter.bytes(),
                    wire_len,
                    "scatter program consumes exactly the wire"
                );
                cphase.specs.push(RecvSpec::from_rank(source, tag));
                cphase.rounds.push(CompiledRound {
                    target,
                    tag,
                    wire_len,
                    gather,
                    scatter,
                });
            }
            cp.rounds += cphase.rounds.len();
            cp.max_phase_rounds = cp.max_phase_rounds.max(cphase.rounds.len());
            cp.phases.push(cphase);
        }
        Ok(cp)
    }

    /// Resolve a block reference to absolute spans and append them to a
    /// span program, coalescing ranges adjacent in both buffer and wire
    /// order (so a contiguous block — or several contiguous blocks laid out
    /// back to back — becomes a single memcpy). Returns the block's bytes.
    fn push_block(
        &mut self,
        lay: &ExecLayouts,
        br: BlockRef,
        prog: &mut SpanProgram,
        acc: bool,
    ) -> CartResult<usize> {
        let (buf, spans) = resolve_block(lay, br)?;
        let mut total = 0usize;
        for (off, len) in spans {
            if len == 0 {
                continue;
            }
            total += len;
            self.note_extent(buf, off, len);
            prog.push(buf, off, len, acc);
        }
        Ok(total)
    }

    /// Compose a local copy's source spans against its destination spans
    /// into `(src_offset, dst_offset, len)` triples and classify when the
    /// triples may run directly (no staging).
    fn compile_copy(
        &mut self,
        lay: &ExecLayouts,
        from: BlockRef,
        to: BlockRef,
        acc: bool,
    ) -> CartResult<CompiledCopy> {
        let (src_buf, src) = resolve_block(lay, from)?;
        let (dst_buf, dst) = resolve_block(lay, to)?;
        let src_total: usize = src.iter().map(|s| s.1).sum();
        let dst_total: usize = dst.iter().map(|s| s.1).sum();
        if src_total != dst_total {
            return Err(CartError::BlockSizeMismatch {
                block: to.slot,
                send: src_total,
                recv: dst_total,
            });
        }
        let mut ops: Vec<(usize, usize, usize)> = Vec::new();
        let (mut si, mut di) = (0usize, 0usize);
        let (mut s_used, mut d_used) = (0usize, 0usize);
        loop {
            while si < src.len() && s_used == src[si].1 {
                si += 1;
                s_used = 0;
            }
            while di < dst.len() && d_used == dst[di].1 {
                di += 1;
                d_used = 0;
            }
            if si == src.len() || di == dst.len() {
                break;
            }
            let n = (src[si].1 - s_used).min(dst[di].1 - d_used);
            let s_off = src[si].0 + s_used;
            let d_off = dst[di].0 + d_used;
            s_used += n;
            d_used += n;
            self.note_extent(src_buf, s_off, n);
            self.note_extent(dst_buf, d_off, n);
            if let Some(last) = ops.last_mut() {
                if last.0 + last.2 == s_off && last.1 + last.2 == d_off {
                    last.2 += n;
                    continue;
                }
            }
            ops.push((s_off, d_off, n));
        }
        Ok(CompiledCopy {
            src: src_buf,
            dst: dst_buf,
            direct_split: copy_is_direct(src_buf, dst_buf, &ops, false),
            direct_in_place: copy_is_direct(src_buf, dst_buf, &ops, true),
            ops,
            bytes: src_total,
            acc,
        })
    }

    /// Record the minimum user-buffer length a span implies.
    fn note_extent(&mut self, buf: BufId, off: usize, len: usize) {
        match buf {
            BufId::Send => self.send_min_len = self.send_min_len.max(off + len),
            BufId::Recv => self.recv_min_len = self.recv_min_len.max(off + len),
            BufId::Temp => debug_assert!(off + len <= self.temp_len, "temp span in bounds"),
        }
    }

    // ----- introspection ---------------------------------------------------

    /// The collective semantics this program implements.
    pub fn kind(&self) -> PlanKind {
        self.kind
    }

    /// Total communication rounds per execute (= pool acquisitions in
    /// steady state).
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Temp-buffer bytes an executor must provide.
    pub fn temp_len(&self) -> usize {
        self.temp_len
    }

    /// Minimum send-buffer length (buffered mode).
    pub fn send_min_len(&self) -> usize {
        self.send_min_len
    }

    /// Minimum receive-buffer length (buffered mode).
    pub fn recv_min_len(&self) -> usize {
        self.recv_min_len
    }

    /// Exact per-round wire sizes in execution order — the capacities to
    /// pre-warm a wire pool with.
    pub fn wire_capacities(&self) -> Vec<usize> {
        self.phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.wire_len)
            .collect()
    }

    /// Resolved `(target, source)` rank pair per round, in execution order.
    pub fn round_peers(&self) -> Vec<(usize, usize)> {
        self.phases
            .iter()
            .flat_map(|p| p.rounds.iter().zip(&p.specs))
            .map(|(r, spec)| {
                let src = match spec.src {
                    cartcomm_comm::SrcSel::Rank(s) => s,
                    cartcomm_comm::SrcSel::Any => usize::MAX,
                };
                (r.target, src)
            })
            .collect()
    }

    /// Number of local copies across all phases.
    pub fn copy_count(&self) -> usize {
        self.phases.iter().map(|p| p.copies.len()).sum()
    }

    /// Total memcpy ranges across all span programs — a measure of how far
    /// coalescing compressed the datatype machinery.
    pub fn span_count(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.gather.span_count() + r.scatter.span_count())
            .sum::<usize>()
            + self
                .phases
                .iter()
                .flat_map(|p| &p.copies)
                .map(|c| c.ops.len())
                .sum::<usize>()
    }

    /// A stable structural fingerprint of the fully compiled program: every
    /// round's peer/tag/wire size and the *logical* `(buffer, offset, len)`
    /// sequence of each gather/scatter span program and local copy, hashed
    /// with FNV-1a (platform- and rustc-version-independent, unlike
    /// `DefaultHasher`). Two compiled plans with equal fingerprints move
    /// exactly the same bytes in the same order; golden values pin the
    /// schedule representation against refactors.
    pub fn program_fingerprint(&self) -> u64 {
        let mut h = Fnv::new();
        h.u64(match self.kind {
            PlanKind::Alltoall => 1,
            PlanKind::Allgather => 2,
            PlanKind::ReduceScatter => 3,
            PlanKind::Allreduce => 4,
        });
        // Write modes are hashed only for the reduction kinds, so the
        // committed alltoall/allgather goldens stay byte-identical.
        let red = self.kind.is_reduction();
        h.u64(self.temp_len as u64);
        h.u64(self.send_min_len as u64);
        h.u64(self.recv_min_len as u64);
        for phase in &self.phases {
            h.u64(0xFACE);
            for c in &phase.copies {
                h.u64(0xC0);
                if red && c.acc {
                    h.u64(0xACC);
                }
                h.u64(buf_tag(c.src));
                h.u64(buf_tag(c.dst));
                h.u64(c.direct_split as u64);
                h.u64(c.direct_in_place as u64);
                for &(s, d, n) in &c.ops {
                    h.u64(s as u64);
                    h.u64(d as u64);
                    h.u64(n as u64);
                }
            }
            for (r, spec) in phase.rounds.iter().zip(&phase.specs) {
                h.u64(0xF0);
                h.u64(r.target as u64);
                h.u64(spec_src(spec) as u64);
                h.u64(r.tag as u64);
                h.u64(r.wire_len as u64);
                // Batches expand back to the per-span (buffer, offset,
                // len) stream, so fingerprints are representation-blind:
                // the flat-slab program hashes identically to the
                // per-span op list it replaced.
                for b in &r.gather.batches {
                    for &(off, len) in r.gather.batch_spans(b) {
                        h.u64(buf_tag(b.buf));
                        h.u64(off as u64);
                        h.u64(len as u64);
                    }
                }
                h.u64(0x5C);
                for b in &r.scatter.batches {
                    for &(off, len) in r.scatter.batch_spans(b) {
                        if red && b.acc {
                            h.u64(0xACC);
                        }
                        h.u64(buf_tag(b.buf));
                        h.u64(off as u64);
                        h.u64(len as u64);
                    }
                }
            }
        }
        h.finish()
    }
}

fn buf_tag(buf: BufId) -> u64 {
    match buf {
        BufId::Send => 1,
        BufId::Recv => 2,
        BufId::Temp => 3,
    }
}

/// Minimal FNV-1a 64 over a u64 stream: deterministic across platforms and
/// compiler versions, so fingerprints can be committed as goldens.
pub(crate) struct Fnv(u64);

impl Fnv {
    pub(crate) fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }

    pub(crate) fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    pub(crate) fn finish(&self) -> u64 {
        self.0
    }
}

fn resolve_block(lay: &ExecLayouts, br: BlockRef) -> CartResult<(BufId, Vec<(usize, usize)>)> {
    Ok(match br.loc {
        Loc::Send => {
            let l = &lay.send[br.slot];
            (BufId::Send, l.ty.resolved_spans(l.disp)?)
        }
        Loc::Recv => {
            let l = &lay.recv[br.slot];
            (BufId::Recv, l.ty.resolved_spans(l.disp)?)
        }
        Loc::Temp => (
            BufId::Temp,
            vec![(lay.temp_offsets[br.slot], lay.temp_sizes[br.slot])],
        ),
    })
}

/// A compiled copy may skip staging iff no destination range can alias any
/// source range. `in_place` treats `Send` and `Recv` as one buffer.
fn copy_is_direct(src: BufId, dst: BufId, ops: &[(usize, usize, usize)], in_place: bool) -> bool {
    let same_buffer = src == dst || (in_place && src != BufId::Temp && dst != BufId::Temp);
    if !same_buffer {
        return true;
    }
    for &(s_off, _, s_len) in ops {
        for &(_, d_off, d_len) in ops {
            if s_off < d_off + d_len && d_off < s_off + s_len {
                return false;
            }
        }
    }
    true
}

pub(crate) fn nonperiodic_dim(topo: &CartTopology, offset: &[i64]) -> CartError {
    let dim = offset
        .iter()
        .enumerate()
        .find(|(k, &c)| c != 0 && !topo.periods()[*k])
        .map(|(k, _)| k)
        .unwrap_or(0);
    CartError::CombiningNeedsTorus { dim }
}

// ----- execution -----------------------------------------------------------

/// The executor's view of the user buffers. `send` is `None` in in-place
/// mode, where reads from the send side resolve to `user`.
struct Mem<'a> {
    send: Option<&'a [u8]>,
    user: &'a mut [u8],
    temp: &'a mut [u8],
}

impl Mem<'_> {
    #[inline]
    fn read(&self, buf: BufId) -> &[u8] {
        match buf {
            BufId::Send => self.send.unwrap_or(self.user),
            BufId::Recv => self.user,
            BufId::Temp => self.temp,
        }
    }

    fn gather(&self, prog: &SpanProgram, wire: &mut PooledBuf) {
        for b in &prog.batches {
            kernel::gather_spans(self.read(b.buf), prog.batch_spans(b), wire);
        }
    }

    fn scatter(&mut self, prog: &SpanProgram, wire: &[u8], red: Option<Reducer>) {
        let mut pos = 0usize;
        for b in &prog.batches {
            let dst: &mut [u8] = match b.buf {
                BufId::Send => unreachable!("plans never write the send buffer"),
                BufId::Recv => self.user,
                BufId::Temp => self.temp,
            };
            pos += if b.acc {
                let red = red.expect("accumulating batch requires a reducer");
                kernel::accumulate_spans(dst, prog.batch_spans(b), &wire[pos..], red)
            } else {
                kernel::scatter_spans(dst, prog.batch_spans(b), &wire[pos..])
            };
        }
    }

    fn run_copy(&mut self, c: &CompiledCopy, stage: &mut Vec<u8>, red: Option<Reducer>) {
        if c.acc {
            // Accumulating copy: gather every source range into the stage,
            // then fold the stage into the destination. Staging makes the
            // fold trivially alias-safe in both split and in-place modes.
            let red = red.expect("accumulating copy requires a reducer");
            stage.clear();
            stage.reserve(c.bytes);
            for &(s, _, n) in &c.ops {
                kernel::gather_spans(self.read(c.src), &[(s, n)], stage);
            }
            let mut pos = 0usize;
            for &(_, d, n) in &c.ops {
                let dst: &mut [u8] = match c.dst {
                    BufId::Send => unreachable!("plans never write the send buffer"),
                    BufId::Recv => self.user,
                    BufId::Temp => self.temp,
                };
                red.fold(&mut dst[d..d + n], &stage[pos..pos + n]);
                pos += n;
            }
            return;
        }
        let direct = if self.send.is_none() {
            c.direct_in_place
        } else {
            c.direct_split
        };
        if direct {
            for &(s, d, n) in &c.ops {
                self.copy_range(c.src, s, c.dst, d, n);
            }
        } else {
            // Gather everything before writing anything (aliasing safety —
            // the same order the interpreted executor staged through a
            // pooled buffer).
            stage.clear();
            stage.reserve(c.bytes);
            for &(s, _, n) in &c.ops {
                kernel::gather_spans(self.read(c.src), &[(s, n)], stage);
            }
            let mut pos = 0usize;
            for &(_, d, n) in &c.ops {
                let dst: &mut [u8] = match c.dst {
                    BufId::Send => unreachable!("plans never write the send buffer"),
                    BufId::Recv => self.user,
                    BufId::Temp => self.temp,
                };
                kernel::copy_wide(&mut dst[d..d + n], &stage[pos..pos + n]);
                pos += n;
            }
        }
    }

    /// One direct memcpy range (only called when proven alias-free).
    fn copy_range(&mut self, src: BufId, s: usize, dst: BufId, d: usize, n: usize) {
        use BufId::*;
        let in_place = self.send.is_none();
        match (src, dst) {
            // Same-buffer ranges stay on `copy_within`: `copy_raw`
            // requires non-overlap, and these ranges — though proven
            // alias-free per op — share one borrow.
            (Temp, Temp) => self.temp.copy_within(s..s + n, d),
            (Temp, Recv) => kernel::copy_wide(&mut self.user[d..d + n], &self.temp[s..s + n]),
            (Recv, Temp) => kernel::copy_wide(&mut self.temp[d..d + n], &self.user[s..s + n]),
            (Send, Temp) => {
                let from = self.send.unwrap_or(self.user);
                kernel::copy_wide(&mut self.temp[d..d + n], &from[s..s + n]);
            }
            (Send, Recv) if in_place => self.user.copy_within(s..s + n, d),
            (Send, Recv) => kernel::copy_wide(
                &mut self.user[d..d + n],
                &self.send.expect("split mode")[s..s + n],
            ),
            (Recv, Recv) => self.user.copy_within(s..s + n, d),
            (_, Send) => unreachable!("plans never write the send buffer"),
        }
    }
}

fn too_small(required: usize, available: usize) -> CartError {
    CartError::Type(TypeError::BufferTooSmall {
        required,
        available,
    })
}

/// Execute a compiled plan with separate send and receive buffers. In
/// steady state (warm pool, sized scratch) this performs no heap
/// allocation, no coordinate math, and no datatype traversal — every byte
/// moves through precompiled memcpy ranges.
pub fn execute_compiled(
    comm: &Comm,
    cp: &CompiledPlan,
    send: &[u8],
    recv: &mut [u8],
    scratch: &mut ExecScratch,
) -> CartResult<()> {
    if cp.kind.is_reduction() {
        return Err(needs_reducer());
    }
    if send.len() < cp.send_min_len {
        return Err(too_small(cp.send_min_len, send.len()));
    }
    if recv.len() < cp.recv_min_len {
        return Err(too_small(cp.recv_min_len, recv.len()));
    }
    execute_core(comm, cp, Some(send), recv, scratch, None)
}

/// Execute a compiled reduction plan: identical steady state to
/// [`execute_compiled`] — zero allocation, precompiled span programs — with
/// the accumulating batches folding wire bytes through `red`. The reducer
/// is an execute-time argument, not part of the compiled program, so one
/// cached plan serves every operator and dtype of the same block geometry.
pub fn execute_compiled_reduce(
    comm: &Comm,
    cp: &CompiledPlan,
    send: &[u8],
    recv: &mut [u8],
    scratch: &mut ExecScratch,
    red: Reducer,
) -> CartResult<()> {
    if !cp.kind.is_reduction() {
        return Err(CartError::Type(TypeError::InvalidArgument(
            "execute_compiled_reduce requires a reduction plan".into(),
        )));
    }
    if send.len() < cp.send_min_len {
        return Err(too_small(cp.send_min_len, send.len()));
    }
    if recv.len() < cp.recv_min_len {
        return Err(too_small(cp.recv_min_len, recv.len()));
    }
    execute_core(comm, cp, Some(send), recv, scratch, Some(red))
}

/// Execute a compiled plan sending and receiving in the same buffer (the
/// halo-exchange mode). Shares the core loop with [`execute_compiled`].
pub fn execute_compiled_in_place(
    comm: &Comm,
    cp: &CompiledPlan,
    buf: &mut [u8],
    scratch: &mut ExecScratch,
) -> CartResult<()> {
    if cp.kind.is_reduction() {
        return Err(needs_reducer());
    }
    let need = cp.send_min_len.max(cp.recv_min_len);
    if buf.len() < need {
        return Err(too_small(need, buf.len()));
    }
    execute_core(comm, cp, None, buf, scratch, None)
}

fn needs_reducer() -> CartError {
    CartError::Type(TypeError::InvalidArgument(
        "reduction plans must run through execute_compiled_reduce".into(),
    ))
}

/// Source rank of a compiled receive spec (always rank-resolved).
fn spec_src(spec: &RecvSpec) -> usize {
    match spec.src {
        SrcSel::Rank(s) => s,
        SrcSel::Any => usize::MAX,
    }
}

fn execute_core(
    comm: &Comm,
    cp: &CompiledPlan,
    send: Option<&[u8]>,
    user: &mut [u8],
    scratch: &mut ExecScratch,
    red: Option<Reducer>,
) -> CartResult<()> {
    if scratch.temp.len() < cp.temp_len {
        scratch.temp.resize(cp.temp_len, 0);
    }
    let ExecScratch { temp, stage, batch } = scratch;
    let mut mem = Mem {
        send,
        user,
        temp: temp.as_mut_slice(),
    };
    let obs = comm.obs();
    let metrics = obs.metrics();
    let rank = comm.rank();
    let mut round_base = 0usize;
    for (k, phase) in cp.phases.iter().enumerate() {
        for c in &phase.copies {
            mem.run_copy(c, stage, red);
        }
        if phase.rounds.is_empty() {
            continue;
        }
        // With tracing disabled (the common case), the per-phase cost of
        // observability is the counter increments below plus one relaxed
        // load per emit site — no clock reads, no event construction.
        let traced = obs.enabled();
        let t0 = if traced { obs.now_ns() } else { 0 };
        for (i, r) in phase.rounds.iter().enumerate() {
            let mut wire = comm.wire_buf(r.wire_len);
            mem.gather(&r.gather, &mut wire);
            debug_assert_eq!(wire.len(), r.wire_len, "gather fills the wire exactly");
            metrics.round_started();
            metrics.pack(r.gather.span_count(), r.wire_len);
            if traced {
                let round = round_base + i;
                obs.emit(
                    rank,
                    TraceEvent::RoundStart {
                        phase: k,
                        round,
                        to: r.target,
                        from: spec_src(&phase.specs[i]),
                        wire_bytes: r.wire_len,
                        attempt: 0,
                    },
                );
                obs.emit(
                    rank,
                    TraceEvent::PackSpan {
                        round,
                        spans: r.gather.span_count(),
                        bytes: r.wire_len,
                    },
                );
            }
            batch.send(r.target, r.tag, wire);
        }
        comm.exchange(batch, &phase.specs, ExchangeOpts::pooled())?;
        for (i, r) in phase.rounds.iter().enumerate() {
            let (wire, status) = batch.take_result(i).expect("exchange fills every slot");
            if wire.len() != r.wire_len {
                return Err(CartError::BadBufferSize {
                    what: "incoming round message",
                    expected: r.wire_len,
                    actual: wire.len(),
                });
            }
            mem.scatter(&r.scatter, &wire, red);
            metrics.round_completed();
            if traced {
                obs.emit(
                    rank,
                    TraceEvent::RoundEnd {
                        phase: k,
                        round: round_base + i,
                        to: r.target,
                        from: status.src,
                        wire_bytes: r.wire_len,
                        attempt: 0,
                    },
                );
                if red.is_some() {
                    obs.emit(
                        rank,
                        TraceEvent::AccumSpan {
                            round: round_base + i,
                            spans: r.scatter.span_count(),
                            bytes: r.wire_len,
                        },
                    );
                }
            }
            // `wire` drops here and recycles into this rank's pool.
        }
        if traced {
            // One latency sample per phase exchange: the rounds of a phase
            // complete together in a single `Waitall`-style batch.
            metrics.record_round_ns(obs.now_ns().saturating_sub(t0));
        }
        round_base += phase.rounds.len();
    }
    Ok(())
}
