//! `Cart_allgather{,v,w}`: replicated sparse exchange in trivial and
//! message-combining (tree-routing) variants.

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::{ExchangeBatch, ExchangeOpts, RecvSpec, Tag};
use cartcomm_types::{cast_slice, cast_slice_mut, gather_append, scatter, Pod};

use crate::cartcomm::CartComm;
use crate::compile::{execute_compiled, ExecScratch};
use crate::error::CartResult;
use crate::exec::{ExecLayouts, CART_TAG_BASE};
use crate::ops::{
    check_combining, choose_combining, size_temp, v_layouts, w_layouts, Algo, WBlock,
};
use crate::plan::PlanKind;

/// Tag base for trivial allgather rounds (distinct from the alltoall base
/// so interleaved trivial operations cannot be confused even without the
/// FIFO argument).
pub const TRIVIAL_AG_TAG_BASE: Tag = 0x7C00_0000;

impl CartComm {
    // ----- regular -------------------------------------------------------------

    /// Message-combining `Cart_allgather`: send the whole of `send`
    /// (`m = send.len()` elements) to every target neighbor; receive block
    /// `i` of `recv` from source neighbor `i`. For Moore-style stencils the
    /// routing-tree volume equals the trivial algorithm's `t` blocks while
    /// using exponentially fewer rounds (Table 1), so combining should win
    /// at every block size.
    pub fn allgather<T: Pod>(&self, send: &[T], recv: &mut [T], algo: Algo) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::Allgather)?;
        self.run_allgather(lay, cast_slice(send), cast_slice_mut(recv), algo)
    }

    /// Trivial t-round `Cart_allgather`.
    #[deprecated(since = "0.2.0", note = "use `allgather(send, recv, Algo::Trivial)`")]
    pub fn allgather_trivial<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        self.allgather(send, recv, Algo::Trivial)
    }

    // ----- irregular displacements (v) --------------------------------------------

    /// Message-combining `Cart_allgatherv`: one uniform block size with
    /// per-source displacements (in elements). As discussed in DESIGN.md,
    /// Cartesian isomorphism forces allgather block sizes to be uniform, so
    /// the `v` variant varies placement, not size.
    pub fn allgatherv<T: Pod>(
        &self,
        send: &[T],
        recv: &mut [T],
        recvcount: usize,
        recvdispls: &[usize],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.vg_lay::<T>(send.len(), recvcount, recvdispls)?;
        self.run_allgather(lay, cast_slice(send), cast_slice_mut(recv), algo)
    }

    /// Trivial `Cart_allgatherv`.
    #[deprecated(since = "0.2.0", note = "use `allgatherv(..., Algo::Trivial)`")]
    pub fn allgatherv_trivial<T: Pod>(
        &self,
        send: &[T],
        recv: &mut [T],
        recvcount: usize,
        recvdispls: &[usize],
    ) -> CartResult<()> {
        self.allgatherv(send, recv, recvcount, recvdispls, Algo::Trivial)
    }

    // ----- fully typed (w) ----------------------------------------------------------

    /// Message-combining `Cart_allgatherw` — the operation the paper
    /// proposes adding to MPI: per-source datatypes so every incoming block
    /// lands directly in its final (possibly non-contiguous) place. All
    /// blocks must describe the same number of bytes.
    pub fn allgatherw(
        &self,
        send: &[u8],
        sendblock: &WBlock,
        recv: &mut [u8],
        recvspec: &[WBlock],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.wg_lay(sendblock, recvspec)?;
        self.run_allgather(lay, send, recv, algo)
    }

    /// Trivial `Cart_allgatherw`.
    #[deprecated(since = "0.2.0", note = "use `allgatherw(..., Algo::Trivial)`")]
    pub fn allgatherw_trivial(
        &self,
        send: &[u8],
        sendblock: &WBlock,
        recv: &mut [u8],
        recvspec: &[WBlock],
    ) -> CartResult<()> {
        self.allgatherw(send, sendblock, recv, recvspec, Algo::Trivial)
    }

    // ----- engines --------------------------------------------------------------------

    fn vg_lay<T: Pod>(
        &self,
        send_len: usize,
        recvcount: usize,
        recvdispls: &[usize],
    ) -> CartResult<ExecLayouts> {
        let t = self.neighbor_count();
        crate::ops::check_len("recvdispls", t, recvdispls.len())?;
        let recvcounts = vec![recvcount; t];
        v_layouts(
            std::mem::size_of::<T>(),
            &[send_len],
            &[0],
            &recvcounts,
            recvdispls,
            PlanKind::Allgather,
        )
    }

    fn wg_lay(&self, sendblock: &WBlock, recvspec: &[WBlock]) -> CartResult<ExecLayouts> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        w_layouts(
            std::slice::from_ref(sendblock),
            recvspec,
            PlanKind::Allgather,
        )
    }

    /// Resolve `algo` and dispatch to the combining or trivial engine.
    pub(crate) fn run_allgather(
        &self,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
        algo: Algo,
    ) -> CartResult<()> {
        let use_combining = match algo {
            Algo::Trivial => false,
            Algo::Combining => true,
            auto => choose_combining(auto, &self.plans().allgather(), &lay),
        };
        if use_combining {
            self.run_combining_allgather(lay, send, recv)
        } else {
            self.run_trivial_allgather(&lay, send, recv)
        }
    }

    pub(crate) fn run_combining_allgather(
        &self,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        if check_combining(self).is_ok() {
            // Torus: run the compiled routing-tree program (cached across
            // repeated calls with the same neighborhood and layouts).
            let cp = self.plans().compiled(PlanKind::Allgather, lay)?;
            let mut scratch = ExecScratch::for_plan(&cp);
            execute_compiled(self.comm(), &cp, send, recv, &mut scratch)
        } else {
            // Non-periodic mesh: the allgather routing tree assumes every
            // forwarder exists, which boundary processes violate. Fall
            // back to the alltoall router with the single contributed
            // block replicated per neighbor: still C combining rounds
            // (volume Σ zᵢ instead of tree edges), with the mesh
            // executor's per-rank live-block filtering.
            let t = self.neighbor_count();
            let single = lay.send.first().cloned();
            let replicated = ExecLayouts {
                send: match single {
                    Some(s) => vec![s; t],
                    None => Vec::new(),
                },
                recv: lay.recv,
                block_bytes: lay.block_bytes,
                temp_offsets: Vec::new(),
                temp_sizes: Vec::new(),
            };
            let plan = self.plans().alltoall();
            let replicated = size_temp(replicated, PlanKind::Alltoall, plan.temp_slots)?;
            let mut temp = vec![0u8; replicated.temp_len()];
            crate::exec_mesh::execute_alltoall_mesh(
                self.comm(),
                self.topology(),
                self.neighborhood(),
                &plan,
                &replicated,
                send,
                recv,
                &mut temp,
                CART_TAG_BASE,
            )
        }
    }

    /// The trivial t-round allgather: one blocking sendrecv per neighbor,
    /// the same block sent each time. Mesh boundaries skip missing
    /// neighbors.
    pub(crate) fn run_trivial_allgather(
        &self,
        lay: &ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        let obs = self.comm().obs();
        let metrics = obs.metrics();
        let traced = obs.enabled();
        let rank = self.comm().rank();
        let mut batch = ExchangeBatch::with_capacity(1);
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            let tag = TRIVIAL_AG_TAG_BASE + i as Tag;
            if off.iter().all(|&c| c == 0) {
                let mut bytes = self.comm().wire_buf(lay.send[0].size());
                gather_append(send, lay.send[0].disp, &lay.send[0].ty, &mut bytes)?;
                scatter(&bytes, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
                continue;
            }
            let (source, target) = self.relative_shift(off)?;
            if let Some(dst) = target {
                let mut wire = self.comm().wire_buf(lay.send[0].size());
                gather_append(send, lay.send[0].disp, &lay.send[0].ty, &mut wire)?;
                metrics.round_started();
                metrics.pack(1, wire.len());
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundStart {
                            phase: 0,
                            round: i,
                            to: dst,
                            from: source.unwrap_or(usize::MAX),
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
                batch.send(dst, tag, wire);
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            self.comm()
                .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
            if let Some((wire, status)) = batch.take_result(0) {
                scatter(&wire, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
                metrics.round_completed();
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundEnd {
                            phase: 0,
                            round: i,
                            to: rank,
                            from: status.src,
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}
