//! The Cartesian collective operations.
//!
//! Every operation of §2 has one entry point taking an [`Algo`] selector:
//!
//! | paper name            | entry point               |
//! |-----------------------|---------------------------|
//! | `Cart_alltoall`       | [`CartComm::alltoall`]    |
//! | `Cart_alltoallv`      | [`CartComm::alltoallv`]   |
//! | `Cart_alltoallw`      | [`CartComm::alltoallw`]   |
//! | `Cart_allgather`      | [`CartComm::allgather`]   |
//! | `Cart_allgatherv`     | [`CartComm::allgatherv`]  |
//! | `Cart_allgatherw`     | [`CartComm::allgatherw`]  |
//! | `Cart_*_init`         | [`persistent`] handles    |
//!
//! [`Algo::Combining`] runs the message-combining schedule of §3,
//! [`Algo::Trivial`] the t-round Listing-4 algorithm, and [`Algo::Auto`]
//! picks per the paper's §3.2 cut-off from the machine's α/β ratio. The
//! former `*_trivial` methods remain as deprecated shims for one release.
//!
//! The `w` variants take per-neighbor datatypes ([`WBlock`]), eliminating
//! intermediate buffers for stencil halos (Listing 3); `Cart_allgatherw`
//! is the operation the paper proposes *adding* to MPI.

pub mod allgather;
pub mod alltoall;
pub mod persistent;

pub use persistent::{PersistentCollective, PersistentReduction};

use cartcomm_types::{Datatype, FlatType};

use crate::cartcomm::CartComm;
use crate::error::{CartError, CartResult};
use crate::exec::{BlockLayout, ExecLayouts};
use crate::plan::{Plan, PlanKind};

/// Algorithm selector for the Cartesian collectives (one-shot and
/// persistent alike).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algo {
    /// Always the t-round trivial algorithm (Listing 4).
    Trivial,
    /// Always the message-combining schedule (§3).
    Combining,
    /// Choose per the paper's cut-off: combining iff the average block size
    /// `m` (bytes) satisfies `m < ratio · (t−C)/(V−t)` where `ratio = α/β`
    /// is the machine's latency/bandwidth ratio in bytes.
    Auto {
        /// α/β in bytes (e.g. ~2 µs / (0.08 ns/B) ≈ 25000).
        alpha_beta_bytes: f64,
    },
}

/// Former name of [`Algo`].
#[deprecated(since = "0.2.0", note = "renamed to `Algo`")]
pub type Algorithm = Algo;

/// Resolve an [`Algo`] against a plan and concrete layouts: `true` iff the
/// message-combining schedule should run. `Auto` applies the §3.2 cut-off
/// on the average block size; when `V == t` combining moves no extra data,
/// so it wins whenever it also saves rounds.
pub(crate) fn choose_combining(algo: Algo, plan: &Plan, lay: &ExecLayouts) -> bool {
    match algo {
        Algo::Trivial => false,
        Algo::Combining => true,
        Algo::Auto { alpha_beta_bytes } => {
            let t = plan.t;
            let c = plan.rounds;
            let v = plan.volume_blocks;
            let m_avg = if t == 0 {
                0.0
            } else {
                lay.block_bytes.iter().sum::<usize>() as f64 / t as f64
            };
            match crate::cost::cutoff_ratio(t, c, v) {
                Some(ratio) => m_avg < alpha_beta_bytes * ratio,
                None => c < t,
            }
        }
    }
}

/// One block of an irregular-with-types (`w`) operation: `count` copies of
/// `ty` at byte displacement `disp` — the `(displacement, count, datatype)`
/// triple of `MPI_Neighbor_alltoallw`.
#[derive(Debug, Clone)]
pub struct WBlock {
    /// Byte displacement into the buffer.
    pub disp: i64,
    /// Number of `ty` elements.
    pub count: usize,
    /// Element datatype.
    pub ty: Datatype,
}

impl WBlock {
    /// Convenience constructor.
    pub fn new(disp: i64, count: usize, ty: &Datatype) -> Self {
        WBlock {
            disp,
            count,
            ty: ty.clone(),
        }
    }

    /// Commit to a block layout.
    pub fn commit(&self) -> CartResult<BlockLayout> {
        let ty: FlatType = if self.count == 1 {
            self.ty.commit()?
        } else {
            Datatype::contiguous(self.count, &self.ty).commit()?
        };
        Ok(BlockLayout {
            disp: self.disp,
            ty,
        })
    }
}

// ----- layout builders --------------------------------------------------------

/// Regular layouts: `t` equal contiguous blocks of `block_bytes` each, in
/// neighbor order. The multi-block side is the receive buffer for the
/// gathering collectives and the send buffer for reduce-scatter; allgather
/// sends and the reductions receive a single block.
pub(crate) fn regular_layouts(t: usize, block_bytes: usize, kind: PlanKind) -> ExecLayouts {
    let blocks: Vec<BlockLayout> = (0..t)
        .map(|i| BlockLayout::contiguous((i * block_bytes) as i64, block_bytes))
        .collect();
    let single = vec![BlockLayout::contiguous(0, block_bytes)];
    let send = match kind {
        PlanKind::Alltoall | PlanKind::ReduceScatter => blocks.clone(),
        PlanKind::Allgather | PlanKind::Allreduce => single.clone(),
    };
    let recv = match kind {
        PlanKind::Alltoall | PlanKind::Allgather => blocks,
        PlanKind::ReduceScatter | PlanKind::Allreduce => single,
    };
    ExecLayouts {
        send,
        recv,
        block_bytes: vec![block_bytes; t],
        temp_offsets: Vec::new(),
        temp_sizes: Vec::new(),
    }
}

/// Irregular (`v`) layouts from element counts and displacements.
pub(crate) fn v_layouts(
    elem_size: usize,
    sendcounts: &[usize],
    senddispls: &[usize],
    recvcounts: &[usize],
    recvdispls: &[usize],
    kind: PlanKind,
) -> CartResult<ExecLayouts> {
    let t = recvcounts.len();
    check_len("recvdispls", t, recvdispls.len())?;
    let recv: Vec<BlockLayout> = (0..t)
        .map(|i| {
            BlockLayout::contiguous(
                (recvdispls[i] * elem_size) as i64,
                recvcounts[i] * elem_size,
            )
        })
        .collect();
    let send: Vec<BlockLayout> = match kind {
        PlanKind::Alltoall => {
            check_len("sendcounts", t, sendcounts.len())?;
            check_len("senddispls", t, senddispls.len())?;
            (0..t)
                .map(|i| {
                    BlockLayout::contiguous(
                        (senddispls[i] * elem_size) as i64,
                        sendcounts[i] * elem_size,
                    )
                })
                .collect()
        }
        PlanKind::Allgather => {
            check_len("sendcounts", 1, sendcounts.len())?;
            check_len("senddispls", 1, senddispls.len())?;
            vec![BlockLayout::contiguous(
                (senddispls[0] * elem_size) as i64,
                sendcounts[0] * elem_size,
            )]
        }
        PlanKind::ReduceScatter | PlanKind::Allreduce => {
            unreachable!("reductions have no irregular (v) variant")
        }
    };
    layouts_from_blocks(send, recv, kind)
}

/// Fully typed (`w`) layouts from per-neighbor datatype blocks.
pub(crate) fn w_layouts(
    sendspec: &[WBlock],
    recvspec: &[WBlock],
    kind: PlanKind,
) -> CartResult<ExecLayouts> {
    let t = recvspec.len();
    match kind {
        PlanKind::Alltoall => check_len("sendspec", t, sendspec.len())?,
        PlanKind::Allgather => check_len("sendspec", 1, sendspec.len())?,
        PlanKind::ReduceScatter | PlanKind::Allreduce => {
            unreachable!("reductions have no typed (w) variant")
        }
    }
    let send = sendspec
        .iter()
        .map(|w| w.commit())
        .collect::<CartResult<Vec<_>>>()?;
    let recv = recvspec
        .iter()
        .map(|w| w.commit())
        .collect::<CartResult<Vec<_>>>()?;
    layouts_from_blocks(send, recv, kind)
}

/// Validate per-index block size agreement and fill in wire sizing.
pub(crate) fn layouts_from_blocks(
    send: Vec<BlockLayout>,
    recv: Vec<BlockLayout>,
    kind: PlanKind,
) -> CartResult<ExecLayouts> {
    let block_bytes: Vec<usize> = recv.iter().map(|b| b.size()).collect();
    match kind {
        PlanKind::Alltoall => {
            for (i, (s, r)) in send.iter().zip(recv.iter()).enumerate() {
                if s.size() != r.size() {
                    return Err(CartError::BlockSizeMismatch {
                        block: i,
                        send: s.size(),
                        recv: r.size(),
                    });
                }
            }
        }
        PlanKind::Allgather => {
            let m = send.first().map_or(0, |b| b.size());
            for (i, r) in recv.iter().enumerate() {
                if r.size() != m {
                    return Err(CartError::BlockSizeMismatch {
                        block: i,
                        send: m,
                        recv: r.size(),
                    });
                }
            }
        }
        PlanKind::ReduceScatter | PlanKind::Allreduce => {
            // Reductions are regular-only: their layouts come straight from
            // `regular_layouts`, never through the irregular builders.
            unreachable!("reduction layouts are built by regular_layouts")
        }
    }
    Ok(ExecLayouts {
        send,
        recv,
        block_bytes,
        temp_offsets: Vec::new(),
        temp_sizes: Vec::new(),
    })
}

/// Attach the temp-slot sizing a plan needs to its layouts.
pub(crate) fn size_temp(
    lay: ExecLayouts,
    plan_kind: PlanKind,
    temp_slots: usize,
) -> CartResult<ExecLayouts> {
    match plan_kind {
        PlanKind::Alltoall => {
            // temp slot i mirrors block i
            let sizes = lay.block_bytes.clone();
            debug_assert_eq!(sizes.len(), temp_slots);
            Ok(lay.with_temp_sizes(sizes))
        }
        PlanKind::Allgather => {
            // temp slots hold forwarded copies of the uniform block
            let m = lay.send.first().map_or(0, |b| b.size());
            if lay.block_bytes.iter().any(|&b| b != m) {
                return Err(CartError::NonUniformAllgatherCounts);
            }
            Ok(lay.with_temp_sizes(vec![m; temp_slots]))
        }
        PlanKind::ReduceScatter | PlanKind::Allreduce => {
            // Reversed-tree accumulators: every temp slot holds one uniform
            // partial-sum block the size of the single result block.
            let m = lay.recv.first().map_or(0, |b| b.size());
            if lay.block_bytes.iter().any(|&b| b != m) {
                return Err(CartError::NonUniformAllgatherCounts);
            }
            Ok(lay.with_temp_sizes(vec![m; temp_slots]))
        }
    }
}

pub(crate) fn check_len(what: &'static str, expected: usize, actual: usize) -> CartResult<()> {
    if expected != actual {
        Err(CartError::BadCounts {
            what,
            expected,
            actual,
        })
    } else {
        Ok(())
    }
}

/// Validate a regular typed buffer length.
pub(crate) fn check_buffer(
    what: &'static str,
    expected_bytes: usize,
    actual_bytes: usize,
) -> CartResult<()> {
    if expected_bytes != actual_bytes {
        Err(CartError::BadBufferSize {
            what,
            expected: expected_bytes,
            actual: actual_bytes,
        })
    } else {
        Ok(())
    }
}

/// Guard: message-combining requires a torus in every moving dimension.
pub(crate) fn check_combining(cart: &CartComm) -> CartResult<()> {
    if cart.combining_applicable() {
        Ok(())
    } else {
        let dim = (0..cart.topology().ndims())
            .find(|&k| {
                !cart.topology().periods()[k]
                    && cart.neighborhood().offsets().iter().any(|o| o[k] != 0)
            })
            .unwrap_or(0);
        Err(CartError::CombiningNeedsTorus { dim })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_types::Primitive;

    #[test]
    fn regular_layout_offsets() {
        let lay = regular_layouts(3, 8, PlanKind::Alltoall);
        assert_eq!(lay.send.len(), 3);
        assert_eq!(lay.recv[2].disp, 16);
        assert_eq!(lay.block_bytes, vec![8, 8, 8]);
        let ag = regular_layouts(3, 8, PlanKind::Allgather);
        assert_eq!(ag.send.len(), 1);
        assert_eq!(ag.recv.len(), 3);
    }

    #[test]
    fn v_layout_block_sizes() {
        let lay = v_layouts(4, &[1, 2], &[0, 1], &[1, 2], &[3, 4], PlanKind::Alltoall).unwrap();
        assert_eq!(lay.block_bytes, vec![4, 8]);
        assert_eq!(lay.send[1].disp, 4);
        assert_eq!(lay.recv[1].disp, 16);
    }

    #[test]
    fn v_layout_size_mismatch_caught() {
        let err = v_layouts(4, &[1, 1], &[0, 1], &[1, 2], &[0, 1], PlanKind::Alltoall).unwrap_err();
        assert!(matches!(err, CartError::BlockSizeMismatch { block: 1, .. }));
    }

    #[test]
    fn v_layout_length_checks() {
        assert!(matches!(
            v_layouts(4, &[1], &[0, 1], &[1, 1], &[0, 1], PlanKind::Alltoall),
            Err(CartError::BadCounts {
                what: "sendcounts",
                ..
            })
        ));
        assert!(matches!(
            v_layouts(4, &[1, 1], &[0, 1], &[1, 1], &[0], PlanKind::Alltoall),
            Err(CartError::BadCounts {
                what: "recvdispls",
                ..
            })
        ));
    }

    #[test]
    fn w_blocks_commit_with_types() {
        let col = Datatype::vector(3, 1, 4, &Datatype::primitive(Primitive::F64));
        let w = WBlock::new(8, 1, &col);
        let bl = w.commit().unwrap();
        assert_eq!(bl.size(), 24);
        assert_eq!(bl.disp, 8);
        let w2 = WBlock::new(0, 2, &Datatype::int());
        assert_eq!(w2.commit().unwrap().size(), 8);
    }

    #[test]
    fn allgather_uniformity_enforced_in_temp_sizing() {
        let send = vec![BlockLayout::contiguous(0, 4)];
        let recv = vec![BlockLayout::contiguous(0, 4), BlockLayout::contiguous(4, 4)];
        let lay = layouts_from_blocks(send, recv, PlanKind::Allgather).unwrap();
        assert!(size_temp(lay, PlanKind::Allgather, 2).is_ok());

        let send = vec![BlockLayout::contiguous(0, 4)];
        let recv = vec![BlockLayout::contiguous(0, 8)];
        assert!(matches!(
            layouts_from_blocks(send, recv, PlanKind::Allgather),
            Err(CartError::BlockSizeMismatch { .. })
        ));
    }
}
