//! Persistent collective handles — the paper's `Cart_*_init` operations.
//!
//! An `_init` call takes exactly the same arguments as the collective and
//! precomputes everything reusable: the communication schedule (shared with
//! the communicator's cache), the committed per-block datatypes, and the
//! temporary buffer. Repeated `execute` calls then pay only the gathers,
//! sends, receives, and scatters — the intended usage pattern of iterative
//! stencil codes (Listing 3) and the paper's nod to the MPI Forum's
//! persistent-collectives proposal.

use std::sync::Arc;

use cartcomm_comm::WirePool;
use cartcomm_types::{cast_slice, cast_slice_mut, Pod, RedOp, Reducer};

use crate::cartcomm::CartComm;
use crate::compile::{
    execute_compiled, execute_compiled_in_place, execute_compiled_reduce, CompiledPlan, ExecScratch,
};
use crate::error::CartResult;
use crate::exec::ExecLayouts;
use crate::ops::{choose_combining, v_layouts, w_layouts, Algo, WBlock};
use crate::plan::{Plan, PlanKind};

/// Former home of the algorithm selector; see [`crate::ops::Algo`].
#[allow(deprecated)]
pub use crate::ops::Algorithm;

/// A precomputed persistent collective (the paper's `Cart_*_init` result).
///
/// When the combining schedule is selected, `_init` compiles it into a
/// [`CompiledPlan`] (through the communicator's shared plan cache) and
/// keeps an [`ExecScratch`], so every `execute` runs the precompiled span
/// programs with zero allocation, coordinate math, or datatype traversal.
pub struct PersistentCollective {
    plan: Arc<Plan>,
    lay: ExecLayouts,
    compiled: Option<Arc<CompiledPlan>>,
    scratch: ExecScratch,
    use_combining: bool,
}

impl PersistentCollective {
    fn build(cart: &CartComm, kind: PlanKind, lay: ExecLayouts, algo: Algo) -> CartResult<Self> {
        let plan = cart.plans().schedule(kind);
        let use_combining = choose_combining(algo, &plan, &lay);
        let (compiled, scratch) = if use_combining {
            crate::ops::check_combining(cart)?;
            // Compile at init through the communicator's shared plan cache
            // (Listing 3 semantics: pay schedule + compilation once).
            let cp = cart.plans().compiled(kind, lay.clone())?;
            let scratch = ExecScratch::for_plan(&cp);
            (Some(cp), scratch)
        } else {
            (None, ExecScratch::default())
        };
        let handle = PersistentCollective {
            plan,
            lay,
            compiled,
            scratch,
            use_combining,
        };
        handle.prime_pool(cart);
        Ok(handle)
    }

    /// Pre-warm this rank's wire-buffer pool with one buffer per wire
    /// message the resolved algorithm sends, sized from the compiled
    /// program (combining) or the per-neighbor blocks (trivial). The
    /// first `execute` then already runs at a 100% pool hit rate, and
    /// steady-state iterations allocate nothing: received buffers recycle
    /// into the pool and are re-acquired for the next round's sends.
    fn prime_pool(&self, cart: &CartComm) {
        let caps: Vec<usize> = match &self.compiled {
            Some(cp) => cp.wire_capacities(),
            // Trivial algorithm: one wire per neighbor, sized per block.
            None => match self.plan.kind {
                PlanKind::Alltoall => self.lay.send.iter().map(|l| l.size()).collect(),
                PlanKind::Allgather => {
                    let m = self.lay.send.first().map_or(0, |l| l.size());
                    std::iter::repeat_n(m, self.plan.t).collect()
                }
                PlanKind::ReduceScatter | PlanKind::Allreduce => {
                    // Trivial reductions sendrecv one uniform block per
                    // neighbor round.
                    let m = self.lay.recv.first().map_or(0, |l| l.size());
                    std::iter::repeat_n(m, self.plan.t).collect()
                }
            },
        };
        WirePool::prewarm(cart.comm().wire_pool(), &caps);
    }

    /// Whether this handle resolved to the message-combining schedule.
    pub fn is_combining(&self) -> bool {
        self.use_combining
    }

    /// The plan this handle executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// The compiled program, when the combining schedule was selected.
    pub fn compiled(&self) -> Option<&CompiledPlan> {
        self.compiled.as_deref()
    }

    /// Execute over raw byte buffers (layouts fixed at init time).
    pub fn execute(&mut self, cart: &CartComm, send: &[u8], recv: &mut [u8]) -> CartResult<()> {
        if let Some(cp) = &self.compiled {
            execute_compiled(cart.comm(), cp, send, recv, &mut self.scratch)
        } else {
            match self.plan.kind {
                PlanKind::Alltoall => cart.run_trivial_alltoall(&self.lay, send, recv),
                PlanKind::Allgather => cart.run_trivial_allgather(&self.lay, send, recv),
                PlanKind::ReduceScatter | PlanKind::Allreduce => {
                    unreachable!("reductions execute through PersistentReduction")
                }
            }
        }
    }

    /// Execute sending and receiving in the same buffer (halo-exchange
    /// mode: interior slabs out, halo regions in). The compiled core
    /// gathers all outgoing bytes of a copy or phase before scattering
    /// incoming ones, making the aliasing safe.
    pub fn execute_in_place(&mut self, cart: &CartComm, buf: &mut [u8]) -> CartResult<()> {
        if let Some(cp) = &self.compiled {
            execute_compiled_in_place(cart.comm(), cp, buf, &mut self.scratch)
        } else {
            // The trivial path interleaves sends and receives round by
            // round; snapshot the buffer to keep in-place semantics exact.
            let snapshot = buf.to_vec();
            match self.plan.kind {
                PlanKind::Alltoall => cart.run_trivial_alltoall(&self.lay, &snapshot, buf),
                PlanKind::Allgather => cart.run_trivial_allgather(&self.lay, &snapshot, buf),
                PlanKind::ReduceScatter | PlanKind::Allreduce => {
                    unreachable!("reductions execute through PersistentReduction")
                }
            }
        }
    }

    /// Execute over typed buffers.
    pub fn execute_typed<T: Pod>(
        &mut self,
        cart: &CartComm,
        send: &[T],
        recv: &mut [T],
    ) -> CartResult<()> {
        self.execute(cart, cast_slice(send), cast_slice_mut(recv))
    }
}

/// A precomputed persistent neighborhood reduction (the `Cart_reduce_*_init`
/// family). Same reuse contract as [`PersistentCollective`] — schedule,
/// compiled span programs, and scratch are paid once at init — plus the
/// combine operator, fixed at init so `execute` dispatches straight into
/// the monomorphized accumulate kernels.
pub struct PersistentReduction {
    inner: PersistentCollective,
    red: Reducer,
}

impl PersistentReduction {
    /// Whether this handle resolved to the message-combining schedule.
    pub fn is_combining(&self) -> bool {
        self.inner.use_combining
    }

    /// The plan this handle executes.
    pub fn plan(&self) -> &Plan {
        &self.inner.plan
    }

    /// The compiled program, when the combining schedule was selected.
    pub fn compiled(&self) -> Option<&CompiledPlan> {
        self.inner.compiled.as_deref()
    }

    /// The combine operator this handle applies.
    pub fn reducer(&self) -> Reducer {
        self.red
    }

    /// Execute over raw byte buffers (layouts and operator fixed at init).
    pub fn execute(&mut self, cart: &CartComm, send: &[u8], recv: &mut [u8]) -> CartResult<()> {
        if let Some(cp) = &self.inner.compiled {
            execute_compiled_reduce(
                cart.comm(),
                cp,
                send,
                recv,
                &mut self.inner.scratch,
                self.red,
            )
        } else {
            match self.inner.plan.kind {
                PlanKind::ReduceScatter => {
                    cart.run_trivial_reduce_scatter(&self.inner.lay, send, recv, self.red)
                }
                PlanKind::Allreduce => {
                    cart.run_trivial_allreduce(&self.inner.lay, send, recv, self.red)
                }
                PlanKind::Alltoall | PlanKind::Allgather => {
                    unreachable!("reduction handles carry reduction plans")
                }
            }
        }
    }

    /// Execute over typed buffers.
    pub fn execute_typed<T: Pod>(
        &mut self,
        cart: &CartComm,
        send: &[T],
        recv: &mut [T],
    ) -> CartResult<()> {
        self.execute(cart, cast_slice(send), cast_slice_mut(recv))
    }
}

impl CartComm {
    /// `Cart_alltoall_init`: persistent regular alltoall with `m` elements
    /// of `T` per block.
    pub fn alltoall_init<T: Pod>(&self, m: usize, algo: Algo) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        let lay = self.regular_lay::<T>(t * m, t * m, PlanKind::Alltoall)?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algo)
    }

    /// `Cart_alltoallv_init`.
    pub fn alltoallv_init<T: Pod>(
        &self,
        sendcounts: &[usize],
        senddispls: &[usize],
        recvcounts: &[usize],
        recvdispls: &[usize],
        algo: Algo,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvcounts", self.neighbor_count(), recvcounts.len())?;
        let lay = v_layouts(
            std::mem::size_of::<T>(),
            sendcounts,
            senddispls,
            recvcounts,
            recvdispls,
            PlanKind::Alltoall,
        )?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algo)
    }

    /// `Cart_alltoallw_init` (the Listing 3 pattern: commit the halo
    /// datatypes once, exchange every iteration).
    pub fn alltoallw_init(
        &self,
        sendspec: &[WBlock],
        recvspec: &[WBlock],
        algo: Algo,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        let lay = w_layouts(sendspec, recvspec, PlanKind::Alltoall)?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algo)
    }

    /// `Cart_allgather_init`: persistent regular allgather with `m`
    /// elements of `T` per block.
    pub fn allgather_init<T: Pod>(&self, m: usize, algo: Algo) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        let lay = self.regular_lay::<T>(m, t * m, PlanKind::Allgather)?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algo)
    }

    /// `Cart_allgatherv_init`.
    pub fn allgatherv_init<T: Pod>(
        &self,
        sendcount: usize,
        recvdispls: &[usize],
        algo: Algo,
    ) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        crate::ops::check_len("recvdispls", t, recvdispls.len())?;
        let recvcounts = vec![sendcount; t];
        let lay = v_layouts(
            std::mem::size_of::<T>(),
            &[sendcount],
            &[0],
            &recvcounts,
            recvdispls,
            PlanKind::Allgather,
        )?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algo)
    }

    /// `Cart_allgatherw_init`.
    pub fn allgatherw_init(
        &self,
        sendblock: &WBlock,
        recvspec: &[WBlock],
        algo: Algo,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        let lay = w_layouts(
            std::slice::from_ref(sendblock),
            recvspec,
            PlanKind::Allgather,
        )?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algo)
    }

    /// `Cart_reduce_scatter_init`: persistent regular neighborhood
    /// reduce-scatter with `m` elements of `T` per contributed block.
    pub fn reduce_scatter_init<T: Pod>(
        &self,
        op: RedOp,
        m: usize,
        algo: Algo,
    ) -> CartResult<PersistentReduction> {
        let t = self.neighbor_count();
        let lay = self.regular_lay::<T>(t * m, m, PlanKind::ReduceScatter)?;
        let inner = PersistentCollective::build(self, PlanKind::ReduceScatter, lay, algo)?;
        Ok(PersistentReduction {
            inner,
            red: Reducer::for_elem::<T>(op),
        })
    }

    /// `Cart_allreduce_init`: persistent regular neighborhood allreduce
    /// with an `m`-element contributed block of `T`.
    pub fn allreduce_init<T: Pod>(
        &self,
        op: RedOp,
        m: usize,
        algo: Algo,
    ) -> CartResult<PersistentReduction> {
        let lay = self.regular_lay::<T>(m, m, PlanKind::Allreduce)?;
        let inner = PersistentCollective::build(self, PlanKind::Allreduce, lay, algo)?;
        Ok(PersistentReduction {
            inner,
            red: Reducer::for_elem::<T>(op),
        })
    }
}
