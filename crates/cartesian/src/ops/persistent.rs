//! Persistent collective handles — the paper's `Cart_*_init` operations.
//!
//! An `_init` call takes exactly the same arguments as the collective and
//! precomputes everything reusable: the communication schedule (shared with
//! the communicator's cache), the committed per-block datatypes, and the
//! temporary buffer. Repeated `execute` calls then pay only the gathers,
//! sends, receives, and scatters — the intended usage pattern of iterative
//! stencil codes (Listing 3) and the paper's nod to the MPI Forum's
//! persistent-collectives proposal.

use std::sync::Arc;

use cartcomm_comm::WirePool;
use cartcomm_types::{cast_slice, cast_slice_mut, Pod};

use crate::cartcomm::CartComm;
use crate::error::CartResult;
use crate::exec::{execute_plan, ExecLayouts, CART_TAG_BASE};
use crate::ops::{size_temp, v_layouts, w_layouts, WBlock};
use crate::plan::{Plan, PlanKind};

/// Which algorithm a persistent handle executes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Algorithm {
    /// Always the t-round trivial algorithm (Listing 4).
    Trivial,
    /// Always the message-combining schedule (§3).
    Combining,
    /// Choose per the paper's cut-off: combining iff the average block size
    /// `m` (bytes) satisfies `m < ratio · (t−C)/(V−t)` where `ratio = α/β`
    /// is the machine's latency/bandwidth ratio in bytes.
    Auto {
        /// α/β in bytes (e.g. ~2 µs / (0.08 ns/B) ≈ 25000).
        alpha_beta_bytes: f64,
    },
}

/// A precomputed persistent collective (the paper's `Cart_*_init` result).
pub struct PersistentCollective {
    plan: Arc<Plan>,
    lay: ExecLayouts,
    temp: Vec<u8>,
    use_combining: bool,
}

impl PersistentCollective {
    fn build(
        cart: &CartComm,
        kind: PlanKind,
        lay: ExecLayouts,
        algorithm: Algorithm,
    ) -> CartResult<Self> {
        let plan = match kind {
            PlanKind::Alltoall => cart.alltoall_schedule(),
            PlanKind::Allgather => cart.allgather_schedule(),
        };
        let use_combining = match algorithm {
            Algorithm::Trivial => false,
            Algorithm::Combining => true,
            Algorithm::Auto { alpha_beta_bytes } => {
                let t = plan.t;
                let c = plan.rounds;
                let v = plan.volume_blocks;
                let m_avg = if t == 0 {
                    0.0
                } else {
                    lay.block_bytes.iter().sum::<usize>() as f64 / t as f64
                };
                match crate::cost::cutoff_ratio(t, c, v) {
                    Some(ratio) => m_avg < alpha_beta_bytes * ratio,
                    // V == t: combining moves no extra data; prefer it when
                    // it also saves rounds.
                    None => c < t,
                }
            }
        };
        if use_combining {
            crate::ops::check_combining(cart)?;
        }
        let lay = size_temp(lay, kind, plan.temp_slots)?;
        let temp = vec![0u8; lay.temp_len()];
        let handle = PersistentCollective {
            plan,
            lay,
            temp,
            use_combining,
        };
        handle.prime_pool(cart);
        Ok(handle)
    }

    /// Pre-warm this rank's wire-buffer pool with one buffer per wire
    /// message the resolved algorithm sends, sized from the plan. The
    /// first `execute` then already runs at a 100% pool hit rate, and
    /// steady-state iterations allocate nothing: received buffers recycle
    /// into the pool and are re-acquired for the next round's sends.
    fn prime_pool(&self, cart: &CartComm) {
        let mut caps: Vec<usize> = Vec::new();
        if self.use_combining {
            for phase in &self.plan.phases {
                for round in &phase.rounds {
                    caps.push(
                        round
                            .block_ids
                            .iter()
                            .map(|&b| self.lay.block_bytes[b])
                            .sum(),
                    );
                }
            }
            if self.plan.phases.iter().any(|p| !p.copies.is_empty()) {
                // scratch buffer for local copies (grows to the largest block)
                caps.push(self.lay.block_bytes.iter().copied().max().unwrap_or(0));
            }
        } else {
            // Trivial algorithm: one wire per neighbor, sized per block.
            match self.plan.kind {
                PlanKind::Alltoall => caps.extend(self.lay.send.iter().map(|l| l.size())),
                PlanKind::Allgather => {
                    let m = self.lay.send.first().map_or(0, |l| l.size());
                    caps.extend(std::iter::repeat_n(m, self.plan.t));
                }
            }
        }
        WirePool::prewarm(cart.comm().wire_pool(), &caps);
    }

    /// Whether this handle resolved to the message-combining schedule.
    pub fn is_combining(&self) -> bool {
        self.use_combining
    }

    /// The plan this handle executes.
    pub fn plan(&self) -> &Plan {
        &self.plan
    }

    /// Execute over raw byte buffers (layouts fixed at init time).
    pub fn execute(&mut self, cart: &CartComm, send: &[u8], recv: &mut [u8]) -> CartResult<()> {
        if self.use_combining {
            execute_plan(
                cart.comm(),
                cart.topology(),
                &self.plan,
                &self.lay,
                send,
                recv,
                &mut self.temp,
                CART_TAG_BASE,
            )
        } else {
            match self.plan.kind {
                PlanKind::Alltoall => cart.run_trivial_alltoall(&self.lay, send, recv),
                PlanKind::Allgather => cart.run_trivial_allgather(&self.lay, send, recv),
            }
        }
    }

    /// Execute sending and receiving in the same buffer (halo-exchange
    /// mode: interior slabs out, halo regions in). Only available for the
    /// combining schedule; phase-wise gather-before-scatter makes the
    /// aliasing safe.
    pub fn execute_in_place(&mut self, cart: &CartComm, buf: &mut [u8]) -> CartResult<()> {
        if self.use_combining {
            crate::exec::execute_plan_in_place(
                cart.comm(),
                cart.topology(),
                &self.plan,
                &self.lay,
                buf,
                &mut self.temp,
                CART_TAG_BASE,
            )
        } else {
            // The trivial path interleaves sends and receives round by
            // round; snapshot the buffer to keep in-place semantics exact.
            let snapshot = buf.to_vec();
            match self.plan.kind {
                PlanKind::Alltoall => cart.run_trivial_alltoall(&self.lay, &snapshot, buf),
                PlanKind::Allgather => cart.run_trivial_allgather(&self.lay, &snapshot, buf),
            }
        }
    }

    /// Execute over typed buffers.
    pub fn execute_typed<T: Pod>(
        &mut self,
        cart: &CartComm,
        send: &[T],
        recv: &mut [T],
    ) -> CartResult<()> {
        self.execute(cart, cast_slice(send), cast_slice_mut(recv))
    }
}

impl CartComm {
    /// `Cart_alltoall_init`: persistent regular alltoall with `m` elements
    /// of `T` per block.
    pub fn alltoall_init<T: Pod>(
        &self,
        m: usize,
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        let lay = self.regular_lay::<T>(t * m, t * m, PlanKind::Alltoall)?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algorithm)
    }

    /// `Cart_alltoallv_init`.
    pub fn alltoallv_init<T: Pod>(
        &self,
        sendcounts: &[usize],
        senddispls: &[usize],
        recvcounts: &[usize],
        recvdispls: &[usize],
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvcounts", self.neighbor_count(), recvcounts.len())?;
        let lay = v_layouts(
            std::mem::size_of::<T>(),
            sendcounts,
            senddispls,
            recvcounts,
            recvdispls,
            PlanKind::Alltoall,
        )?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algorithm)
    }

    /// `Cart_alltoallw_init` (the Listing 3 pattern: commit the halo
    /// datatypes once, exchange every iteration).
    pub fn alltoallw_init(
        &self,
        sendspec: &[WBlock],
        recvspec: &[WBlock],
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        let lay = w_layouts(sendspec, recvspec, PlanKind::Alltoall)?;
        PersistentCollective::build(self, PlanKind::Alltoall, lay, algorithm)
    }

    /// `Cart_allgather_init`: persistent regular allgather with `m`
    /// elements of `T` per block.
    pub fn allgather_init<T: Pod>(
        &self,
        m: usize,
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        let lay = self.regular_lay::<T>(m, t * m, PlanKind::Allgather)?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algorithm)
    }

    /// `Cart_allgatherv_init`.
    pub fn allgatherv_init<T: Pod>(
        &self,
        sendcount: usize,
        recvdispls: &[usize],
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        let t = self.neighbor_count();
        crate::ops::check_len("recvdispls", t, recvdispls.len())?;
        let recvcounts = vec![sendcount; t];
        let lay = v_layouts(
            std::mem::size_of::<T>(),
            &[sendcount],
            &[0],
            &recvcounts,
            recvdispls,
            PlanKind::Allgather,
        )?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algorithm)
    }

    /// `Cart_allgatherw_init`.
    pub fn allgatherw_init(
        &self,
        sendblock: &WBlock,
        recvspec: &[WBlock],
        algorithm: Algorithm,
    ) -> CartResult<PersistentCollective> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        let lay = w_layouts(
            std::slice::from_ref(sendblock),
            recvspec,
            PlanKind::Allgather,
        )?;
        PersistentCollective::build(self, PlanKind::Allgather, lay, algorithm)
    }
}
