//! `Cart_alltoall{,v,w}`: personalized sparse exchange in trivial and
//! message-combining variants.

use cartcomm_comm::{RecvSpec, Tag};
use cartcomm_types::{cast_slice, cast_slice_mut, gather_append, scatter, Pod};

use crate::cartcomm::CartComm;
use crate::compile::{execute_compiled, ExecScratch};
use crate::error::{CartError, CartResult};
use crate::exec::{ExecLayouts, CART_TAG_BASE};
use crate::ops::{
    check_buffer, check_combining, regular_layouts, size_temp, v_layouts, w_layouts, WBlock,
};
use crate::plan::PlanKind;

/// Tag base for the trivial algorithm's sendrecv rounds.
pub const TRIVIAL_TAG_BASE: Tag = 0x7B00_0000;

impl CartComm {
    // ----- regular -----------------------------------------------------------

    /// Message-combining `Cart_alltoall`: send block `i` of `send` to
    /// neighbor `N[i]`, receive block `i` of `recv` from the corresponding
    /// source neighbor. Block size is `send.len() / t` elements.
    pub fn alltoall<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::Alltoall)?;
        self.run_combining_alltoall(lay, cast_slice(send), cast_slice_mut(recv))
    }

    /// Trivial t-round `Cart_alltoall` (Listing 4).
    pub fn alltoall_trivial<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::Alltoall)?;
        self.run_trivial_alltoall(&lay, cast_slice(send), cast_slice_mut(recv))
    }

    // ----- irregular counts (v) ------------------------------------------------

    /// Message-combining `Cart_alltoallv`: per-neighbor element counts and
    /// displacements (in elements). The combining schedule requires the
    /// same counts arrays on all processes (which the Cartesian isomorphism
    /// requirement implies, §3.3) and `sendcounts[i] == recvcounts[i]`.
    pub fn alltoallv<T: Pod>(
        &self,
        send: &[T],
        sendcounts: &[usize],
        senddispls: &[usize],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<()> {
        let lay = self.v_lay::<T>(sendcounts, senddispls, recvcounts, recvdispls)?;
        self.run_combining_alltoall(lay, cast_slice(send), cast_slice_mut(recv))
    }

    /// Trivial `Cart_alltoallv`.
    pub fn alltoallv_trivial<T: Pod>(
        &self,
        send: &[T],
        sendcounts: &[usize],
        senddispls: &[usize],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<()> {
        let lay = self.v_lay::<T>(sendcounts, senddispls, recvcounts, recvdispls)?;
        self.run_trivial_alltoall(&lay, cast_slice(send), cast_slice_mut(recv))
    }

    // ----- fully typed (w) -------------------------------------------------------

    /// Message-combining `Cart_alltoallw`: per-neighbor datatypes and byte
    /// displacements — the operation the Listing 3 stencil example needs so
    /// each halo face/corner is described in place.
    pub fn alltoallw(
        &self,
        send: &[u8],
        sendspec: &[WBlock],
        recv: &mut [u8],
        recvspec: &[WBlock],
    ) -> CartResult<()> {
        let lay = self.w_lay(sendspec, recvspec)?;
        self.run_combining_alltoall(lay, send, recv)
    }

    /// Trivial `Cart_alltoallw`.
    pub fn alltoallw_trivial(
        &self,
        send: &[u8],
        sendspec: &[WBlock],
        recv: &mut [u8],
        recvspec: &[WBlock],
    ) -> CartResult<()> {
        let lay = self.w_lay(sendspec, recvspec)?;
        self.run_trivial_alltoall(&lay, send, recv)
    }

    // ----- engines ----------------------------------------------------------------

    pub(crate) fn regular_lay<T: Pod>(
        &self,
        send_len: usize,
        recv_len: usize,
        kind: PlanKind,
    ) -> CartResult<ExecLayouts> {
        let t = self.neighbor_count();
        let sz = std::mem::size_of::<T>();
        match kind {
            PlanKind::Alltoall => {
                if t == 0 {
                    check_buffer("send", 0, send_len * sz)?;
                    check_buffer("receive", 0, recv_len * sz)?;
                    return Ok(regular_layouts(0, 0, kind));
                }
                if !send_len.is_multiple_of(t) {
                    return Err(CartError::BadBufferSize {
                        what: "send",
                        expected: (send_len / t) * t * sz,
                        actual: send_len * sz,
                    });
                }
                let m = send_len / t;
                check_buffer("receive", t * m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
            PlanKind::Allgather => {
                let m = send_len;
                check_buffer("receive", t * m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
        }
    }

    fn v_lay<T: Pod>(
        &self,
        sendcounts: &[usize],
        senddispls: &[usize],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<ExecLayouts> {
        crate::ops::check_len("recvcounts", self.neighbor_count(), recvcounts.len())?;
        v_layouts(
            std::mem::size_of::<T>(),
            sendcounts,
            senddispls,
            recvcounts,
            recvdispls,
            PlanKind::Alltoall,
        )
    }

    fn w_lay(&self, sendspec: &[WBlock], recvspec: &[WBlock]) -> CartResult<ExecLayouts> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        w_layouts(sendspec, recvspec, PlanKind::Alltoall)
    }

    pub(crate) fn run_combining_alltoall(
        &self,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        if check_combining(self).is_ok() {
            // Torus: run the compiled program (cached across repeated
            // calls with the same neighborhood and layouts).
            let cp = self.compiled_plan(PlanKind::Alltoall, lay)?;
            let mut scratch = ExecScratch::for_plan(&cp);
            execute_compiled(self.comm(), &cp, send, recv, &mut scratch)
        } else {
            // Non-periodic mesh: same schedule with per-rank live-block
            // filtering at the boundaries (see `exec_mesh`), interpreted.
            let plan = self.alltoall_schedule();
            let lay = size_temp(lay, PlanKind::Alltoall, plan.temp_slots)?;
            let mut temp = vec![0u8; lay.temp_len()];
            crate::exec_mesh::execute_alltoall_mesh(
                self.comm(),
                self.topology(),
                self.neighborhood(),
                &plan,
                &lay,
                send,
                recv,
                &mut temp,
                CART_TAG_BASE,
            )
        }
    }

    /// The trivial t-round algorithm over resolved layouts: one blocking
    /// sendrecv per neighbor (Listing 4), block `i` delivered directly.
    /// Works on meshes: neighbors cut off by a boundary are skipped.
    pub(crate) fn run_trivial_alltoall(
        &self,
        lay: &ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            let tag = TRIVIAL_TAG_BASE + i as Tag;
            if off.iter().all(|&c| c == 0) {
                // Self block: plain local copy through a pooled scratch.
                let mut bytes = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut bytes)?;
                scatter(&bytes, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
                continue;
            }
            let (source, target) = self.relative_shift(off)?;
            let mut sends = Vec::with_capacity(1);
            if let Some(dst) = target {
                let mut wire = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut wire)?;
                sends.push((dst, tag, wire));
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            let results = self.comm().exchange_pooled(sends, &specs)?;
            if let Some((wire, _)) = results.into_iter().next() {
                scatter(&wire, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
            }
        }
        Ok(())
    }
}
