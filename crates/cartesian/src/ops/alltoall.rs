//! `Cart_alltoall{,v,w}`: personalized sparse exchange in trivial and
//! message-combining variants.

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::{ExchangeBatch, ExchangeOpts, RecvSpec, Tag};
use cartcomm_types::{cast_slice, cast_slice_mut, gather_append, scatter, Pod};

use crate::cartcomm::CartComm;
use crate::compile::{execute_compiled, ExecScratch};
use crate::error::{CartError, CartResult};
use crate::exec::{ExecLayouts, CART_TAG_BASE};
use crate::ops::{
    check_buffer, check_combining, choose_combining, regular_layouts, size_temp, v_layouts,
    w_layouts, Algo, WBlock,
};
use crate::plan::PlanKind;

/// Tag base for the trivial algorithm's sendrecv rounds.
pub const TRIVIAL_TAG_BASE: Tag = 0x7B00_0000;

impl CartComm {
    // ----- regular -----------------------------------------------------------

    /// `Cart_alltoall`: send block `i` of `send` to neighbor `N[i]`,
    /// receive block `i` of `recv` from the corresponding source neighbor.
    /// Block size is `send.len() / t` elements. `algo` selects between the
    /// message-combining schedule, the trivial t-round algorithm, and the
    /// §3.2 cut-off heuristic.
    pub fn alltoall<T: Pod>(&self, send: &[T], recv: &mut [T], algo: Algo) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::Alltoall)?;
        self.run_alltoall(lay, cast_slice(send), cast_slice_mut(recv), algo)
    }

    /// Trivial t-round `Cart_alltoall` (Listing 4).
    #[deprecated(since = "0.2.0", note = "use `alltoall(send, recv, Algo::Trivial)`")]
    pub fn alltoall_trivial<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        self.alltoall(send, recv, Algo::Trivial)
    }

    // ----- irregular counts (v) ------------------------------------------------

    /// Message-combining `Cart_alltoallv`: per-neighbor element counts and
    /// displacements (in elements). The combining schedule requires the
    /// same counts arrays on all processes (which the Cartesian isomorphism
    /// requirement implies, §3.3) and `sendcounts[i] == recvcounts[i]`.
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv<T: Pod>(
        &self,
        send: &[T],
        sendcounts: &[usize],
        senddispls: &[usize],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.v_lay::<T>(sendcounts, senddispls, recvcounts, recvdispls)?;
        self.run_alltoall(lay, cast_slice(send), cast_slice_mut(recv), algo)
    }

    /// Trivial `Cart_alltoallv`.
    #[deprecated(since = "0.2.0", note = "use `alltoallv(..., Algo::Trivial)`")]
    #[allow(clippy::too_many_arguments)]
    pub fn alltoallv_trivial<T: Pod>(
        &self,
        send: &[T],
        sendcounts: &[usize],
        senddispls: &[usize],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<()> {
        self.alltoallv(
            send,
            sendcounts,
            senddispls,
            recv,
            recvcounts,
            recvdispls,
            Algo::Trivial,
        )
    }

    // ----- fully typed (w) -------------------------------------------------------

    /// Message-combining `Cart_alltoallw`: per-neighbor datatypes and byte
    /// displacements — the operation the Listing 3 stencil example needs so
    /// each halo face/corner is described in place.
    pub fn alltoallw(
        &self,
        send: &[u8],
        sendspec: &[WBlock],
        recv: &mut [u8],
        recvspec: &[WBlock],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.w_lay(sendspec, recvspec)?;
        self.run_alltoall(lay, send, recv, algo)
    }

    /// Trivial `Cart_alltoallw`.
    #[deprecated(since = "0.2.0", note = "use `alltoallw(..., Algo::Trivial)`")]
    pub fn alltoallw_trivial(
        &self,
        send: &[u8],
        sendspec: &[WBlock],
        recv: &mut [u8],
        recvspec: &[WBlock],
    ) -> CartResult<()> {
        self.alltoallw(send, sendspec, recv, recvspec, Algo::Trivial)
    }

    // ----- engines ----------------------------------------------------------------

    pub(crate) fn regular_lay<T: Pod>(
        &self,
        send_len: usize,
        recv_len: usize,
        kind: PlanKind,
    ) -> CartResult<ExecLayouts> {
        let t = self.neighbor_count();
        let sz = std::mem::size_of::<T>();
        match kind {
            PlanKind::Alltoall => {
                if t == 0 {
                    check_buffer("send", 0, send_len * sz)?;
                    check_buffer("receive", 0, recv_len * sz)?;
                    return Ok(regular_layouts(0, 0, kind));
                }
                if !send_len.is_multiple_of(t) {
                    return Err(CartError::BadBufferSize {
                        what: "send",
                        expected: (send_len / t) * t * sz,
                        actual: send_len * sz,
                    });
                }
                let m = send_len / t;
                check_buffer("receive", t * m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
            PlanKind::Allgather => {
                let m = send_len;
                check_buffer("receive", t * m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
            PlanKind::ReduceScatter => {
                // t contributed blocks in, one reduced block out.
                if t == 0 {
                    check_buffer("send", 0, send_len * sz)?;
                    return Ok(regular_layouts(0, recv_len * sz, kind));
                }
                if !send_len.is_multiple_of(t) {
                    return Err(CartError::BadBufferSize {
                        what: "send",
                        expected: (send_len / t) * t * sz,
                        actual: send_len * sz,
                    });
                }
                let m = send_len / t;
                check_buffer("receive", m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
            PlanKind::Allreduce => {
                // One contributed block in, one reduced block out.
                let m = send_len;
                check_buffer("receive", m * sz, recv_len * sz)?;
                Ok(regular_layouts(t, m * sz, kind))
            }
        }
    }

    fn v_lay<T: Pod>(
        &self,
        sendcounts: &[usize],
        senddispls: &[usize],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<ExecLayouts> {
        crate::ops::check_len("recvcounts", self.neighbor_count(), recvcounts.len())?;
        v_layouts(
            std::mem::size_of::<T>(),
            sendcounts,
            senddispls,
            recvcounts,
            recvdispls,
            PlanKind::Alltoall,
        )
    }

    fn w_lay(&self, sendspec: &[WBlock], recvspec: &[WBlock]) -> CartResult<ExecLayouts> {
        crate::ops::check_len("recvspec", self.neighbor_count(), recvspec.len())?;
        w_layouts(sendspec, recvspec, PlanKind::Alltoall)
    }

    /// Resolve `algo` and dispatch to the combining or trivial engine.
    pub(crate) fn run_alltoall(
        &self,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
        algo: Algo,
    ) -> CartResult<()> {
        let use_combining = match algo {
            Algo::Trivial => false,
            Algo::Combining => true,
            auto => choose_combining(auto, &self.plans().alltoall(), &lay),
        };
        if use_combining {
            self.run_combining_alltoall(lay, send, recv)
        } else {
            self.run_trivial_alltoall(&lay, send, recv)
        }
    }

    pub(crate) fn run_combining_alltoall(
        &self,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        if check_combining(self).is_ok() {
            // Torus: run the compiled program (cached across repeated
            // calls with the same neighborhood and layouts).
            let cp = self.plans().compiled(PlanKind::Alltoall, lay)?;
            let mut scratch = ExecScratch::for_plan(&cp);
            execute_compiled(self.comm(), &cp, send, recv, &mut scratch)
        } else {
            // Non-periodic mesh: same schedule with per-rank live-block
            // filtering at the boundaries (see `exec_mesh`), interpreted.
            let plan = self.plans().alltoall();
            let lay = size_temp(lay, PlanKind::Alltoall, plan.temp_slots)?;
            let mut temp = vec![0u8; lay.temp_len()];
            crate::exec_mesh::execute_alltoall_mesh(
                self.comm(),
                self.topology(),
                self.neighborhood(),
                &plan,
                &lay,
                send,
                recv,
                &mut temp,
                CART_TAG_BASE,
            )
        }
    }

    /// The trivial t-round algorithm over resolved layouts: one blocking
    /// sendrecv per neighbor (Listing 4), block `i` delivered directly.
    /// Works on meshes: neighbors cut off by a boundary are skipped.
    pub(crate) fn run_trivial_alltoall(
        &self,
        lay: &ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        let obs = self.comm().obs();
        let metrics = obs.metrics();
        let traced = obs.enabled();
        let rank = self.comm().rank();
        let mut batch = ExchangeBatch::with_capacity(1);
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            let tag = TRIVIAL_TAG_BASE + i as Tag;
            if off.iter().all(|&c| c == 0) {
                // Self block: plain local copy through a pooled scratch.
                let mut bytes = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut bytes)?;
                scatter(&bytes, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
                continue;
            }
            let (source, target) = self.relative_shift(off)?;
            if let Some(dst) = target {
                let mut wire = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut wire)?;
                metrics.round_started();
                metrics.pack(1, wire.len());
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundStart {
                            phase: 0,
                            round: i,
                            to: dst,
                            from: source.unwrap_or(usize::MAX),
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
                batch.send(dst, tag, wire);
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            self.comm()
                .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
            if let Some((wire, status)) = batch.take_result(0) {
                scatter(&wire, recv, lay.recv[i].disp, &lay.recv[i].ty)?;
                metrics.round_completed();
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundEnd {
                            phase: 0,
                            round: i,
                            to: rank,
                            from: status.src,
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
            }
        }
        Ok(())
    }
}
