//! Message-combining alltoall on non-periodic meshes.
//!
//! The paper notes that "details for non-periodic meshes are not discussed
//! further here": on a torus every process has every neighbor and the
//! schedule is perfectly isomorphic; on a mesh, boundary processes lack
//! some neighbors, so the per-rank message contents differ. This module
//! works the details out.
//!
//! The key observations (proved by per-dimension interval arguments):
//!
//! * Under dimension-wise path expansion, a block from origin `o` to
//!   target `o + N[i]` visits intermediate positions whose coordinate in
//!   each dimension is either `o`'s or the target's — so if both endpoints
//!   lie in the mesh, **every intermediate hop does too**. A block is
//!   *live* iff its origin and final target exist.
//! * Before phase `k`, the copy of block `i` held at process `r` (if live)
//!   originated at `o = r − N[i]│₍<k₎` where `N[i]│₍<k₎` zeroes all
//!   coordinates in dimensions ≥ k. Sender `r` and receiver `r + c·eₖ`
//!   compute the *same* origin for each block, so both sides agree on the
//!   per-pair wire content without any communication — the isomorphism
//!   argument survives, it just becomes position-dependent.
//!
//! Each round then sends the subset of the plan's blocks that are live for
//! this `(rank, round)`, to the partner if it exists. Rounds and phase
//! structure are inherited from the torus plan; boundary ranks simply
//! send/receive less. One refinement replaces the torus plan's
//! temp/receive parity alternation: on a torus an intermediate copy may
//! land in the receive buffer because the final copy always overwrites it
//! later — on a mesh that final copy may never come (its source is
//! outside), which would leave a stale intermediate in user memory. The
//! mesh executor therefore stages *all* intermediate hops in the temp slot
//! and writes the receive buffer only on a block's final hop, tracking each
//! block's current location per process.

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, RecvSpec, Tag};
use cartcomm_topo::{CartTopology, RelNeighborhood};

use crate::error::{CartError, CartResult};
use crate::exec::ExecLayouts;
use crate::plan::{BlockRef, Loc, Plan, PlanKind};

/// Execute a message-combining alltoall plan on a (possibly) non-periodic
/// mesh: identical to [`crate::exec::execute_plan`] on full tori, with
/// per-rank live-block filtering at boundaries.
#[allow(clippy::too_many_arguments)]
pub fn execute_alltoall_mesh(
    comm: &Comm,
    topo: &CartTopology,
    nb: &RelNeighborhood,
    plan: &Plan,
    lay: &ExecLayouts,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    temp: &mut [u8],
    tag_base: Tag,
) -> CartResult<()> {
    debug_assert_eq!(plan.kind, PlanKind::Alltoall);
    let rank = comm.rank();
    let coords = topo.coords_of(rank);
    let d = topo.ndims();

    // Hoisted scratch: one negated-partial-offset buffer serves every
    // liveness query, and one negated-offset buffer every round's source
    // lookup — no per-round or per-block Vec allocation in the loop.
    let mut partial_neg = vec![0i64; d];
    let mut neg = vec![0i64; d];

    // Current storage location of each block's copy at this process:
    // starts in the send buffer, stages in temp between hops, ends in the
    // receive buffer on the final hop.
    let t = nb.len();
    let mut loc_of: Vec<BlockRef> = (0..t).map(|b| BlockRef::new(Loc::Send, b)).collect();
    // A block's final hop is the last dimension with a non-zero coordinate.
    let last_dim: Vec<usize> = (0..t)
        .map(|b| {
            nb.offset(b)
                .iter()
                .rposition(|&c| c != 0)
                .unwrap_or(usize::MAX)
        })
        .collect();

    let obs = comm.obs();
    let metrics = obs.metrics();
    let mut batch = ExchangeBatch::new();
    let mut round_idx: Tag = 0;
    let mut copy_buf = comm.wire_buf(0);
    for (k, phase) in plan.phases.iter().enumerate() {
        let traced = obs.enabled();
        // Local copies (self blocks) always apply.
        for copy in &phase.copies {
            copy_buf.clear();
            lay.gather_block(copy.from, sendbuf, recvbuf, temp, &mut copy_buf)?;
            lay.scatter_block(copy.to, &copy_buf, recvbuf, temp)?;
        }
        if phase.rounds.is_empty() {
            continue;
        }
        let mut specs = Vec::new();
        let mut recv_rounds = Vec::new();
        for round in &phase.rounds {
            let tag = tag_base + round_idx;
            let this_round = round_idx as usize;
            round_idx += 1;
            let target = topo.rank_of_offset(rank, &round.offset)?;
            for (n, &c) in neg.iter_mut().zip(round.offset.iter()) {
                *n = -c;
            }
            let source = topo.rank_of_offset(rank, &neg)?;

            if let Some(dst) = target {
                // blocks this process still carries into this round: live
                // iff the origin of the partially-traveled offset and the
                // final target both exist (k leading dims traveled).
                let mut wire = comm.wire_buf(0);
                let mut nblocks = 0usize;
                for &b in round.block_ids.iter() {
                    if live_masked(topo, nb, &coords, b, k, &mut partial_neg)? {
                        lay.gather_block(loc_of[b], sendbuf, recvbuf, temp, &mut wire)?;
                        nblocks += 1;
                    }
                }
                if nblocks > 0 {
                    metrics.round_started();
                    metrics.pack(nblocks, wire.len());
                    if traced {
                        obs.emit(
                            rank,
                            TraceEvent::RoundStart {
                                phase: k,
                                round: this_round,
                                to: dst,
                                from: source.unwrap_or(usize::MAX),
                                wire_bytes: wire.len(),
                                attempt: 0,
                            },
                        );
                        obs.emit(
                            rank,
                            TraceEvent::PackSpan {
                                round: this_round,
                                spans: nblocks,
                                bytes: wire.len(),
                            },
                        );
                    }
                    batch.send(dst, tag, wire);
                }
            }
            if let Some(src) = source {
                // blocks that will arrive (same predicate, one more hop
                // masked: the arriving copies have traveled dim k too)
                let mut expect = Vec::new();
                for &b in round.block_ids.iter() {
                    if live_masked(topo, nb, &coords, b, (k + 1).min(d), &mut partial_neg)? {
                        expect.push(b);
                    }
                }
                if !expect.is_empty() {
                    specs.push(RecvSpec::from_rank(src, tag));
                    recv_rounds.push((this_round, expect));
                }
            }
        }
        comm.exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
        for (i, (this_round, expect)) in recv_rounds.iter().enumerate() {
            let (wire, status) = batch.take_result(i).expect("exchange fills every slot");
            let mut pos = 0usize;
            for &b in expect {
                let n = lay.block_bytes[b];
                if pos + n > wire.len() {
                    return Err(CartError::BadBufferSize {
                        what: "incoming mesh round message",
                        expected: pos + n,
                        actual: wire.len(),
                    });
                }
                // Final hop -> the user's receive block; intermediate hop
                // -> the temp slot (never the receive buffer: the final
                // copy that would overwrite it may not exist on a mesh).
                let dest = if last_dim[b] == k {
                    BlockRef::new(Loc::Recv, b)
                } else {
                    BlockRef::new(Loc::Temp, b)
                };
                lay.scatter_block(dest, &wire[pos..pos + n], recvbuf, temp)?;
                loc_of[b] = dest;
                pos += n;
            }
            if pos != wire.len() {
                return Err(CartError::BadBufferSize {
                    what: "incoming mesh round message",
                    expected: pos,
                    actual: wire.len(),
                });
            }
            metrics.round_completed();
            if traced {
                obs.emit(
                    rank,
                    TraceEvent::RoundEnd {
                        phase: k,
                        round: *this_round,
                        to: rank,
                        from: status.src,
                        wire_bytes: wire.len(),
                        attempt: 0,
                    },
                );
            }
        }
    }
    Ok(())
}

/// Liveness of block `i` at this process with its first `masked`
/// dimensions already traveled: the origin `r − N[i]│₍<masked₎` and the
/// final target `origin + N[i]` must both exist. The send side of a
/// phase-`k` round uses `masked = k`, the receive side `masked = k + 1`.
/// `partial_neg` is caller-provided scratch (negated partial offset),
/// reused across every query.
fn live_masked(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    coords: &[usize],
    i: usize,
    masked: usize,
    partial_neg: &mut [i64],
) -> CartResult<bool> {
    let off = nb.offset(i);
    for (k, slot) in partial_neg.iter_mut().enumerate() {
        *slot = if k < masked { -off[k] } else { 0 };
    }
    let origin = match topo.offset_coords(coords, partial_neg)? {
        Some(c) => c,
        None => return Ok(false),
    };
    Ok(topo.offset_coords(&origin, off)?.is_some())
}
