//! A process-wide, sharded, fingerprint-keyed store of compiled plans
//! and schedules.
//!
//! Pre-0.3.0, every [`CartComm`](crate::CartComm) owned a private
//! 16-entry LRU of compiled programs, so two communicators over the same
//! topology, neighborhood, and layouts — two tenants of a serving
//! process, two phases of one application, two tests in one binary —
//! each paid schedule construction and compilation in full. Compiled
//! plans are **immutable and rank-resolved**: all inputs that influence
//! the program (topology dims/periods/permutation, neighborhood, rank,
//! collective kind, block layouts) are folded into the store key, and a
//! compiled program is never mutated after construction. That makes them
//! safely shareable across communicators and threads, which is what this
//! store does: one warm, bounded cache per process.
//!
//! **Attribution** stays per communicator: each `CartComm` counts its
//! own hits and misses ([`crate::cartcomm::PlanCacheStats`]), so a
//! serving layer with one communicator per tenant gets per-tenant
//! hit/miss numbers for free while all tenants share the compiled bytes.
//! The store's own [`PlanStoreStats`] aggregate across the process —
//! `misses` is the number of compilations that actually ran.
//!
//! Sharding: keys are well-mixed 128-bit fingerprints, so the low bits
//! pick a shard and each shard is an independent mutex + MRU-first list.
//! Lookups lock one shard for a short scan; compilation runs **outside**
//! the lock (two racing compilers of the same key both compile, the
//! loser adopts the winner's program — benign because programs are
//! immutable and deterministic).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use cartcomm_topo::{CartTopology, RelNeighborhood};

use crate::compile::{CompiledPlan, Fnv};
use crate::error::CartResult;
use crate::exec::ExecLayouts;
use crate::plan::{Plan, PlanKind};

/// Shards in the global store. Power of two; keys are uniform so this
/// only bounds contention, not capacity.
const GLOBAL_SHARDS: usize = 16;

/// Per-shard compiled-program capacity of the global store (256 programs
/// process-wide — a serving process cycles through topologies × layouts,
/// and one compiled program is a few KiB).
const GLOBAL_SHARD_CAP: usize = 16;

fn seeded(seed: u64) -> Fnv {
    let mut h = Fnv::new();
    h.u64(seed);
    h
}

fn hash_identity(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    kind: PlanKind,
    lay_fp: u128,
    seed: u64,
) -> u64 {
    let mut h = seeded(seed);
    h.u64(topo.ndims() as u64);
    for &d in topo.dims() {
        h.u64(d as u64);
    }
    for &p in topo.periods() {
        h.u64(p as u64);
    }
    match topo.permutation() {
        Some(perm) => {
            h.u64(1);
            for &r in perm {
                h.u64(r as u64);
            }
        }
        None => h.u64(0),
    }
    h.u64(rank as u64);
    h.u64(match kind {
        PlanKind::Alltoall => 1,
        PlanKind::Allgather => 2,
        PlanKind::ReduceScatter => 3,
        PlanKind::Allreduce => 4,
    });
    for v in nb.to_flat() {
        h.u64(v as u64);
    }
    h.u64(lay_fp as u64);
    h.u64((lay_fp >> 64) as u64);
    h.finish()
}

/// The full identity of a compiled program: everything that influences
/// the emitted spans, peers, tags, and wire sizes. Layout shape alone
/// ([`ExecLayouts::fingerprint`]) was a sufficient key inside one
/// communicator; a process-wide store must also separate topologies,
/// neighborhoods, and ranks.
pub fn store_key(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    kind: PlanKind,
    lay: &ExecLayouts,
) -> u128 {
    let lay_fp = lay.fingerprint(kind);
    let lo = hash_identity(topo, nb, rank, kind, lay_fp, 0x9E37_79B9_7F4A_7C15);
    let hi = hash_identity(topo, nb, rank, kind, lay_fp, 0xC2B2_AE3D_27D4_EB4F);
    ((hi as u128) << 64) | lo as u128
}

/// Key for a (rank-independent) schedule: neighborhood and kind only —
/// the message-combining plan does not depend on topology or rank.
pub fn schedule_key(nb: &RelNeighborhood, kind: PlanKind) -> u128 {
    let mut parts = [0u64; 2];
    for (i, seed) in [0x5851_F42D_4C95_7F2Du64, 0x1405_7B7E_F767_814Fu64]
        .into_iter()
        .enumerate()
    {
        let mut h = seeded(seed);
        h.u64(nb.ndims() as u64);
        h.u64(match kind {
            PlanKind::Alltoall => 1,
            PlanKind::Allgather => 2,
            PlanKind::ReduceScatter => 3,
            PlanKind::Allreduce => 4,
        });
        for v in nb.to_flat() {
            h.u64(v as u64);
        }
        parts[i] = h.finish();
    }
    ((parts[1] as u128) << 64) | parts[0] as u128
}

struct Shard {
    /// MRU-first compiled programs.
    compiled: Vec<(u128, Arc<CompiledPlan>)>,
    /// Schedules are tiny and few (one per neighborhood × kind); unbounded.
    schedules: Vec<(u128, Arc<Plan>)>,
}

/// Aggregate telemetry of a [`PlanStore`] since creation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PlanStoreStats {
    /// Compiled-program lookups served from the store.
    pub hits: u64,
    /// Lookups that ran a compilation.
    pub misses: u64,
    /// Programs evicted by per-shard LRU capacity.
    pub evictions: u64,
    /// Schedule lookups served from the store.
    pub schedule_hits: u64,
    /// Schedule lookups that constructed the schedule.
    pub schedule_misses: u64,
}

/// See the [module docs](self).
pub struct PlanStore {
    shards: Vec<Mutex<Shard>>,
    per_shard_cap: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    schedule_hits: AtomicU64,
    schedule_misses: AtomicU64,
}

impl PlanStore {
    /// A fresh store with `shards` shards (rounded up to a power of two)
    /// holding at most `per_shard_cap` compiled programs each. Use for
    /// isolation (tests pinning exact hit/miss sequences); production
    /// code shares [`PlanStore::global`].
    pub fn new(shards: usize, per_shard_cap: usize) -> Arc<Self> {
        let n = shards.max(1).next_power_of_two();
        Arc::new(PlanStore {
            shards: (0..n)
                .map(|_| {
                    Mutex::new(Shard {
                        compiled: Vec::new(),
                        schedules: Vec::new(),
                    })
                })
                .collect(),
            per_shard_cap: per_shard_cap.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            schedule_hits: AtomicU64::new(0),
            schedule_misses: AtomicU64::new(0),
        })
    }

    /// The process-wide store every communicator uses by default.
    pub fn global() -> Arc<Self> {
        static GLOBAL: OnceLock<Arc<PlanStore>> = OnceLock::new();
        Arc::clone(GLOBAL.get_or_init(|| PlanStore::new(GLOBAL_SHARDS, GLOBAL_SHARD_CAP)))
    }

    fn shard(&self, key: u128) -> &Mutex<Shard> {
        &self.shards[(key as usize) & (self.shards.len() - 1)]
    }

    /// Whether a compiled program for `key` is resident, without touching
    /// recency or counters — the admission-time "will this batch compile?"
    /// probe of the serving layer.
    pub fn contains(&self, key: u128) -> bool {
        self.shard(key)
            .lock()
            .expect("plan store shard poisoned")
            .compiled
            .iter()
            .any(|(k, _)| *k == key)
    }

    /// Look up `key`, compiling via `compile` on a miss. Returns the
    /// shared program and whether this was a hit. Compilation runs
    /// outside the shard lock; a racing compile of the same key adopts
    /// the first inserted program.
    pub fn get_or_compile(
        &self,
        key: u128,
        compile: impl FnOnce() -> CartResult<Arc<CompiledPlan>>,
    ) -> CartResult<(Arc<CompiledPlan>, bool)> {
        {
            let mut shard = self.shard(key).lock().expect("plan store shard poisoned");
            if let Some(pos) = shard.compiled.iter().position(|(k, _)| *k == key) {
                let entry = shard.compiled.remove(pos);
                let cp = Arc::clone(&entry.1);
                shard.compiled.insert(0, entry);
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok((cp, true));
            }
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let cp = compile()?;
        let mut shard = self.shard(key).lock().expect("plan store shard poisoned");
        if let Some(pos) = shard.compiled.iter().position(|(k, _)| *k == key) {
            // Lost a compile race; share the resident program.
            let entry = shard.compiled.remove(pos);
            let cp = Arc::clone(&entry.1);
            shard.compiled.insert(0, entry);
            return Ok((cp, false));
        }
        shard.compiled.insert(0, (key, Arc::clone(&cp)));
        if shard.compiled.len() > self.per_shard_cap {
            let evicted = shard.compiled.len() - self.per_shard_cap;
            shard.compiled.truncate(self.per_shard_cap);
            self.evictions.fetch_add(evicted as u64, Ordering::Relaxed);
        }
        Ok((cp, false))
    }

    /// Look up a schedule, constructing it via `build` on a miss.
    pub fn schedule(&self, key: u128, build: impl FnOnce() -> Plan) -> Arc<Plan> {
        {
            let shard = self.shard(key).lock().expect("plan store shard poisoned");
            if let Some((_, plan)) = shard.schedules.iter().find(|(k, _)| *k == key) {
                self.schedule_hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(plan);
            }
        }
        self.schedule_misses.fetch_add(1, Ordering::Relaxed);
        let plan = Arc::new(build());
        let mut shard = self.shard(key).lock().expect("plan store shard poisoned");
        if let Some((_, resident)) = shard.schedules.iter().find(|(k, _)| *k == key) {
            return Arc::clone(resident);
        }
        shard.schedules.push((key, Arc::clone(&plan)));
        plan
    }

    /// Resident compiled-program count across all shards.
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan store shard poisoned").compiled.len())
            .sum()
    }

    /// True when no compiled program is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Aggregate counters since creation.
    pub fn stats(&self) -> PlanStoreStats {
        PlanStoreStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            schedule_hits: self.schedule_hits.load(Ordering::Relaxed),
            schedule_misses: self.schedule_misses.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::BlockLayout;
    use crate::ops::size_temp;
    use crate::schedule::alltoall_plan;

    fn lay_for(nb: &RelNeighborhood, m: usize) -> ExecLayouts {
        let t = nb.len();
        let blocks: Vec<BlockLayout> = (0..t)
            .map(|i| BlockLayout::contiguous((i * m) as i64, m))
            .collect();
        ExecLayouts {
            send: blocks.clone(),
            recv: blocks,
            block_bytes: vec![m; t],
            temp_offsets: Vec::new(),
            temp_sizes: Vec::new(),
        }
    }

    fn compile_for(
        topo: &CartTopology,
        nb: &RelNeighborhood,
        rank: usize,
        m: usize,
    ) -> Arc<CompiledPlan> {
        let plan = alltoall_plan(nb);
        let lay = size_temp(lay_for(nb, m), PlanKind::Alltoall, plan.temp_slots).unwrap();
        Arc::new(CompiledPlan::compile(topo, rank, &plan, &lay, 0x100).unwrap())
    }

    #[test]
    fn keys_separate_every_identity_axis() {
        let t33 = CartTopology::torus(&[3, 3]).unwrap();
        let t34 = CartTopology::torus(&[3, 4]).unwrap();
        let mesh = CartTopology::new(&[3, 3], &[false, true]).unwrap();
        let moore = RelNeighborhood::moore(2, 1).unwrap();
        let vn = RelNeighborhood::von_neumann(2, 1).unwrap();
        let lay = lay_for(&moore, 8);
        let base = store_key(&t33, &moore, 0, PlanKind::Alltoall, &lay);
        assert_ne!(base, store_key(&t34, &moore, 0, PlanKind::Alltoall, &lay));
        assert_ne!(base, store_key(&mesh, &moore, 0, PlanKind::Alltoall, &lay));
        assert_ne!(
            base,
            store_key(&t33, &vn, 0, PlanKind::Alltoall, &lay_for(&vn, 8))
        );
        assert_ne!(base, store_key(&t33, &moore, 1, PlanKind::Alltoall, &lay));
        assert_ne!(base, store_key(&t33, &moore, 0, PlanKind::Allgather, &lay));
        assert_ne!(
            base,
            store_key(&t33, &moore, 0, PlanKind::Alltoall, &lay_for(&moore, 16))
        );
        // Same identity → same key, including across clones.
        assert_eq!(
            base,
            store_key(
                &t33.clone(),
                &moore.clone(),
                0,
                PlanKind::Alltoall,
                &lay.clone()
            )
        );
        // A permutation is part of the identity.
        let permuted = CartTopology::torus(&[3, 3])
            .unwrap()
            .with_permutation((0..9).rev().collect())
            .unwrap();
        assert_ne!(
            base,
            store_key(&permuted, &moore, 0, PlanKind::Alltoall, &lay)
        );
    }

    #[test]
    fn store_shares_across_lookups_and_counts() {
        let store = PlanStore::new(4, 8);
        let topo = CartTopology::torus(&[3, 3]).unwrap();
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let lay = lay_for(&nb, 8);
        let key = store_key(&topo, &nb, 0, PlanKind::Alltoall, &lay);
        assert!(!store.contains(key));
        let (a, hit_a) = store
            .get_or_compile(key, || Ok(compile_for(&topo, &nb, 0, 8)))
            .unwrap();
        assert!(!hit_a);
        assert!(store.contains(key));
        let (b, hit_b) = store
            .get_or_compile(key, || panic!("must not recompile"))
            .unwrap();
        assert!(hit_b);
        assert!(Arc::ptr_eq(&a, &b), "one shared program");
        let s = store.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        // `contains` affected neither counter.
        assert_eq!(store.len(), 1);
    }

    #[test]
    fn lru_evicts_per_shard() {
        // One shard, capacity 2: the third distinct key evicts the least
        // recently used entry.
        let store = PlanStore::new(1, 2);
        let topo = CartTopology::torus(&[3, 3]).unwrap();
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let keys: Vec<u128> = [4usize, 8, 16]
            .iter()
            .map(|&m| store_key(&topo, &nb, 0, PlanKind::Alltoall, &lay_for(&nb, m)))
            .collect();
        for &m in &[4usize, 8] {
            let key = store_key(&topo, &nb, 0, PlanKind::Alltoall, &lay_for(&nb, m));
            store
                .get_or_compile(key, || Ok(compile_for(&topo, &nb, 0, m)))
                .unwrap();
        }
        // Touch key[0] so key[1] is LRU.
        store
            .get_or_compile(keys[0], || panic!("resident"))
            .unwrap();
        store
            .get_or_compile(keys[2], || Ok(compile_for(&topo, &nb, 0, 16)))
            .unwrap();
        assert!(store.contains(keys[0]));
        assert!(!store.contains(keys[1]), "LRU entry evicted");
        assert!(store.contains(keys[2]));
        assert_eq!(store.stats().evictions, 1);
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn schedules_share_by_neighborhood_and_kind() {
        let store = PlanStore::new(4, 8);
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let k = schedule_key(&nb, PlanKind::Alltoall);
        let a = store.schedule(k, || alltoall_plan(&nb));
        let b = store.schedule(k, || panic!("must not rebuild"));
        assert!(Arc::ptr_eq(&a, &b));
        assert_ne!(k, schedule_key(&nb, PlanKind::Allgather));
        let s = store.stats();
        assert_eq!((s.schedule_hits, s.schedule_misses), (1, 1));
    }
}
