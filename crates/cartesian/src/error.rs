//! Errors for Cartesian collective operations.

use std::fmt;

use cartcomm_comm::CommError;
use cartcomm_topo::TopoError;
use cartcomm_types::TypeError;

/// Errors raised by Cartesian collective communication.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CartError {
    /// Topology-level failure (dimension mismatch, sizes, ...).
    Topo(TopoError),
    /// Communication-level failure.
    Comm(CommError),
    /// Datatype-level failure.
    Type(TypeError),
    /// The collective neighborhood-creation check failed: not all processes
    /// supplied the same relative neighborhood (violates the Cartesian
    /// requirement of Listing 1).
    NotIsomorphic,
    /// Buffer sizes passed to a collective do not match the neighborhood
    /// and counts.
    BadBufferSize {
        what: &'static str,
        expected: usize,
        actual: usize,
    },
    /// Counts/displacements arrays have the wrong length for the
    /// t-neighborhood.
    BadCounts {
        what: &'static str,
        expected: usize,
        actual: usize,
    },
    /// Send-side and receive-side block sizes disagree for a block index —
    /// the irregular combining schedules require identical per-index sizes
    /// on all processes (§3.3).
    BlockSizeMismatch {
        block: usize,
        send: usize,
        recv: usize,
    },
    /// The message-combining schedules route blocks through intermediate
    /// processes and therefore require every dimension that the
    /// neighborhood moves in to be periodic (the paper's evaluation setting;
    /// non-periodic meshes are supported by the trivial algorithms and the
    /// baseline collectives).
    CombiningNeedsTorus { dim: usize },
    /// The given allgatherv counts are not uniform, which the combining
    /// allgather schedule requires (isomorphism forces one block size; see
    /// DESIGN.md).
    NonUniformAllgatherCounts,
}

impl fmt::Display for CartError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CartError::Topo(e) => write!(f, "topology error: {e}"),
            CartError::Comm(e) => write!(f, "communication error: {e}"),
            CartError::Type(e) => write!(f, "datatype error: {e}"),
            CartError::NotIsomorphic => write!(
                f,
                "neighborhood is not Cartesian: processes supplied different relative neighbor lists"
            ),
            CartError::BadBufferSize {
                what,
                expected,
                actual,
            } => write!(f, "{what} buffer holds {actual} bytes, expected {expected}"),
            CartError::BadCounts {
                what,
                expected,
                actual,
            } => write!(f, "{what} has {actual} entries, expected {expected}"),
            CartError::BlockSizeMismatch { block, send, recv } => write!(
                f,
                "block {block}: send size {send} != receive size {recv}"
            ),
            CartError::CombiningNeedsTorus { dim } => write!(
                f,
                "message-combining schedule needs dimension {dim} to be periodic; use the trivial algorithm on meshes"
            ),
            CartError::NonUniformAllgatherCounts => write!(
                f,
                "combining allgatherv requires one uniform block size (see DESIGN.md §3.3 discussion)"
            ),
        }
    }
}

impl std::error::Error for CartError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CartError::Topo(e) => Some(e),
            CartError::Comm(e) => Some(e),
            CartError::Type(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TopoError> for CartError {
    fn from(e: TopoError) -> Self {
        CartError::Topo(e)
    }
}

impl From<CommError> for CartError {
    fn from(e: CommError) -> Self {
        CartError::Comm(e)
    }
}

impl From<TypeError> for CartError {
    fn from(e: TypeError) -> Self {
        CartError::Type(e)
    }
}

/// Result alias for Cartesian collective operations.
pub type CartResult<T> = Result<T, CartError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_display() {
        let e: CartError = TopoError::EmptyNeighborhood.into();
        assert!(matches!(e, CartError::Topo(_)));
        assert!(e.to_string().contains("topology"));
        let e: CartError = CommError::SignatureMismatch.into();
        assert!(std::error::Error::source(&e).is_some());
        let e: CartError = TypeError::InvalidArgument("x".into()).into();
        assert!(e.to_string().contains("datatype"));
        assert!(CartError::NotIsomorphic.to_string().contains("Cartesian"));
        assert!(CartError::CombiningNeedsTorus { dim: 2 }
            .to_string()
            .contains("2"));
        let e = CartError::BadBufferSize {
            what: "send",
            expected: 10,
            actual: 4,
        };
        assert!(e.to_string().contains("send"));
        assert!(std::error::Error::source(&CartError::NotIsomorphic).is_none());
    }
}
