//! Overlap-avoiding halo exchange — the §3.4 extension.
//!
//! The paper observes that for stencil halos the plain alltoall schedule is
//! not volume-optimal: corner (and in 3-D, edge) blocks are *contained in*
//! the face data already being sent, so sending them separately (or
//! forwarding them diagonally) duplicates bytes. "A better schedule would
//! be a combination of \[schedules\]... The representation of schedules as
//! arrays of datatypes and ranks would make such a combination both easy
//! and execution efficient."
//!
//! [`HaloExchange`] is that combination, in its classic dimension-phased
//! form: one two-neighbor exchange per dimension, where each phase's send
//! slabs *include the halo cells received in earlier phases*. After `d`
//! phases every halo cell — faces, edges, corners — is correct, no
//! diagonal neighbor is ever messaged, and no byte is sent twice:
//!
//! * messages: `2d` per process (vs `3^d − 1` for the full Moore
//!   exchange),
//! * volume: face bytes only, with corner/edge content riding along
//!   *inside* the grown slabs (vs duplicated corner blocks).
//!
//! The per-dimension exchanges are ordinary persistent `Cart_alltoallw`
//! operations over two-offset neighborhoods with subarray datatypes — i.e.
//! exactly a combination of this library's own schedules, as §3.4 asks.

use cartcomm_comm::Comm;
use cartcomm_topo::{RelNeighborhood, TopoError};
use cartcomm_types::Datatype;

use crate::cartcomm::CartComm;
use crate::error::{CartError, CartResult};
use crate::ops::{Algo, PersistentCollective, WBlock};

/// A prepared, persistent d-dimensional halo exchange of the given depth.
pub struct HaloExchange {
    phases: Vec<(CartComm, PersistentCollective)>,
    tile_elems: usize,
    elem_bytes: usize,
    phased_bytes: usize,
    naive_bytes: usize,
}

impl HaloExchange {
    /// Prepare a halo exchange for tiles of `inner` interior elements per
    /// dimension with a halo of `depth` cells, over a periodic process
    /// grid `proc_dims`. The tile buffer must be row-major of shape
    /// `inner[j] + 2·depth` per dimension, `elem` elements. Collective.
    pub fn new(
        comm: &Comm,
        proc_dims: &[usize],
        inner: &[usize],
        depth: usize,
        elem: &Datatype,
    ) -> CartResult<Self> {
        let d = proc_dims.len();
        if inner.len() != d {
            return Err(CartError::Topo(TopoError::DimensionMismatch {
                expected: d,
                actual: inner.len(),
            }));
        }
        if depth == 0 || inner.iter().any(|&n| n < depth) {
            return Err(CartError::BadCounts {
                what: "halo depth",
                expected: depth,
                actual: *inner.iter().min().unwrap_or(&0),
            });
        }
        let w: Vec<usize> = inner.iter().map(|&n| n + 2 * depth).collect();
        let elem_bytes = elem.extent() as usize;
        let periods = vec![true; d];

        let mut phases = Vec::with_capacity(d);
        let mut phased_bytes = 0usize;
        for k in 0..d {
            // Two-neighbor Cartesian communicator for this dimension.
            let mut lo = vec![0i64; d];
            lo[k] = -1;
            let mut hi = vec![0i64; d];
            hi[k] = 1;
            let nb = RelNeighborhood::new(d, vec![lo, hi])?;
            let cart = CartComm::create(comm, proc_dims, &periods, nb)?;

            // Slab shape: full width in already-exchanged dimensions,
            // interior in not-yet-exchanged ones, `depth` in dimension k.
            let mut subsizes = vec![0usize; d];
            for j in 0..d {
                subsizes[j] = if j < k {
                    w[j]
                } else if j == k {
                    depth
                } else {
                    inner[j]
                };
            }
            let base_starts: Vec<usize> = (0..d).map(|j| if j < k { 0 } else { depth }).collect();
            let sub = |start_k: usize| -> CartResult<Datatype> {
                let mut starts = base_starts.clone();
                starts[k] = start_k;
                Ok(Datatype::subarray(&w, &subsizes, &starts, elem)?)
            };

            // Block 0 -> neighbor -e_k: low interior slab; received from
            // +e_k into the high halo. Block 1 symmetric.
            let sendspec = vec![
                WBlock::new(0, 1, &sub(depth)?),
                WBlock::new(0, 1, &sub(w[k] - 2 * depth)?),
            ];
            let recvspec = vec![
                WBlock::new(0, 1, &sub(w[k] - depth)?),
                WBlock::new(0, 1, &sub(0)?),
            ];
            let handle = cart.alltoallw_init(&sendspec, &recvspec, Algo::Combining)?;

            let slab_elems: usize = subsizes.iter().product();
            phased_bytes += 2 * slab_elems * elem_bytes;
            phases.push((cart, handle));
        }

        // Naive full Moore-neighborhood exchange volume for comparison:
        // every non-zero offset sends a block of depth^(nonzero dims) ×
        // interior^(zero dims) elements.
        let moore = RelNeighborhood::moore(d, 1)?;
        let naive_bytes: usize = moore
            .offsets()
            .iter()
            .map(|off| {
                off.iter()
                    .enumerate()
                    .map(|(j, &c)| if c == 0 { inner[j] } else { depth })
                    .product::<usize>()
                    * elem_bytes
            })
            .sum();

        Ok(HaloExchange {
            phases,
            tile_elems: w.iter().product(),
            elem_bytes,
            phased_bytes,
            naive_bytes,
        })
    }

    /// Execute the exchange in place on the tile buffer (raw bytes of
    /// shape ∏(inner+2·depth) elements).
    pub fn exchange(&mut self, tile: &mut [u8]) -> CartResult<()> {
        let expected = self.tile_elems * self.elem_bytes;
        if tile.len() != expected {
            return Err(CartError::BadBufferSize {
                what: "halo tile",
                expected,
                actual: tile.len(),
            });
        }
        for (cart, handle) in &mut self.phases {
            handle.execute_in_place(cart, tile)?;
        }
        Ok(())
    }

    /// Bytes this exchange sends per process per invocation.
    pub fn bytes_per_exchange(&self) -> usize {
        self.phased_bytes
    }

    /// Bytes the naive full-Moore exchange would send (corner/edge blocks
    /// as separate messages).
    pub fn naive_bytes(&self) -> usize {
        self.naive_bytes
    }

    /// Messages per process per invocation (`2d`).
    pub fn messages_per_exchange(&self) -> usize {
        2 * self.phases.len()
    }

    /// Total compiled communication rounds across the `d` phase handles —
    /// each phase compiles its two-neighbor schedule at `new` time, so
    /// every `exchange` runs precompiled span programs. Equals
    /// [`HaloExchange::messages_per_exchange`] by construction.
    pub fn compiled_rounds(&self) -> usize {
        self.phases
            .iter()
            .map(|(_, h)| h.compiled().map_or(0, |cp| cp.rounds()))
            .sum()
    }

    /// Number of dimensions.
    pub fn ndims(&self) -> usize {
        self.phases.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn volume_accounting_2d() {
        // inner 4x4, depth 1: phased = 2*(1*4) + 2*(6*1) = 8 + 12 = 20
        // elements; naive Moore = 4 faces * 4 + 4 corners * 1 = 20... with
        // overlap the phased approach sends 8 + 12 = 20 vs naive 20: equal
        // element count in 2-D depth 1 — but 4 fewer messages and corner
        // bytes ride shared slabs. For depth 2 the corner blocks grow
        // quadratically and phased wins on volume too.
        // (constructed outside a universe: only accounting is checked)
        let moore = RelNeighborhood::moore(2, 1).unwrap();
        let naive: usize = moore
            .offsets()
            .iter()
            .map(|off| {
                off.iter()
                    .map(|&c| if c == 0 { 4 } else { 1 })
                    .product::<usize>()
            })
            .sum();
        assert_eq!(naive, 4 * 4 + 4);
    }
}
