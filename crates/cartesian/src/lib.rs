//! # cartcomm — Cartesian Collective Communication
//!
//! A from-scratch Rust implementation of *Cartesian Collective
//! Communication* (Träff & Hunold, ICPP 2019): sparse collective
//! communication over processes organized in a d-dimensional torus or mesh,
//! where every process specifies the **same** list of relative coordinate
//! offsets (an *isomorphic t-neighborhood*). Because neighborhoods are
//! isomorphic, every process computes identical, deadlock-free
//! communication schedules **locally, without any communication**
//! (Proposition 3.1).
//!
//! ## What's here
//!
//! * [`CartComm`] — the communicator created by the paper's one new
//!   function, `Cart_neighborhood_create` (Listing 1), carrying the
//!   Cartesian topology, the t-neighborhood, and cached schedules; plus the
//!   Listing 2 helpers (`relative_rank`, `relative_shift`,
//!   `relative_coord`, `neighbor_count`, `neighbor_get`).
//! * [`plan`] — the schedule representation: `d` communication phases of
//!   send-receive rounds over block references that alternate between the
//!   user receive buffer and a temporary buffer (zero-copy execution,
//!   Listing 5).
//! * [`compile`] — the compile stage between planning and execution:
//!   [`CompiledPlan`] resolves a schedule for one rank (peers, tags, wire
//!   sizes, flattened memcpy span programs) so repeated executes pay no
//!   coordinate math, datatype traversal, or allocation; persistent
//!   handles and the communicator's plan cache run these programs.
//! * [`schedule::alltoall`] — Algorithm 1: the message-combining alltoall
//!   schedule (`C = Σ C_k` rounds, volume `V = Σ z_i`, Prop. 3.2).
//! * [`schedule::allgather`] — Algorithm 2: the message-combining allgather
//!   tree schedule (volume = tree edges, Prop. 3.3), with dimensions
//!   processed in increasing `C_k` order.
//! * [`ops`] — the collective operations: `Cart_alltoall{,v,w}` and
//!   `Cart_allgather{,v,w}`, each in trivial (t-round, Listing 4) and
//!   message-combining variants, plus persistent `_init` handles.
//! * [`neighbor`] — the comparison baseline: direct-delivery neighborhood
//!   collectives over general distributed-graph topologies
//!   (`MPI_Neighbor_alltoall` and friends), including the §2.2 detection
//!   that a distributed graph is secretly Cartesian.
//! * [`cost`] — round/volume accounting and the latency cut-off
//!   `m < (α/β)·(t−C)/(V−t)` used throughout the evaluation.
//!
//! ## Quick taste
//!
//! ```
//! use cartcomm_comm::Universe;
//! use cartcomm_topo::RelNeighborhood;
//! use cartcomm::ops::Algo;
//! use cartcomm::CartComm;
//!
//! // 9-point stencil halo exchange on a 3x3 torus, one i32 per neighbor.
//! let nb = RelNeighborhood::moore(2, 1).unwrap();
//! Universe::builder(9).run(|comm| {
//!     let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
//!     let send: Vec<i32> = (0..8).map(|i| (cart.rank() * 10 + i) as i32).collect();
//!     let mut recv = vec![0i32; 8];
//!     cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
//!     // Every block arrived from the matching source neighbor.
//!     for i in 0..8 {
//!         let src = cart.relative_shift(cart.neighborhood().offset(i)).unwrap().0.unwrap();
//!         assert_eq!(recv[i], (src * 10 + i) as i32);
//!     }
//! });
//! ```

pub mod cartcomm;
pub mod compile;
pub mod cost;
pub mod error;
pub mod exec;
pub mod exec_mesh;
pub mod halo;
pub mod neighbor;
pub mod ops;
pub mod plan;
pub mod plan_store;
pub mod reduce;
pub mod schedule;

pub use crate::cartcomm::CartComm;
pub use compile::{
    execute_compiled, execute_compiled_in_place, execute_compiled_reduce, CompiledPlan, ExecScratch,
};
pub use cost::{cutoff_ratio, CostSummary};
pub use error::{CartError, CartResult};
pub use plan::{BlockRef, Loc, LocalCopy, Plan, PlanKind, PlanPhase, PlanRound};
pub use plan_store::{PlanStore, PlanStoreStats};
