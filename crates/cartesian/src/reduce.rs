//! Cartesian neighborhood reductions — the extension §2.2 floats
//! ("Cartesian reduction operations could also be considered, as discussed
//! in \[16\]").
//!
//! `Cart_neighbor_reduce` combines, at every process, the data blocks of
//! all its `t` *source* neighbors (and optionally its own contribution)
//! with an element-wise associative, commutative operator — the sparse
//! counterpart of `MPI_Reduce` restricted to a stencil, e.g. accumulating
//! flux contributions from all surrounding subdomains.
//!
//! Two algorithms are provided, mirroring the alltoall/allgather pair:
//!
//! * **trivial**: `t` sendrecv rounds, reducing each arriving block into
//!   the accumulator (Listing 4 shape, volume `t`).
//! * **tree-combining**: the message-combining *allgather* schedule run in
//!   reverse. Allgather routes one block from each process *outward* along
//!   a tree to all its targets; reversing every round (swap send/receive
//!   partners, walk phases backwards) routes one partial sum from each
//!   *source* inward, reducing partial blocks at every join — volume =
//!   tree edges, `C` rounds, by the same argument as Proposition 3.3.
//!
//! The reduction operator must be associative and commutative: the tree
//! reassociates sums in an order that depends on the neighborhood, and
//! with repeated offsets even the trivial algorithm's order is unspecified.

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::{ExchangeBatch, ExchangeOpts, RecvSpec, Tag};
use cartcomm_types::{cast_slice, cast_slice_mut, gather_append, Pod, RedOp, Reducer};

use crate::cartcomm::CartComm;
use crate::compile::{execute_compiled_reduce, ExecScratch};
use crate::error::{CartError, CartResult};
use crate::exec::ExecLayouts;
use crate::ops::{check_combining, choose_combining, Algo};
use crate::plan::{Loc, PlanKind};

/// Tag base for reduction rounds.
pub const REDUCE_TAG_BASE: Tag = 0x7E00_0000;

impl CartComm {
    // ----- first-class reductions (Cart_reduce_scatter / Cart_allreduce) -----

    /// `Cart_reduce_scatter`: the personalized neighborhood reduction.
    /// Process `q` receives, element-wise `op`-combined into `recv`, block
    /// `j` of the send buffer of each neighbor `q − N[j]` — the reduction
    /// dual of `Cart_alltoall`'s distribution. `send` holds `t` blocks of
    /// `recv.len()` elements, in neighbor order; repeated offsets
    /// contribute once per occurrence, and a zero offset contributes the
    /// caller's own block `j`. `algo` selects the reversed combining tree,
    /// the trivial t-round algorithm, or the §3.2 cut-off.
    pub fn neighbor_reduce_scatter<T: Pod>(
        &self,
        op: RedOp,
        send: &[T],
        recv: &mut [T],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::ReduceScatter)?;
        self.run_reduce(
            PlanKind::ReduceScatter,
            lay,
            cast_slice(send),
            cast_slice_mut(recv),
            Reducer::for_elem::<T>(op),
            algo,
        )
    }

    /// `Cart_allreduce`: every process contributes one block and receives
    /// the element-wise `op`-combination of its own block with the blocks
    /// of all its source neighbors `q − N[j]`. The own contribution counts
    /// exactly once even when the neighborhood contains the zero offset;
    /// repeated non-zero offsets count once per occurrence. `algo` as in
    /// [`CartComm::neighbor_reduce_scatter`].
    pub fn neighbor_allreduce<T: Pod>(
        &self,
        op: RedOp,
        send: &[T],
        recv: &mut [T],
        algo: Algo,
    ) -> CartResult<()> {
        let lay = self.regular_lay::<T>(send.len(), recv.len(), PlanKind::Allreduce)?;
        self.run_reduce(
            PlanKind::Allreduce,
            lay,
            cast_slice(send),
            cast_slice_mut(recv),
            Reducer::for_elem::<T>(op),
            algo,
        )
    }

    /// Byte-level [`CartComm::neighbor_reduce_scatter`] with an explicit
    /// [`Reducer`] — the entry point for serving layers that carry dtype
    /// and operator on the wire instead of in the type system.
    pub fn neighbor_reduce_scatter_bytes(
        &self,
        red: Reducer,
        send: &[u8],
        recv: &mut [u8],
        algo: Algo,
    ) -> CartResult<()> {
        red.check_len(recv.len()).map_err(CartError::from)?;
        let lay = self.regular_lay::<u8>(send.len(), recv.len(), PlanKind::ReduceScatter)?;
        self.run_reduce(PlanKind::ReduceScatter, lay, send, recv, red, algo)
    }

    /// Byte-level [`CartComm::neighbor_allreduce`] with an explicit
    /// [`Reducer`].
    pub fn neighbor_allreduce_bytes(
        &self,
        red: Reducer,
        send: &[u8],
        recv: &mut [u8],
        algo: Algo,
    ) -> CartResult<()> {
        red.check_len(recv.len()).map_err(CartError::from)?;
        let lay = self.regular_lay::<u8>(send.len(), recv.len(), PlanKind::Allreduce)?;
        self.run_reduce(PlanKind::Allreduce, lay, send, recv, red, algo)
    }

    /// Resolve `algo` and dispatch a reduction to the compiled reversed
    /// tree or the trivial t-round algorithm. `Algo::Combining` on a mesh
    /// is an error (the reversed tree routes through intermediates);
    /// `Algo::Auto` falls back to trivial there.
    pub(crate) fn run_reduce(
        &self,
        kind: PlanKind,
        lay: ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
        red: Reducer,
        algo: Algo,
    ) -> CartResult<()> {
        let use_combining = match algo {
            Algo::Trivial => false,
            Algo::Combining => {
                check_combining(self)?;
                true
            }
            auto => {
                check_combining(self).is_ok()
                    && choose_combining(auto, &self.plans().schedule(kind), &lay)
            }
        };
        if use_combining {
            // Torus: run the compiled reversed tree (cached across
            // repeated calls with the same neighborhood and layouts).
            let cp = self.plans().compiled(kind, lay)?;
            let mut scratch = ExecScratch::for_plan(&cp);
            execute_compiled_reduce(self.comm(), &cp, send, recv, &mut scratch, red)
        } else {
            match kind {
                PlanKind::ReduceScatter => self.run_trivial_reduce_scatter(&lay, send, recv, red),
                PlanKind::Allreduce => self.run_trivial_allreduce(&lay, send, recv, red),
                PlanKind::Alltoall | PlanKind::Allgather => {
                    unreachable!("run_reduce only dispatches reduction kinds")
                }
            }
        }
    }

    /// Trivial t-round reduce-scatter: one blocking sendrecv per neighbor
    /// (Listing 4 shape), block `i` of the send buffer delivered directly
    /// to target `self + N[i]` and each arrival folded into the single
    /// receive block (first arrival assigns). Works on meshes: neighbors
    /// cut off by a boundary are skipped.
    pub(crate) fn run_trivial_reduce_scatter(
        &self,
        lay: &ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
        red: Reducer,
    ) -> CartResult<()> {
        let obs = self.comm().obs();
        let metrics = obs.metrics();
        let traced = obs.enabled();
        let rank = self.comm().rank();
        let dst_block = lay.recv.first().map(|l| (l.disp as usize, l.size()));
        let mut assigned = false;
        let mut batch = ExchangeBatch::with_capacity(1);
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            let tag = REDUCE_TAG_BASE + i as Tag;
            if off.iter().all(|&c| c == 0) {
                // Self block: fold the own contribution locally through a
                // pooled scratch (no round on the wire).
                let mut bytes = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut bytes)?;
                fold_or_assign(recv, dst_block, &bytes, red, &mut assigned);
                continue;
            }
            let (source, target) = self.relative_shift(off)?;
            if let Some(dst) = target {
                let mut wire = self.comm().wire_buf(lay.send[i].size());
                gather_append(send, lay.send[i].disp, &lay.send[i].ty, &mut wire)?;
                metrics.round_started();
                metrics.pack(1, wire.len());
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundStart {
                            phase: 0,
                            round: i,
                            to: dst,
                            from: source.unwrap_or(usize::MAX),
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
                batch.send(dst, tag, wire);
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            self.comm()
                .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
            if let Some((wire, status)) = batch.take_result(0) {
                fold_or_assign(recv, dst_block, &wire, red, &mut assigned);
                metrics.round_completed();
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundEnd {
                            phase: 0,
                            round: i,
                            to: rank,
                            from: status.src,
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                    obs.emit(
                        rank,
                        TraceEvent::AccumSpan {
                            round: i,
                            spans: 1,
                            bytes: wire.len(),
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Trivial t-round allreduce: seed the receive block with the own
    /// contribution, then one sendrecv per *non-zero* neighbor offset,
    /// folding each arriving block in. Zero offsets are the caller itself
    /// and add nothing (the seed already counted the own block once).
    pub(crate) fn run_trivial_allreduce(
        &self,
        lay: &ExecLayouts,
        send: &[u8],
        recv: &mut [u8],
        red: Reducer,
    ) -> CartResult<()> {
        let obs = self.comm().obs();
        let metrics = obs.metrics();
        let traced = obs.enabled();
        let rank = self.comm().rank();
        let dst_block = lay.recv.first().map(|l| (l.disp as usize, l.size()));
        // Seed: recv := own contribution (gathered through the layout so
        // non-zero displacements work).
        let mut contribution = self
            .comm()
            .wire_buf(lay.send.first().map_or(0, |l| l.size()));
        if let Some(l) = lay.send.first() {
            gather_append(send, l.disp, &l.ty, &mut contribution)?;
        }
        let mut assigned = false;
        fold_or_assign(recv, dst_block, &contribution, red, &mut assigned);
        let mut batch = ExchangeBatch::with_capacity(1);
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            if off.iter().all(|&c| c == 0) {
                continue;
            }
            let tag = REDUCE_TAG_BASE + i as Tag;
            let (source, target) = self.relative_shift(off)?;
            if let Some(dst) = target {
                let mut wire = self.comm().wire_buf(contribution.len());
                wire.extend_from_slice(&contribution);
                metrics.round_started();
                metrics.pack(1, wire.len());
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundStart {
                            phase: 0,
                            round: i,
                            to: dst,
                            from: source.unwrap_or(usize::MAX),
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                }
                batch.send(dst, tag, wire);
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            self.comm()
                .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
            if let Some((wire, status)) = batch.take_result(0) {
                fold_or_assign(recv, dst_block, &wire, red, &mut assigned);
                metrics.round_completed();
                if traced {
                    obs.emit(
                        rank,
                        TraceEvent::RoundEnd {
                            phase: 0,
                            round: i,
                            to: rank,
                            from: status.src,
                            wire_bytes: wire.len(),
                            attempt: 0,
                        },
                    );
                    obs.emit(
                        rank,
                        TraceEvent::AccumSpan {
                            round: i,
                            spans: 1,
                            bytes: wire.len(),
                        },
                    );
                }
            }
        }
        Ok(())
    }

    /// Trivial neighborhood reduction: element-wise reduce the blocks of
    /// all `t` source neighbors (`self − N[i]`) into `acc`, which starts
    /// from the caller's own contribution. `op` must be associative and
    /// commutative. Each process *sends* its block toward every target
    /// neighbor, as in the allgather.
    pub fn neighbor_reduce_trivial<T, F>(&self, acc: &mut [T], op: F) -> CartResult<()>
    where
        T: Pod,
        F: Fn(T, T) -> T,
    {
        let contribution = cast_slice(acc).to_vec();
        for (i, off) in self.neighborhood().offsets().iter().enumerate() {
            let tag = REDUCE_TAG_BASE + i as Tag;
            if off.iter().all(|&c| c == 0) {
                // Self neighbor: the own contribution is already in `acc`
                // (it seeds the accumulator), so a zero offset adds
                // nothing further. Folding it again here double-counted
                // with non-idempotent operators like Sum.
                continue;
            }
            let (source, target) = self.relative_shift(off)?;
            let mut batch = ExchangeBatch::with_capacity(1);
            if let Some(dst) = target {
                // Pooled copy of the contribution instead of a fresh clone
                // per neighbor: recycles on the receiving rank.
                let mut wire = self.comm().wire_buf(contribution.len());
                wire.extend_from_slice(&contribution);
                batch.send(dst, tag, wire);
            }
            let mut specs = Vec::with_capacity(1);
            if let Some(src) = source {
                specs.push(RecvSpec::from_rank(src, tag));
            }
            self.comm()
                .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
            if let Some((wire, _)) = batch.take_result(0) {
                reduce_wire_into::<T, F>(&wire, acc, &op)?;
            }
        }
        Ok(())
    }

    /// Tree-combining neighborhood reduction: the allgather schedule run in
    /// reverse, reducing partial blocks at every intermediate hop. `C`
    /// rounds and volume = allgather tree edges (≤ `t`); for the Table 1
    /// stencil families it therefore beats the trivial algorithm at every
    /// block size, just like the combining allgather.
    pub fn neighbor_reduce<T, F>(&self, acc: &mut [T], op: F) -> CartResult<()>
    where
        T: Pod,
        F: Fn(T, T) -> T,
    {
        check_combining(self)?;
        // The allgather tree on the *negated* neighborhood routes each
        // process's block to its SOURCE neighbors r − N[j]; reversing that
        // flow funnels exactly the source contributions back to r, matching
        // the trivial algorithm's semantics. (Rounds and volume are the
        // same as the forward tree by sign symmetry of the C_k counts.)
        let plan = crate::schedule::allgather_plan(&self.neighborhood().negated());
        debug_assert_eq!(plan.kind, PlanKind::Allgather);
        let m = acc.len();
        let t = plan.t;
        if t == 0 {
            return Ok(());
        }

        // Reversal of the allgather dataflow: for every forward round
        // "send slot_from -> recv slot_to over +offset", the reduction
        // sends the accumulated value of slot_to over -offset and reduces
        // it into slot_from; phases run backwards. A slot is complete
        // before its reversed send because the forward plan wrote slot_to
        // at phase k and read it only at phases > k — reversed, everything
        // reducing INTO slot_to happens strictly before the round that
        // ships it. The root slot's accumulator is the result.
        let mut slots: Vec<Option<Vec<u8>>> = Vec::new();
        let own = cast_slice(acc).to_vec();
        let n_temp = plan.temp_slots;
        // slot indexing: 0 => the root/result accumulator (allgather's
        // Send slot); 1..=t => Recv blocks; t+1.. => temp slots.
        let total_slots = 1 + t + n_temp;
        slots.resize(total_slots, None);
        let slot_index = |loc: Loc, s: usize| -> usize {
            match loc {
                Loc::Send => 0,
                Loc::Recv => 1 + s,
                Loc::Temp => 1 + t + s,
            }
        };

        // Injection rule: in the forward allgather, every Recv slot is a
        // *delivery* of one neighbor's copy; reversed, every Recv slot is
        // an injection point of the own contribution (one per neighbor
        // index, preserving multiplicities of repeated offsets), and the
        // root (the forward send buffer) injects the own contribution as
        // the result's starting value. Zero-offset neighbors are the caller
        // itself — their contribution is exactly the root injection, so
        // their leaves stay empty (injecting there double-counted the own
        // block with non-idempotent operators). Temp slots are pure join
        // points and start empty.
        slots[0] = Some(own.clone());
        for (j, off) in self.neighborhood().offsets().iter().enumerate() {
            if off.iter().any(|&c| c != 0) {
                slots[1 + j] = Some(own.clone());
            }
        }

        // Execute reversed: phases backwards; within a phase, rounds are
        // independent (disjoint slots), so their order is irrelevant —
        // keep plan order, with reversed roles. Tags mirror the forward
        // numbering so all ranks agree.
        let rounds_per_phase: Vec<usize> = plan.phases.iter().map(|p| p.rounds.len()).collect();
        let phase_base: Vec<usize> = rounds_per_phase
            .iter()
            .scan(0usize, |acc, &n| {
                let b = *acc;
                *acc += n;
                Some(b)
            })
            .collect();
        for (k, phase) in plan.phases.iter().enumerate().rev() {
            // Reversed communication first, then reversed copies (the
            // forward plan did copies first).
            if !phase.rounds.is_empty() {
                let mut batch = ExchangeBatch::with_capacity(phase.rounds.len());
                let mut specs = Vec::with_capacity(phase.rounds.len());
                for (ri, round) in phase.rounds.iter().enumerate() {
                    // forward: send to +offset, receive from -offset.
                    // reversed: send to -offset, receive from +offset.
                    let neg: Vec<i64> = round.offset.iter().map(|&c| -c).collect();
                    let dst = self
                        .topology()
                        .rank_of_offset(self.rank(), &neg)?
                        .ok_or(CartError::CombiningNeedsTorus { dim: 0 })?;
                    let src = self
                        .topology()
                        .rank_of_offset(self.rank(), &round.offset)?
                        .ok_or(CartError::CombiningNeedsTorus { dim: 0 })?;
                    let tag = REDUCE_TAG_BASE + (phase_base[k] + ri) as Tag;
                    // wire carries the accumulated value of every forward
                    // recv slot, in wire order
                    let mut wire = self.comm().wire_buf(round.recvs.len() * m * 4);
                    for br in &round.recvs {
                        let idx = slot_index(br.loc, br.slot);
                        let slot = slots[idx]
                            .as_deref()
                            .expect("reversed send of an incomplete slot");
                        wire.extend_from_slice(slot);
                    }
                    batch.send(dst, tag, wire);
                    specs.push(RecvSpec::from_rank(src, tag));
                }
                self.comm()
                    .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
                for (ri, round) in phase.rounds.iter().enumerate() {
                    let (wire, _) = batch.take_result(ri).expect("exchange fills every slot");
                    let block_bytes = own.len();
                    let mut pos = 0usize;
                    for br in &round.sends {
                        let idx = slot_index(br.loc, br.slot);
                        let piece = &wire[pos..pos + block_bytes];
                        pos += block_bytes;
                        match slots[idx].take() {
                            None => slots[idx] = Some(piece.to_vec()),
                            Some(mut current) => {
                                reduce_bytes_into::<T, F>(piece, &mut current, &op)?;
                                slots[idx] = Some(current);
                            }
                        }
                    }
                    if pos != wire.len() {
                        return Err(CartError::BadBufferSize {
                            what: "reversed reduction message",
                            expected: pos,
                            actual: wire.len(),
                        });
                    }
                }
            }
            for copy in phase.copies.iter().rev() {
                // forward copy from -> to becomes reversed reduce to -> from
                let from_idx = slot_index(copy.to.loc, copy.to.slot);
                let to_idx = slot_index(copy.from.loc, copy.from.slot);
                // Empty slots (un-injected zero-offset leaves) contribute
                // nothing; skip their reversed copies.
                let Some(piece) = slots[from_idx].clone() else {
                    continue;
                };
                match slots[to_idx].take() {
                    None => slots[to_idx] = Some(piece),
                    Some(mut current) => {
                        reduce_bytes_into::<T, F>(&piece, &mut current, &op)?;
                        slots[to_idx] = Some(current);
                    }
                }
            }
        }

        // Slot 0 holds own + contributions of all source neighbors.
        let out = slots[0].take().expect("root accumulator present");
        reduce_assign::<T>(acc, &out)?;
        Ok(())
    }
}

/// Fold `bytes` into the single destination block of a reduction layout,
/// assigning on the first contribution (so the result is exactly the
/// combination of the contributions, with no identity element needed).
/// `dst_block` is the `(disp, size)` of the receive block; `None` (empty
/// neighborhood) leaves the buffer untouched.
fn fold_or_assign(
    recv: &mut [u8],
    dst_block: Option<(usize, usize)>,
    bytes: &[u8],
    red: Reducer,
    assigned: &mut bool,
) {
    let Some((d, n)) = dst_block else { return };
    debug_assert_eq!(bytes.len(), n, "reduction contribution matches the block");
    let dst = &mut recv[d..d + n];
    if *assigned {
        red.fold(dst, bytes);
    } else {
        dst.copy_from_slice(bytes);
        *assigned = true;
    }
}

/// acc := wire-reduced-into-acc, element-wise.
fn reduce_wire_into<T, F>(wire: &[u8], acc: &mut [T], op: &F) -> CartResult<()>
where
    T: Pod,
    F: Fn(T, T) -> T,
{
    if wire.len() != std::mem::size_of_val(acc) {
        return Err(CartError::BadBufferSize {
            what: "reduction block",
            expected: std::mem::size_of_val(acc),
            actual: wire.len(),
        });
    }
    let incoming: Vec<T> = wire
        .chunks_exact(std::mem::size_of::<T>())
        .map(read_pod::<T>)
        .collect();
    for (a, b) in acc.iter_mut().zip(incoming) {
        *a = op(*a, b);
    }
    Ok(())
}

/// current := op(current, piece), both as raw bytes of T.
fn reduce_bytes_into<T, F>(piece: &[u8], current: &mut [u8], op: &F) -> CartResult<()>
where
    T: Pod,
    F: Fn(T, T) -> T,
{
    if piece.len() != current.len() {
        return Err(CartError::BadBufferSize {
            what: "reduction partial",
            expected: current.len(),
            actual: piece.len(),
        });
    }
    let sz = std::mem::size_of::<T>();
    for (c, p) in current.chunks_exact_mut(sz).zip(piece.chunks_exact(sz)) {
        let v = op(read_pod::<T>(c), read_pod::<T>(p));
        write_pod(c, v);
    }
    Ok(())
}

/// acc := bytes (overwrite).
fn reduce_assign<T: Pod>(acc: &mut [T], bytes: &[u8]) -> CartResult<()> {
    if bytes.len() != std::mem::size_of_val(acc) {
        return Err(CartError::BadBufferSize {
            what: "reduction result",
            expected: std::mem::size_of_val(acc),
            actual: bytes.len(),
        });
    }
    for (a, c) in acc
        .iter_mut()
        .zip(bytes.chunks_exact(std::mem::size_of::<T>()))
    {
        *a = read_pod::<T>(c);
    }
    Ok(())
}

#[inline]
fn read_pod<T: Pod>(bytes: &[u8]) -> T {
    debug_assert_eq!(bytes.len(), std::mem::size_of::<T>());
    // SAFETY: T is Pod (any bit pattern valid); read_unaligned avoids
    // alignment requirements on the byte buffer.
    unsafe { std::ptr::read_unaligned(bytes.as_ptr().cast::<T>()) }
}

#[inline]
fn write_pod<T: Pod>(bytes: &mut [u8], v: T) {
    debug_assert_eq!(bytes.len(), std::mem::size_of::<T>());
    // SAFETY: as above.
    unsafe { std::ptr::write_unaligned(bytes.as_mut_ptr().cast::<T>(), v) }
}
