//! Baseline: general neighborhood collectives over distributed-graph
//! topologies (`MPI_Neighbor_alltoall{,v,w}` / `MPI_Neighbor_allgather`)
//! with direct delivery — the comparison point of the paper's evaluation —
//! plus the §2.2 detection that a distributed graph is secretly Cartesian.

use cartcomm_comm::{Comm, ExchangeBatch, ExchangeOpts, RecvSpec, Tag};
use cartcomm_topo::{CartTopology, DistGraphTopology, RelNeighborhood};
use cartcomm_types::{cast_slice, cast_slice_mut, gather_append, scatter, Pod};

use crate::cartcomm::CartComm;
use crate::error::{CartError, CartResult};
use crate::exec::BlockLayout;
use crate::ops::WBlock;

/// Fixed tag of all baseline neighborhood traffic. Matching relies on the
/// MPI non-overtaking rule: the k-th message a process sends to one peer
/// matches the k-th receive that peer posts for it, which, with both sides
/// enumerating the (consistent) adjacency lists in order, pairs block `i`
/// with the matching source slot — exactly MPI's neighborhood-collective
/// semantics.
pub const NEIGHBOR_TAG: Tag = 0x7D00_0000;

/// A communicator with a general distributed-graph topology attached
/// (`MPI_Dist_graph_create_adjacent`).
pub struct DistGraphComm {
    comm: Comm,
    graph: DistGraphTopology,
}

impl DistGraphComm {
    /// Attach adjacency lists to (a duplicate of) `comm`. Collective.
    pub fn create_adjacent(comm: &Comm, graph: DistGraphTopology) -> Self {
        DistGraphComm {
            comm: comm.dup(),
            graph,
        }
    }

    /// This process's rank.
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// The adjacency lists.
    pub fn graph(&self) -> &DistGraphTopology {
        &self.graph
    }

    /// The underlying communicator.
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    // ----- §2.2: Cartesian detection -------------------------------------------

    /// Collectively check whether this distributed graph is an isomorphic
    /// Cartesian neighborhood over `cart`, as an MPI library could do inside
    /// `MPI_Dist_graph_create_adjacent`: broadcast the root's neighbor
    /// count, then the root's sorted relative neighborhood (O(t) data), and
    /// compare locally. Returns the reconstructed neighborhood (in target
    /// order, wrap-normalized) when the graph is Cartesian.
    pub fn detect_cartesian(&self, cart: &CartTopology) -> CartResult<Option<RelNeighborhood>> {
        let rec = self.graph.reconstruct_relative(cart, self.rank());
        // Degree check: broadcast the root's t and AND-compare.
        let my_t = rec.as_ref().map_or(u64::MAX, |r| r.len() as u64);
        let mut root_t = [my_t];
        self.comm.bcast_slice(0, &mut root_t)?;
        let mut ok = [u8::from(my_t == root_t[0] && my_t != u64::MAX)];
        self.comm.allreduce(&mut ok, |a, b| a & b)?;
        if ok[0] == 0 {
            return Ok(None);
        }
        let rec = rec.expect("degree check passed");
        // Neighborhood check: the root's *sorted* relative neighborhood must
        // equal everyone's (canonical encoding).
        if self.comm.all_same(&rec.canonical_bytes())? {
            Ok(Some(rec))
        } else {
            Ok(None)
        }
    }

    /// Try to promote this graph communicator to a full [`CartComm`] (the
    /// library-internal algorithm-selection path of §2.2). Collective;
    /// returns `None` when the graph is not Cartesian.
    pub fn try_promote(&self, cart: &CartTopology) -> CartResult<Option<CartComm>> {
        match self.detect_cartesian(cart)? {
            Some(nb) => {
                // Promotion requires the *same index order* everywhere, not
                // just the same set; re-verify on the exact list.
                match CartComm::create(&self.comm, cart.dims(), cart.periods(), nb) {
                    Ok(cc) => Ok(Some(cc)),
                    Err(CartError::NotIsomorphic) => Ok(None),
                    Err(e) => Err(e),
                }
            }
            None => Ok(None),
        }
    }

    // ----- blocking collectives ---------------------------------------------------

    /// `MPI_Neighbor_alltoall`: direct delivery of equal blocks, block size
    /// `send.len() / outdegree` elements.
    pub fn neighbor_alltoall<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        let (slay, rlay) = self.regular_layouts::<T>(send.len(), recv.len())?;
        self.direct_delivery(&slay, &rlay, cast_slice(send), cast_slice_mut(recv))
    }

    /// `MPI_Neighbor_allgather`: the same `send` block to every target.
    pub fn neighbor_allgather<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        let _sz = std::mem::size_of::<T>();
        let m = std::mem::size_of_val(send);
        crate::ops::check_buffer(
            "receive",
            self.graph.indegree() * m,
            std::mem::size_of_val(recv),
        )?;
        let slay: Vec<BlockLayout> = (0..self.graph.outdegree())
            .map(|_| BlockLayout::contiguous(0, m))
            .collect();
        let rlay: Vec<BlockLayout> = (0..self.graph.indegree())
            .map(|j| BlockLayout::contiguous((j * m) as i64, m))
            .collect();
        self.direct_delivery(&slay, &rlay, cast_slice(send), cast_slice_mut(recv))
    }

    /// `MPI_Neighbor_alltoallv`.
    pub fn neighbor_alltoallv<T: Pod>(
        &self,
        send: &[T],
        sendcounts: &[usize],
        senddispls: &[usize],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<()> {
        let sz = std::mem::size_of::<T>();
        crate::ops::check_len("sendcounts", self.graph.outdegree(), sendcounts.len())?;
        crate::ops::check_len("senddispls", self.graph.outdegree(), senddispls.len())?;
        crate::ops::check_len("recvcounts", self.graph.indegree(), recvcounts.len())?;
        crate::ops::check_len("recvdispls", self.graph.indegree(), recvdispls.len())?;
        let slay: Vec<BlockLayout> = (0..sendcounts.len())
            .map(|i| BlockLayout::contiguous((senddispls[i] * sz) as i64, sendcounts[i] * sz))
            .collect();
        let rlay: Vec<BlockLayout> = (0..recvcounts.len())
            .map(|j| BlockLayout::contiguous((recvdispls[j] * sz) as i64, recvcounts[j] * sz))
            .collect();
        self.direct_delivery(&slay, &rlay, cast_slice(send), cast_slice_mut(recv))
    }

    /// `MPI_Neighbor_alltoallw`: per-neighbor datatypes.
    pub fn neighbor_alltoallw(
        &self,
        send: &[u8],
        sendspec: &[WBlock],
        recv: &mut [u8],
        recvspec: &[WBlock],
    ) -> CartResult<()> {
        crate::ops::check_len("sendspec", self.graph.outdegree(), sendspec.len())?;
        crate::ops::check_len("recvspec", self.graph.indegree(), recvspec.len())?;
        let slay = sendspec
            .iter()
            .map(|w| w.commit())
            .collect::<CartResult<Vec<_>>>()?;
        let rlay = recvspec
            .iter()
            .map(|w| w.commit())
            .collect::<CartResult<Vec<_>>>()?;
        self.direct_delivery(&slay, &rlay, send, recv)
    }

    /// `MPI_Neighbor_allgatherv` (uniform placement freedom).
    pub fn neighbor_allgatherv<T: Pod>(
        &self,
        send: &[T],
        recv: &mut [T],
        recvcounts: &[usize],
        recvdispls: &[usize],
    ) -> CartResult<()> {
        let sz = std::mem::size_of::<T>();
        crate::ops::check_len("recvcounts", self.graph.indegree(), recvcounts.len())?;
        crate::ops::check_len("recvdispls", self.graph.indegree(), recvdispls.len())?;
        let m = std::mem::size_of_val(send);
        let slay: Vec<BlockLayout> = (0..self.graph.outdegree())
            .map(|_| BlockLayout::contiguous(0, m))
            .collect();
        let rlay: Vec<BlockLayout> = (0..recvcounts.len())
            .map(|j| BlockLayout::contiguous((recvdispls[j] * sz) as i64, recvcounts[j] * sz))
            .collect();
        self.direct_delivery(&slay, &rlay, cast_slice(send), cast_slice_mut(recv))
    }

    // ----- non-blocking named variants ------------------------------------------------

    /// `MPI_Ineighbor_alltoall` started-and-completed: in this substrate
    /// sends are eager and completion is local, so the non-blocking variant
    /// executes the identical direct-delivery pattern. The separate entry
    /// point exists so the benchmark harness can report both series, as the
    /// paper's figures do.
    pub fn ineighbor_alltoall<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        self.neighbor_alltoall(send, recv)
    }

    /// `MPI_Ineighbor_allgather` started-and-completed (see
    /// [`DistGraphComm::ineighbor_alltoall`]).
    pub fn ineighbor_allgather<T: Pod>(&self, send: &[T], recv: &mut [T]) -> CartResult<()> {
        self.neighbor_allgather(send, recv)
    }

    // ----- engine ------------------------------------------------------------------------

    fn regular_layouts<T: Pod>(
        &self,
        send_len: usize,
        recv_len: usize,
    ) -> CartResult<(Vec<BlockLayout>, Vec<BlockLayout>)> {
        let sz = std::mem::size_of::<T>();
        let outd = self.graph.outdegree();
        let ind = self.graph.indegree();
        let m = send_len.checked_div(outd).unwrap_or(0);
        crate::ops::check_buffer("send", outd * m * sz, send_len * sz)?;
        crate::ops::check_buffer("receive", ind * m * sz, recv_len * sz)?;
        let slay = (0..outd)
            .map(|i| BlockLayout::contiguous((i * m * sz) as i64, m * sz))
            .collect();
        let rlay = (0..ind)
            .map(|j| BlockLayout::contiguous((j * m * sz) as i64, m * sz))
            .collect();
        Ok((slay, rlay))
    }

    /// Direct delivery: post a receive per source and a send per target,
    /// complete everything (what mainstream MPI libraries do for
    /// neighborhood collectives).
    fn direct_delivery(
        &self,
        slay: &[BlockLayout],
        rlay: &[BlockLayout],
        send: &[u8],
        recv: &mut [u8],
    ) -> CartResult<()> {
        let mut batch = ExchangeBatch::with_capacity(slay.len());
        for (i, &dst) in self.graph.targets().iter().enumerate() {
            let mut wire = self.comm.wire_buf(slay[i].size());
            gather_append(send, slay[i].disp, &slay[i].ty, &mut wire)?;
            batch.send(dst, NEIGHBOR_TAG, wire);
        }
        let specs: Vec<RecvSpec> = self
            .graph
            .sources()
            .iter()
            .map(|&src| RecvSpec::from_rank(src, NEIGHBOR_TAG))
            .collect();
        self.comm
            .exchange(&mut batch, &specs, ExchangeOpts::pooled())?;
        for (j, (wire, _)) in batch.drain_results().enumerate() {
            scatter(&wire, recv, rlay[j].disp, &rlay[j].ty)?;
        }
        Ok(())
    }
}
