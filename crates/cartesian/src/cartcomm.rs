//! The Cartesian neighborhood communicator (`Cart_neighborhood_create`,
//! Listing 1) and the relative-coordinate helper functions (Listing 2).

use std::cell::{Cell, OnceCell};
use std::sync::Arc;

use cartcomm_comm::obs::TraceEvent;
use cartcomm_comm::Comm;
use cartcomm_topo::{CartTopology, DistGraphTopology, Offset, RelNeighborhood, TopoError};

use crate::compile::CompiledPlan;
use crate::error::{CartError, CartResult};
use crate::exec::{ExecLayouts, CART_TAG_BASE};
use crate::plan::{Plan, PlanKind};
use crate::plan_store::{schedule_key, store_key, PlanStore};
use crate::schedule::{allgather_plan, allreduce_plan, alltoall_plan, reduce_scatter_plan};

/// A communicator with a Cartesian topology and an isomorphic
/// t-neighborhood attached — the object the paper's single new function
/// `Cart_neighborhood_create` returns.
///
/// Creation is collective: all ranks must pass the same dimensions,
/// periodicity, and relative neighborhood, and the constructor *verifies*
/// the isomorphism requirement with the cheap O(t) check of §2.2 (broadcast
/// of the sorted root neighborhood plus an AND-reduction). Schedules for
/// the message-combining collectives are computed locally on first use and
/// cached (the `_init` persistent operations share them).
pub struct CartComm {
    comm: Comm,
    topo: CartTopology,
    nb: RelNeighborhood,
    weights: Option<Vec<u32>>,
    reorder: bool,
    alltoall_plan: OnceCell<Arc<Plan>>,
    allgather_plan: OnceCell<Arc<Plan>>,
    reduce_scatter_plan: OnceCell<Arc<Plan>>,
    allreduce_plan: OnceCell<Arc<Plan>>,
    /// Where schedules and compiled programs live. Defaults to
    /// [`PlanStore::global`], so every communicator in the process shares
    /// one warm cache; [`CartComm::with_plan_store`] pins a private store
    /// (isolation for tests and tenants that must not share).
    store: Arc<PlanStore>,
    /// Per-communicator attribution: this communicator's own store hits
    /// and misses. `CartComm` is owned by one rank's thread, so interior
    /// mutability via `Cell` is safe — the same reasoning as `OnceCell`.
    cache_hits: Cell<u64>,
    cache_misses: Cell<u64>,
}

impl CartComm {
    /// Create a Cartesian neighborhood communicator
    /// (`Cart_neighborhood_create` with `MPI_UNWEIGHTED` and no
    /// reordering). Collective over all ranks of `comm`.
    pub fn create(
        comm: &Comm,
        dims: &[usize],
        periods: &[bool],
        neighborhood: RelNeighborhood,
    ) -> CartResult<Self> {
        Self::create_weighted(comm, dims, periods, neighborhood, None, false)
    }

    /// Creation with machine-aware reordering: places logical grid
    /// positions onto physical ranks in node-sized bricks
    /// ([`cartcomm_topo::remap`]), so that stencil neighbors stay on-node
    /// as often as possible — the optimization the paper's `reorder` flag
    /// was meant to enable and that "current MPI libraries do not exploit"
    /// \[6\]. `cores_per_node` must divide the process count with a
    /// compatible brick factorization; all collectives and helpers work
    /// transparently through the permutation.
    pub fn create_reordered(
        comm: &Comm,
        dims: &[usize],
        periods: &[bool],
        neighborhood: RelNeighborhood,
        weights: Option<Vec<u32>>,
        cores_per_node: usize,
    ) -> CartResult<Self> {
        let mut cc = Self::create_weighted(comm, dims, periods, neighborhood, weights, true)?;
        let perm = cartcomm_topo::remap::brick_permutation(dims, cores_per_node)?;
        cc.topo = cc.topo.with_permutation(perm)?;
        Ok(cc)
    }

    /// Full-argument creation: optional per-neighbor weights (for future
    /// process remapping) and the `reorder` flag. Reordering is accepted
    /// and recorded but the identity mapping is used unless
    /// [`CartComm::create_reordered`] is called with machine information,
    /// matching the behavior of current MPI libraries (see \[6\] in the
    /// paper).
    pub fn create_weighted(
        comm: &Comm,
        dims: &[usize],
        periods: &[bool],
        neighborhood: RelNeighborhood,
        weights: Option<Vec<u32>>,
        reorder: bool,
    ) -> CartResult<Self> {
        let topo = CartTopology::new(dims, periods)?;
        if topo.size() != comm.size() {
            return Err(CartError::Topo(TopoError::SizeMismatch {
                product: topo.size(),
                processes: comm.size(),
            }));
        }
        if neighborhood.ndims() != topo.ndims() {
            return Err(CartError::Topo(TopoError::DimensionMismatch {
                expected: topo.ndims(),
                actual: neighborhood.ndims(),
            }));
        }
        if let Some(w) = &weights {
            if w.len() != neighborhood.len() {
                return Err(CartError::Topo(TopoError::WeightMismatch {
                    expected: neighborhood.len(),
                    actual: w.len(),
                }));
            }
        }
        // §2.2 isomorphism verification: all processes must have supplied
        // the same relative neighborhood. O(t) data broadcast + AND-reduce.
        // (The *exact list* must agree, including order, per Listing 1; we
        // compare the flat encoding directly.)
        let flat = neighborhood.to_flat();
        let mut encoded = Vec::with_capacity(8 + flat.len() * 8);
        encoded.extend_from_slice(&(neighborhood.ndims() as u64).to_le_bytes());
        for v in &flat {
            encoded.extend_from_slice(&v.to_le_bytes());
        }
        if !comm.all_same(&encoded)? {
            return Err(CartError::NotIsomorphic);
        }
        Ok(CartComm {
            comm: comm.dup(),
            topo,
            nb: neighborhood,
            weights,
            reorder,
            alltoall_plan: OnceCell::new(),
            allgather_plan: OnceCell::new(),
            reduce_scatter_plan: OnceCell::new(),
            allreduce_plan: OnceCell::new(),
            store: PlanStore::global(),
            cache_hits: Cell::new(0),
            cache_misses: Cell::new(0),
        })
    }

    /// Rebind this communicator to a private [`PlanStore`] instead of the
    /// process-wide one. Existing per-communicator hit/miss counters and
    /// lazily computed schedules are left untouched, so call this right
    /// after creation. Use for isolation: tests that pin exact hit/miss
    /// sequences, or tenants whose programs must not be co-resident.
    pub fn with_plan_store(mut self, store: Arc<PlanStore>) -> Self {
        self.store = store;
        self
    }

    // ----- accessors --------------------------------------------------------

    /// This process's rank.
    #[inline]
    pub fn rank(&self) -> usize {
        self.comm.rank()
    }

    /// Number of processes.
    #[inline]
    pub fn size(&self) -> usize {
        self.comm.size()
    }

    /// The underlying communicator (duplicated context private to this
    /// Cartesian communicator).
    #[inline]
    pub fn comm(&self) -> &Comm {
        &self.comm
    }

    /// The Cartesian topology.
    #[inline]
    pub fn topology(&self) -> &CartTopology {
        &self.topo
    }

    /// The t-neighborhood.
    #[inline]
    pub fn neighborhood(&self) -> &RelNeighborhood {
        &self.nb
    }

    /// The per-neighbor weights, if any were supplied.
    pub fn weights(&self) -> Option<&[u32]> {
        self.weights.as_deref()
    }

    /// Whether reordering was requested at creation.
    pub fn reorder_requested(&self) -> bool {
        self.reorder
    }

    /// This process's coordinates.
    pub fn coords(&self) -> Vec<usize> {
        self.topo.coords_of(self.rank())
    }

    // ----- Listing 2 helpers -------------------------------------------------

    /// `Cart_relative_rank`: the rank at `self + relative`, if it exists.
    pub fn relative_rank(&self, relative: &[i64]) -> CartResult<Option<usize>> {
        Ok(self.topo.rank_of_offset(self.rank(), relative)?)
    }

    /// `Cart_relative_shift`: `(source, target)` ranks for a relative
    /// offset — target is `self + relative`, source `self − relative`.
    pub fn relative_shift(&self, relative: &[i64]) -> CartResult<(Option<usize>, Option<usize>)> {
        Ok(self.topo.relative_shift(self.rank(), relative)?)
    }

    /// `Cart_relative_coord`: the normalized relative coordinates of
    /// another rank.
    pub fn relative_coord(&self, rank: usize) -> Vec<i64> {
        self.topo.relative_coord(self.rank(), rank)
    }

    /// `Cart_neighbor_count`: the number of neighbors, `t`.
    pub fn neighbor_count(&self) -> usize {
        self.nb.len()
    }

    /// `Cart_neighbor_get`: the source and target rank lists of this
    /// process, in neighborhood order (the format
    /// `MPI_Dist_graph_create_adjacent` expects). On non-periodic meshes,
    /// offsets leaving the mesh are omitted.
    pub fn neighbor_get(&self) -> CartResult<DistGraphTopology> {
        Ok(DistGraphTopology::from_cart_neighborhood(
            &self.topo,
            &self.nb,
            self.rank(),
        )?)
    }

    // ----- cached schedules ---------------------------------------------------

    /// View over this communicator's cached schedules and compiled
    /// programs: the single entry point for plan inspection and reuse
    /// (replaces the former `alltoall_schedule`/`allgather_schedule`/
    /// `compiled_plan`/`plan_cache_stats` quartet).
    #[inline]
    pub fn plans(&self) -> Plans<'_> {
        Plans { cc: self }
    }

    /// The schedule for `kind` (computed once per communicator via the
    /// `OnceCell`, shared *across* communicators through the store: the
    /// message-combining plan depends only on the neighborhood and kind).
    fn schedule_for(&self, kind: PlanKind) -> Arc<Plan> {
        let cell = match kind {
            PlanKind::Alltoall => &self.alltoall_plan,
            PlanKind::Allgather => &self.allgather_plan,
            PlanKind::ReduceScatter => &self.reduce_scatter_plan,
            PlanKind::Allreduce => &self.allreduce_plan,
        };
        Arc::clone(cell.get_or_init(|| {
            self.store
                .schedule(schedule_key(&self.nb, kind), || match kind {
                    PlanKind::Alltoall => alltoall_plan(&self.nb),
                    PlanKind::Allgather => allgather_plan(&self.nb),
                    PlanKind::ReduceScatter => reduce_scatter_plan(&self.nb),
                    PlanKind::Allreduce => allreduce_plan(&self.nb),
                })
        }))
    }

    /// Store-or-compile core behind [`Plans::compiled`]: resolve the full
    /// program identity (topology, neighborhood, rank, kind, layouts) to a
    /// store key and look it up in this communicator's [`PlanStore`]. The
    /// store shares programs process-wide; hit/miss counters, metrics, and
    /// trace events here attribute each lookup to *this* communicator.
    fn compiled_for(&self, kind: PlanKind, lay: ExecLayouts) -> CartResult<Arc<CompiledPlan>> {
        let obs = self.comm.obs();
        let key = store_key(&self.topo, &self.nb, self.rank(), kind, &lay);
        let (cp, hit) = self.store.get_or_compile(key, || {
            let plan = self.schedule_for(kind);
            let lay = crate::ops::size_temp(lay, kind, plan.temp_slots)?;
            Ok(Arc::new(CompiledPlan::compile(
                &self.topo,
                self.rank(),
                &plan,
                &lay,
                CART_TAG_BASE,
            )?))
        })?;
        if hit {
            self.cache_hits.set(self.cache_hits.get() + 1);
            obs.metrics().plan_cache_hit();
            obs.emit(
                self.rank(),
                TraceEvent::PlanCacheHit {
                    fingerprint: key as u64,
                },
            );
        } else {
            self.cache_misses.set(self.cache_misses.get() + 1);
            obs.metrics().plan_cache_miss();
            obs.emit(
                self.rank(),
                TraceEvent::PlanCacheMiss {
                    fingerprint: key as u64,
                },
            );
        }
        Ok(cp)
    }

    /// The message-combining alltoall schedule (computed once, shared).
    #[deprecated(since = "0.2.0", note = "use `plans().alltoall()`")]
    pub fn alltoall_schedule(&self) -> Arc<Plan> {
        self.schedule_for(PlanKind::Alltoall)
    }

    /// The message-combining allgather schedule (computed once, shared).
    #[deprecated(since = "0.2.0", note = "use `plans().allgather()`")]
    pub fn allgather_schedule(&self) -> Arc<Plan> {
        self.schedule_for(PlanKind::Allgather)
    }

    /// The compiled program for `kind` over `lay`.
    #[deprecated(since = "0.2.0", note = "use `plans().compiled(kind, lay)`")]
    pub fn compiled_plan(&self, kind: PlanKind, lay: ExecLayouts) -> CartResult<Arc<CompiledPlan>> {
        self.compiled_for(kind, lay)
    }

    /// Compiled-plan cache telemetry: `(hits, misses)` since creation.
    #[deprecated(since = "0.2.0", note = "use `plans().cache_stats()`")]
    pub fn plan_cache_stats(&self) -> (u64, u64) {
        let s = self.plans().cache_stats();
        (s.hits, s.misses)
    }

    /// True if every dimension the neighborhood moves in is periodic —
    /// the condition under which the message-combining schedules may route
    /// through intermediate processes for every rank.
    pub fn combining_applicable(&self) -> bool {
        (0..self.topo.ndims())
            .all(|k| self.topo.periods()[k] || self.nb.offsets().iter().all(|o| o[k] == 0))
    }

    /// The offsets, as a convenience for iteration.
    pub fn offsets(&self) -> &[Offset] {
        self.nb.offsets()
    }
}

/// Compiled-plan cache telemetry, in absolute counts since communicator
/// creation ([`Plans::cache_stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    pub hits: u64,
    pub misses: u64,
}

/// Read-only view over a communicator's schedule and compiled-program
/// caches, obtained from [`CartComm::plans`]. Schedules are computed
/// lazily on first request and shared thereafter; compiled programs live
/// in the communicator's [`PlanStore`] — by default the process-wide
/// [`PlanStore::global`], so they are shared with every other
/// communicator of the same identity while hits and misses stay
/// attributed per communicator.
pub struct Plans<'a> {
    cc: &'a CartComm,
}

impl Plans<'_> {
    /// The message-combining alltoall schedule (computed once, shared).
    pub fn alltoall(&self) -> Arc<Plan> {
        self.cc.schedule_for(PlanKind::Alltoall)
    }

    /// The message-combining allgather schedule (computed once, shared).
    pub fn allgather(&self) -> Arc<Plan> {
        self.cc.schedule_for(PlanKind::Allgather)
    }

    /// The schedule for `kind`.
    pub fn schedule(&self, kind: PlanKind) -> Arc<Plan> {
        self.cc.schedule_for(kind)
    }

    /// The compiled program for `kind` over `lay`, from the communicator's
    /// [`PlanStore`]. On a store miss the schedule is (re)used, temp-sized,
    /// compiled for this rank, and inserted; on a hit — including a program
    /// another communicator compiled — the call pays neither schedule
    /// construction nor compilation. Requires combining applicability
    /// (callers gate on [`CartComm::combining_applicable`]). Hits and
    /// misses are attributed to this communicator via
    /// [`Plans::cache_stats`] and as `PlanCacheHit`/`PlanCacheMiss` trace
    /// events on the rank's [`cartcomm_comm::obs::Obs`] handle.
    pub fn compiled(&self, kind: PlanKind, lay: ExecLayouts) -> CartResult<Arc<CompiledPlan>> {
        self.cc.compiled_for(kind, lay)
    }

    /// The layout-shape fingerprint of `lay` for `kind` — one component of
    /// the full store key (see [`Plans::store_key`]), and stable across
    /// topologies and ranks.
    pub fn fingerprint(&self, kind: PlanKind, lay: &ExecLayouts) -> u128 {
        lay.fingerprint(kind)
    }

    /// The full [`PlanStore`] key [`Plans::compiled`] resolves for `kind`
    /// over `lay`: topology (dims, periods, permutation) + rank +
    /// neighborhood + kind + layout fingerprint.
    pub fn store_key(&self, kind: PlanKind, lay: &ExecLayouts) -> u128 {
        store_key(&self.cc.topo, &self.cc.nb, self.cc.rank(), kind, lay)
    }

    /// The [`PlanStore`] this communicator resolves programs in.
    pub fn store(&self) -> &Arc<PlanStore> {
        &self.cc.store
    }

    /// Store lookup telemetry attributed to this communicator since its
    /// creation (the store's own aggregate is [`PlanStore::stats`]).
    pub fn cache_stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.cc.cache_hits.get(),
            misses: self.cc.cache_misses.get(),
        }
    }
}
