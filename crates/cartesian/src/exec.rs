//! Zero-copy schedule execution (Listing 5).
//!
//! A [`Plan`] is rank-independent; executing it requires resolving every
//! [`BlockRef`] to concrete bytes. [`ExecLayouts`] carries the per-block
//! displacements and committed datatypes of the user's send and receive
//! buffers (built once per operation, or once per `_init` handle), and
//! [`execute_plan`] runs the phases: per phase, all outgoing messages are
//! gathered and posted, all incoming messages are received and scattered —
//! the `Irecv`/`Isend`/`Waitall` pattern — with exactly one gather per send
//! and one scatter per receive and no intermediate packing.

use cartcomm_comm::{Comm, PooledBuf, RecvSpec, Tag};
use cartcomm_topo::CartTopology;
use cartcomm_types::{gather_append, scatter, FlatType};

use crate::error::{CartError, CartResult};
use crate::plan::{BlockRef, Loc, Plan};

/// Tag space reserved for Cartesian collective rounds. User point-to-point
/// traffic on the same communicator must avoid `CART_TAG_BASE ..
/// CART_TAG_BASE + rounds` (the library documents this reservation; the
/// `CartComm` wrapper runs on a duplicated context anyway, making collisions
/// impossible in practice).
pub const CART_TAG_BASE: Tag = 0x7A00_0000;

/// The placement of one data block in a user buffer: a byte displacement
/// plus a committed datatype.
#[derive(Debug, Clone)]
pub struct BlockLayout {
    /// Byte displacement the datatype is applied at.
    pub disp: i64,
    /// Committed layout of the block.
    pub ty: FlatType,
}

impl BlockLayout {
    /// A contiguous block of `len` bytes at byte offset `disp`.
    pub fn contiguous(disp: i64, len: usize) -> Self {
        BlockLayout {
            disp,
            ty: cartcomm_types::Datatype::bytes(len)
                .commit()
                .expect("contiguous byte types always commit"),
        }
    }

    /// Data bytes of the block.
    pub fn size(&self) -> usize {
        self.ty.size()
    }
}

/// Resolved buffer layouts for one collective invocation.
#[derive(Debug, Clone)]
pub struct ExecLayouts {
    /// Per-send-slot layouts: one per neighbor for alltoall, a single entry
    /// for allgather (the process's one contributed block).
    pub send: Vec<BlockLayout>,
    /// Per-receive-slot layouts, one per neighbor.
    pub recv: Vec<BlockLayout>,
    /// Bytes of each neighbor-indexed block (wire sizing; equals the
    /// send/recv block sizes, which must agree).
    pub block_bytes: Vec<usize>,
    /// Byte offset of every temp slot in the temp buffer.
    pub temp_offsets: Vec<usize>,
    /// Byte size of every temp slot.
    pub temp_sizes: Vec<usize>,
}

impl ExecLayouts {
    /// Total temp-buffer bytes the executor needs.
    pub fn temp_len(&self) -> usize {
        self.temp_offsets
            .last()
            .map_or(0, |&o| o + self.temp_sizes.last().copied().unwrap_or(0))
    }

    /// Build temp slot offsets from sizes (prefix sums).
    pub fn with_temp_sizes(mut self, sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0usize;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        self.temp_offsets = offsets;
        self.temp_sizes = sizes;
        self
    }

    pub(crate) fn gather_block(
        &self,
        br: BlockRef,
        sendbuf: &[u8],
        recvbuf: &[u8],
        temp: &[u8],
        wire: &mut Vec<u8>,
    ) -> CartResult<()> {
        match br.loc {
            Loc::Send => {
                let l = &self.send[br.slot];
                gather_append(sendbuf, l.disp, &l.ty, wire)?;
            }
            Loc::Recv => {
                let l = &self.recv[br.slot];
                gather_append(recvbuf, l.disp, &l.ty, wire)?;
            }
            Loc::Temp => {
                let off = self.temp_offsets[br.slot];
                wire.extend_from_slice(&temp[off..off + self.temp_sizes[br.slot]]);
            }
        }
        Ok(())
    }

    pub(crate) fn scatter_block(
        &self,
        br: BlockRef,
        bytes: &[u8],
        recvbuf: &mut [u8],
        temp: &mut [u8],
    ) -> CartResult<()> {
        match br.loc {
            Loc::Send => unreachable!("plans never write the send buffer"),
            Loc::Recv => {
                let l = &self.recv[br.slot];
                scatter(bytes, recvbuf, l.disp, &l.ty)?;
            }
            Loc::Temp => {
                let off = self.temp_offsets[br.slot];
                temp[off..off + bytes.len()].copy_from_slice(bytes);
            }
        }
        Ok(())
    }

    /// The wire size of the block a [`BlockRef`] denotes, given its
    /// neighbor-index `block_id`.
    fn block_size(&self, block_id: usize) -> usize {
        self.block_bytes[block_id]
    }
}

/// Execute a schedule for the calling `rank`. `temp` must hold at least
/// [`ExecLayouts::temp_len`] bytes; `tag_base` distinguishes concurrent
/// collectives (rounds use `tag_base + round_index`, identical on all ranks
/// because plans are identical).
#[allow(clippy::too_many_arguments)]
pub fn execute_plan(
    comm: &Comm,
    topo: &CartTopology,
    plan: &Plan,
    lay: &ExecLayouts,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    temp: &mut [u8],
    tag_base: Tag,
) -> CartResult<()> {
    let rank = comm.rank();
    let mut round_idx: Tag = 0;
    // One pooled scratch buffer serves every local copy of the whole
    // execution (acquired lazily — plans without self blocks touch no
    // scratch at all — cleared between uses, never reallocated once grown).
    let mut copy_buf: Option<PooledBuf> = None;
    for phase in &plan.phases {
        // Local copies become valid at the start of their phase.
        for copy in &phase.copies {
            let buf = copy_buf.get_or_insert_with(|| comm.wire_buf(0));
            buf.clear();
            lay.gather_block(copy.from, sendbuf, recvbuf, temp, buf)?;
            lay.scatter_block(copy.to, buf, recvbuf, temp)?;
        }
        if phase.rounds.is_empty() {
            continue;
        }
        // Gather and post all sends of the phase, then complete all
        // receives (Listing 5's Irecv/Isend/Waitall with eager sends).
        // Wire buffers come from the rank's pool: after the first
        // iteration of a repeated collective the pool is warm and no round
        // allocates.
        let mut sends = Vec::with_capacity(phase.rounds.len());
        let mut specs = Vec::with_capacity(phase.rounds.len());
        for round in &phase.rounds {
            let target = topo
                .rank_of_offset(rank, &round.offset)?
                .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
            let neg: Vec<i64> = round.offset.iter().map(|&c| -c).collect();
            let source = topo
                .rank_of_offset(rank, &neg)?
                .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
            let total: usize = round.block_ids.iter().map(|&b| lay.block_size(b)).sum();
            let mut wire = comm.wire_buf(total);
            for (j, _) in round.block_ids.iter().enumerate() {
                lay.gather_block(round.sends[j], sendbuf, recvbuf, temp, &mut wire)?;
            }
            debug_assert_eq!(wire.len(), total, "gathered bytes match block sizes");
            let tag = tag_base + round_idx;
            round_idx += 1;
            sends.push((target, tag, wire));
            specs.push(RecvSpec::from_rank(source, tag));
        }
        let results = comm.exchange_pooled(sends, &specs)?;
        for (round, (wire, _status)) in phase.rounds.iter().zip(results) {
            let mut pos = 0usize;
            for (j, &b) in round.block_ids.iter().enumerate() {
                let n = lay.block_size(b);
                if pos + n > wire.len() {
                    return Err(CartError::BadBufferSize {
                        what: "incoming round message",
                        expected: pos + n,
                        actual: wire.len(),
                    });
                }
                lay.scatter_block(round.recvs[j], &wire[pos..pos + n], recvbuf, temp)?;
                pos += n;
            }
            if pos != wire.len() {
                return Err(CartError::BadBufferSize {
                    what: "incoming round message",
                    expected: pos,
                    actual: wire.len(),
                });
            }
        }
    }
    Ok(())
}

/// Like [`execute_plan`] but sending and receiving in the *same* buffer —
/// the natural mode for halo exchanges where the send slabs (interior) and
/// receive regions (halo) are disjoint parts of one tile. Safe even with
/// overlapping layouts because each phase gathers all outgoing bytes
/// before scattering any incoming ones.
#[allow(clippy::too_many_arguments)]
pub fn execute_plan_in_place(
    comm: &Comm,
    topo: &CartTopology,
    plan: &Plan,
    lay: &ExecLayouts,
    buf: &mut [u8],
    temp: &mut [u8],
    tag_base: Tag,
) -> CartResult<()> {
    let rank = comm.rank();
    let mut round_idx: Tag = 0;
    let mut copy_buf: Option<PooledBuf> = None;
    for phase in &plan.phases {
        for copy in &phase.copies {
            let cb = copy_buf.get_or_insert_with(|| comm.wire_buf(0));
            cb.clear();
            lay.gather_block(copy.from, buf, buf, temp, cb)?;
            lay.scatter_block(copy.to, cb, buf, temp)?;
        }
        if phase.rounds.is_empty() {
            continue;
        }
        let mut sends = Vec::with_capacity(phase.rounds.len());
        let mut specs = Vec::with_capacity(phase.rounds.len());
        for round in &phase.rounds {
            let target = topo
                .rank_of_offset(rank, &round.offset)?
                .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
            let neg: Vec<i64> = round.offset.iter().map(|&c| -c).collect();
            let source = topo
                .rank_of_offset(rank, &neg)?
                .ok_or_else(|| nonperiodic_dim(topo, &round.offset))?;
            let total: usize = round.block_ids.iter().map(|&b| lay.block_size(b)).sum();
            let mut wire = comm.wire_buf(total);
            for (j, _) in round.block_ids.iter().enumerate() {
                lay.gather_block(round.sends[j], buf, buf, temp, &mut wire)?;
            }
            let tag = tag_base + round_idx;
            round_idx += 1;
            sends.push((target, tag, wire));
            specs.push(RecvSpec::from_rank(source, tag));
        }
        let results = comm.exchange_pooled(sends, &specs)?;
        for (round, (wire, _status)) in phase.rounds.iter().zip(results) {
            let mut pos = 0usize;
            for (j, &b) in round.block_ids.iter().enumerate() {
                let n = lay.block_size(b);
                if pos + n > wire.len() {
                    return Err(CartError::BadBufferSize {
                        what: "incoming round message",
                        expected: pos + n,
                        actual: wire.len(),
                    });
                }
                lay.scatter_block(round.recvs[j], &wire[pos..pos + n], buf, temp)?;
                pos += n;
            }
            if pos != wire.len() {
                return Err(CartError::BadBufferSize {
                    what: "incoming round message",
                    expected: pos,
                    actual: wire.len(),
                });
            }
        }
    }
    Ok(())
}

fn nonperiodic_dim(topo: &CartTopology, offset: &[i64]) -> CartError {
    let dim = offset
        .iter()
        .enumerate()
        .find(|(k, &c)| c != 0 && !topo.periods()[*k])
        .map(|(k, _)| k)
        .unwrap_or(0);
    CartError::CombiningNeedsTorus { dim }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_layout_helper() {
        let l = BlockLayout::contiguous(16, 8);
        assert_eq!(l.disp, 16);
        assert_eq!(l.size(), 8);
    }

    #[test]
    fn temp_prefix_sums() {
        let lay = ExecLayouts {
            send: vec![],
            recv: vec![],
            block_bytes: vec![],
            temp_offsets: vec![],
            temp_sizes: vec![],
        }
        .with_temp_sizes(vec![4, 0, 12]);
        assert_eq!(lay.temp_offsets, vec![0, 4, 4]);
        assert_eq!(lay.temp_len(), 16);
        let empty = ExecLayouts {
            send: vec![],
            recv: vec![],
            block_bytes: vec![],
            temp_offsets: vec![],
            temp_sizes: vec![],
        }
        .with_temp_sizes(vec![]);
        assert_eq!(empty.temp_len(), 0);
    }
}
