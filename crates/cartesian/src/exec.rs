//! Zero-copy schedule execution (Listing 5).
//!
//! A [`Plan`] is rank-independent; executing it requires resolving every
//! [`BlockRef`] to concrete bytes. [`ExecLayouts`] carries the per-block
//! displacements and committed datatypes of the user's send and receive
//! buffers (built once per operation, or once per `_init` handle).
//!
//! Execution itself lives in [`crate::compile`]: layouts + plan compile
//! into a rank-resolved [`CompiledPlan`](crate::compile::CompiledPlan)
//! whose span programs move bytes with plain memcpys. [`execute_plan`] and
//! [`execute_plan_in_place`] are convenience wrappers that compile and run
//! in one shot; hot paths (persistent handles, the communicator's plan
//! cache) compile once and call
//! [`execute_compiled`](crate::compile::execute_compiled) repeatedly.

use cartcomm_comm::{Comm, Tag};
use cartcomm_topo::CartTopology;
use cartcomm_types::{gather_append, scatter, FlatType};

use crate::compile::{execute_compiled, execute_compiled_in_place, CompiledPlan, ExecScratch, Fnv};
use crate::error::CartResult;
use crate::plan::{BlockRef, Loc, Plan, PlanKind};

/// Tag space reserved for Cartesian collective rounds. User point-to-point
/// traffic on the same communicator must avoid `CART_TAG_BASE ..
/// CART_TAG_BASE + rounds` (the library documents this reservation; the
/// `CartComm` wrapper runs on a duplicated context anyway, making collisions
/// impossible in practice).
pub const CART_TAG_BASE: Tag = 0x7A00_0000;

/// The placement of one data block in a user buffer: a byte displacement
/// plus a committed datatype.
#[derive(Debug, Clone)]
pub struct BlockLayout {
    /// Byte displacement the datatype is applied at.
    pub disp: i64,
    /// Committed layout of the block.
    pub ty: FlatType,
}

impl BlockLayout {
    /// A contiguous block of `len` bytes at byte offset `disp`.
    pub fn contiguous(disp: i64, len: usize) -> Self {
        BlockLayout {
            disp,
            ty: cartcomm_types::Datatype::bytes(len)
                .commit()
                .expect("contiguous byte types always commit"),
        }
    }

    /// Data bytes of the block.
    pub fn size(&self) -> usize {
        self.ty.size()
    }
}

/// Resolved buffer layouts for one collective invocation.
#[derive(Debug, Clone)]
pub struct ExecLayouts {
    /// Per-send-slot layouts: one per neighbor for alltoall, a single entry
    /// for allgather (the process's one contributed block).
    pub send: Vec<BlockLayout>,
    /// Per-receive-slot layouts, one per neighbor.
    pub recv: Vec<BlockLayout>,
    /// Bytes of each neighbor-indexed block (wire sizing; equals the
    /// send/recv block sizes, which must agree).
    pub block_bytes: Vec<usize>,
    /// Byte offset of every temp slot in the temp buffer.
    pub temp_offsets: Vec<usize>,
    /// Byte size of every temp slot.
    pub temp_sizes: Vec<usize>,
}

impl ExecLayouts {
    /// Total temp-buffer bytes the executor needs.
    pub fn temp_len(&self) -> usize {
        self.temp_offsets
            .last()
            .map_or(0, |&o| o + self.temp_sizes.last().copied().unwrap_or(0))
    }

    /// Build temp slot offsets from sizes (prefix sums).
    pub fn with_temp_sizes(mut self, sizes: Vec<usize>) -> Self {
        let mut offsets = Vec::with_capacity(sizes.len());
        let mut acc = 0usize;
        for &s in &sizes {
            offsets.push(acc);
            acc += s;
        }
        self.temp_offsets = offsets;
        self.temp_sizes = sizes;
        self
    }

    pub(crate) fn gather_block(
        &self,
        br: BlockRef,
        sendbuf: &[u8],
        recvbuf: &[u8],
        temp: &[u8],
        wire: &mut Vec<u8>,
    ) -> CartResult<()> {
        match br.loc {
            Loc::Send => {
                let l = &self.send[br.slot];
                gather_append(sendbuf, l.disp, &l.ty, wire)?;
            }
            Loc::Recv => {
                let l = &self.recv[br.slot];
                gather_append(recvbuf, l.disp, &l.ty, wire)?;
            }
            Loc::Temp => {
                let off = self.temp_offsets[br.slot];
                wire.extend_from_slice(&temp[off..off + self.temp_sizes[br.slot]]);
            }
        }
        Ok(())
    }

    pub(crate) fn scatter_block(
        &self,
        br: BlockRef,
        bytes: &[u8],
        recvbuf: &mut [u8],
        temp: &mut [u8],
    ) -> CartResult<()> {
        match br.loc {
            Loc::Send => unreachable!("plans never write the send buffer"),
            Loc::Recv => {
                let l = &self.recv[br.slot];
                scatter(bytes, recvbuf, l.disp, &l.ty)?;
            }
            Loc::Temp => {
                let off = self.temp_offsets[br.slot];
                temp[off..off + bytes.len()].copy_from_slice(bytes);
            }
        }
        Ok(())
    }

    /// A fingerprint of the layouts (and intended plan kind) for the
    /// communicator's compiled-plan cache. Two independently seeded 64-bit
    /// FNV-1a hashes over the structural content — displacements, span
    /// lists, block and temp sizing — make accidental collisions
    /// negligible. The walk is one linear pass per seed over flat arrays
    /// (each block's committed span list is a contiguous `&[Span]`), with
    /// no per-field hasher dispatch — cache-linear like the span slab and
    /// tree arena it keys.
    pub fn fingerprint(&self, kind: PlanKind) -> u128 {
        let lo = self.hash_with(kind, 0x9E37_79B9_7F4A_7C15);
        let hi = self.hash_with(kind, 0xC2B2_AE3D_27D4_EB4F);
        ((hi as u128) << 64) | lo as u128
    }

    fn hash_with(&self, kind: PlanKind, seed: u64) -> u64 {
        let mut h = Fnv::new();
        h.u64(seed);
        h.u64(match kind {
            PlanKind::Alltoall => 1,
            PlanKind::Allgather => 2,
            PlanKind::ReduceScatter => 3,
            PlanKind::Allreduce => 4,
        });
        for (group, blocks) in [(0u64, &self.send), (1u64, &self.recv)] {
            h.u64(group);
            h.u64(blocks.len() as u64);
            for b in blocks {
                h.u64(b.disp as u64);
                for s in b.ty.spans() {
                    h.u64(s.offset as u64);
                    h.u64(s.len as u64);
                }
                h.u64(u64::MAX); // span-list terminator
            }
        }
        h.u64(self.block_bytes.len() as u64);
        for &b in &self.block_bytes {
            h.u64(b as u64);
        }
        h.u64(self.temp_sizes.len() as u64);
        for &ts in &self.temp_sizes {
            h.u64(ts as u64);
        }
        h.finish()
    }
}

/// Execute a schedule for the calling `rank` by compiling it and running
/// the compiled program once. `lay` must carry temp-slot sizing; `tag_base`
/// distinguishes concurrent collectives (rounds use `tag_base +
/// round_index`, identical on all ranks because plans are identical).
///
/// One-shot convenience: repeated executions should compile once (a
/// persistent handle or [`crate::CartComm::compiled_plan`]) and call
/// [`execute_compiled`] directly.
pub fn execute_plan(
    comm: &Comm,
    topo: &CartTopology,
    plan: &Plan,
    lay: &ExecLayouts,
    sendbuf: &[u8],
    recvbuf: &mut [u8],
    tag_base: Tag,
) -> CartResult<()> {
    let cp = CompiledPlan::compile(topo, comm.rank(), plan, lay, tag_base)?;
    let mut scratch = ExecScratch::for_plan(&cp);
    execute_compiled(comm, &cp, sendbuf, recvbuf, &mut scratch)
}

/// Like [`execute_plan`] but sending and receiving in the *same* buffer —
/// the natural mode for halo exchanges where the send slabs (interior) and
/// receive regions (halo) are disjoint parts of one tile. Safe even with
/// overlapping layouts because copies and phases gather all outgoing bytes
/// before scattering any incoming ones (the compiled core shares one loop
/// with the buffered path, so the two modes cannot drift).
pub fn execute_plan_in_place(
    comm: &Comm,
    topo: &CartTopology,
    plan: &Plan,
    lay: &ExecLayouts,
    buf: &mut [u8],
    tag_base: Tag,
) -> CartResult<()> {
    let cp = CompiledPlan::compile(topo, comm.rank(), plan, lay, tag_base)?;
    let mut scratch = ExecScratch::for_plan(&cp);
    execute_compiled_in_place(comm, &cp, buf, &mut scratch)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_layout_helper() {
        let l = BlockLayout::contiguous(16, 8);
        assert_eq!(l.disp, 16);
        assert_eq!(l.size(), 8);
    }

    #[test]
    fn temp_prefix_sums() {
        let lay = ExecLayouts {
            send: vec![],
            recv: vec![],
            block_bytes: vec![],
            temp_offsets: vec![],
            temp_sizes: vec![],
        }
        .with_temp_sizes(vec![4, 0, 12]);
        assert_eq!(lay.temp_offsets, vec![0, 4, 4]);
        assert_eq!(lay.temp_len(), 16);
        let empty = ExecLayouts {
            send: vec![],
            recv: vec![],
            block_bytes: vec![],
            temp_offsets: vec![],
            temp_sizes: vec![],
        }
        .with_temp_sizes(vec![]);
        assert_eq!(empty.temp_len(), 0);
    }
}
