//! The communication-schedule representation shared by the trivial and
//! message-combining algorithms.
//!
//! A [`Plan`] is rank-independent: it is expressed entirely in *relative*
//! offset vectors and block indices, because every process in a Cartesian
//! collective executes the exact same sequence of send-receive rounds (§3).
//! The executor instantiates it for a concrete rank by resolving each
//! round's offset to `(send rank, receive rank)` with the relative shift of
//! Listing 2, and each [`BlockRef`] to a `(buffer, displacement, datatype)`
//! triple. That instantiation is performed once by
//! [`crate::compile::CompiledPlan`] and the result executed repeatedly.

use cartcomm_topo::Offset;

/// Which buffer a block reference addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Loc {
    /// The user's send buffer (block indexed by neighbor for alltoall; the
    /// single contributed block for allgather).
    Send,
    /// The user's receive buffer, block indexed by neighbor.
    Recv,
    /// The internal temporary buffer, slot indexed by the plan.
    Temp,
}

/// A reference to one data block in one of the three buffers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BlockRef {
    /// Which buffer.
    pub loc: Loc,
    /// Slot within the buffer: the neighbor index for [`Loc::Send`] /
    /// [`Loc::Recv`] (alltoall), the receive-block index for [`Loc::Recv`]
    /// (allgather), or the temp-slot id for [`Loc::Temp`].
    pub slot: usize,
}

impl BlockRef {
    /// Shorthand constructor.
    pub const fn new(loc: Loc, slot: usize) -> Self {
        BlockRef { loc, slot }
    }
}

/// A local block movement that needs no communication (the "possibly one
/// non-communication phase" of Proposition 3.1: self-blocks, and
/// zero-coordinate tree edges of the allgather schedule).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalCopy {
    /// Source block.
    pub from: BlockRef,
    /// Destination block.
    pub to: BlockRef,
}

/// One send-receive round: all blocks with the same k-th coordinate travel
/// together to the relative process `offset` (and arrive from `-offset`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanRound {
    /// The relative offset vector of this round (non-zero in exactly one
    /// dimension: the paper's `N[i']ₖ⁰`).
    pub offset: Offset,
    /// Blocks gathered into the outgoing message, in wire order.
    pub sends: Vec<BlockRef>,
    /// Blocks the incoming message scatters into, in wire order.
    pub recvs: Vec<BlockRef>,
    /// The neighbor indices whose data volume travels in this round (for
    /// sizing the wire; `sends[i]` carries the bytes of block
    /// `block_ids[i]`).
    pub block_ids: Vec<usize>,
}

/// One communication phase (one dimension): its rounds are independent and
/// may execute concurrently (non-blocking, Listing 5), preceded by any
/// local copies that become possible at this phase.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PlanPhase {
    /// Local copies executed at the start of the phase.
    pub copies: Vec<LocalCopy>,
    /// The phase's communication rounds.
    pub rounds: Vec<PlanRound>,
}

/// Which collective a plan implements (affects how block sizes resolve).
/// `Hash` feeds the communicator's compiled-plan cache fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlanKind {
    /// Personalized blocks: send slot `i` and receive slot `i` hold block
    /// `i`'s bytes; temp slot `i` matches block `i`'s size.
    Alltoall,
    /// One replicated block: every wire block has the size of the single
    /// send block; temp slots are forwarding nodes of the routing tree.
    Allgather,
    /// Personalized contributions funnel inward along the reversed
    /// allgather tree: send slot `i` holds the block destined for
    /// neighbor `i`'s result, the single receive slot accumulates the
    /// combined arrivals. All blocks share one uniform size; the first
    /// write to a slot assigns, later writes combine with the reducer
    /// supplied at execution time.
    ReduceScatter,
    /// Reduce-scatter followed by the local extraction of the fully
    /// combined own block: one send block replicated toward every source
    /// neighbor, one receive slot holding the elementwise reduction over
    /// the neighborhood. Same uniform sizing and first-write-assigns
    /// semantics as [`PlanKind::ReduceScatter`].
    Allreduce,
}

impl PlanKind {
    /// Whether writes in this plan combine with a reducer (first write
    /// to a slot assigns, subsequent writes reduce).
    pub const fn is_reduction(self) -> bool {
        matches!(self, PlanKind::ReduceScatter | PlanKind::Allreduce)
    }
}

/// A complete, rank-independent communication schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Plan {
    /// Alltoall or allgather semantics.
    pub kind: PlanKind,
    /// The number of dimensions `d` of the underlying topology.
    pub ndims: usize,
    /// The number of neighbors `t`.
    pub t: usize,
    /// The communication phases in execution order.
    pub phases: Vec<PlanPhase>,
    /// Number of temporary-buffer slots the executor must provide.
    pub temp_slots: usize,
    /// Total communication rounds `C` (Props. 3.2/3.3).
    pub rounds: usize,
    /// Per-process communication volume in blocks `V` (Props. 3.2/3.3):
    /// the number of block-sends the schedule performs.
    pub volume_blocks: usize,
}

impl Plan {
    /// Recompute `rounds` from the phases (used as an internal invariant
    /// check; equals the stored value for well-formed plans).
    pub fn count_rounds(&self) -> usize {
        self.phases.iter().map(|p| p.rounds.len()).sum()
    }

    /// Recompute the block volume from the phases.
    pub fn count_volume(&self) -> usize {
        self.phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.sends.len())
            .sum()
    }

    /// All local copies across phases.
    pub fn all_copies(&self) -> impl Iterator<Item = &LocalCopy> {
        self.phases.iter().flat_map(|p| &p.copies)
    }

    /// Internal consistency checks used by tests and debug builds:
    /// * every round's `sends`, `recvs`, `block_ids` have equal length,
    /// * every round offset is non-zero in exactly one dimension,
    /// * stored counters match the recomputed ones,
    /// * temp slot ids are in range.
    pub fn validate(&self) -> Result<(), String> {
        for (pi, phase) in self.phases.iter().enumerate() {
            for (ri, round) in phase.rounds.iter().enumerate() {
                if round.sends.len() != round.recvs.len()
                    || round.sends.len() != round.block_ids.len()
                {
                    return Err(format!(
                        "phase {pi} round {ri}: mismatched send/recv/block lists"
                    ));
                }
                if round.sends.is_empty() {
                    return Err(format!("phase {pi} round {ri}: empty round"));
                }
                let nz = round.offset.iter().filter(|&&c| c != 0).count();
                if nz != 1 {
                    return Err(format!(
                        "phase {pi} round {ri}: offset {:?} must be non-zero in exactly one dimension",
                        round.offset
                    ));
                }
                for br in round.sends.iter().chain(round.recvs.iter()) {
                    if br.loc == Loc::Temp && br.slot >= self.temp_slots {
                        return Err(format!(
                            "phase {pi} round {ri}: temp slot {} out of range {}",
                            br.slot, self.temp_slots
                        ));
                    }
                }
            }
            for c in &phase.copies {
                for br in [c.from, c.to] {
                    if br.loc == Loc::Temp && br.slot >= self.temp_slots {
                        return Err(format!("phase {pi}: copy temp slot out of range"));
                    }
                }
            }
        }
        if self.count_rounds() != self.rounds {
            return Err(format!(
                "stored rounds {} != actual {}",
                self.rounds,
                self.count_rounds()
            ));
        }
        if self.count_volume() != self.volume_blocks {
            return Err(format!(
                "stored volume {} != actual {}",
                self.volume_blocks,
                self.count_volume()
            ));
        }
        Ok(())
    }

    /// Bytes on the wire per round, given per-neighbor block sizes
    /// (alltoall) or the uniform block size replicated per wire slot
    /// (allgather). Used by the simulator.
    pub fn round_bytes(&self, block_bytes: &dyn Fn(usize) -> usize) -> Vec<usize> {
        self.phases
            .iter()
            .flat_map(|p| &p.rounds)
            .map(|r| r.block_ids.iter().map(|&b| block_bytes(b)).sum())
            .collect()
    }
}

impl Plan {
    /// Render the schedule's dataflow as a Graphviz digraph: one node per
    /// buffer slot touched, one edge per block movement (labeled with the
    /// phase and relative offset), local copies dashed. Pipe into `dot
    /// -Tsvg` to visualize routing trees and the alltoall's buffer
    /// alternation.
    pub fn to_dot(&self) -> String {
        use std::fmt::Write;
        let mut out = String::from("digraph schedule {\n  rankdir=LR;\n");
        let name = |br: &BlockRef| -> String {
            match br.loc {
                Loc::Send => format!("send_{}", br.slot),
                Loc::Recv => format!("recv_{}", br.slot),
                Loc::Temp => format!("temp_{}", br.slot),
            }
        };
        let mut declared = std::collections::BTreeSet::new();
        let mut declare = |out: &mut String, br: &BlockRef| {
            let n = name(br);
            if declared.insert(n.clone()) {
                let (shape, color) = match br.loc {
                    Loc::Send => ("box", "lightblue"),
                    Loc::Recv => ("box", "lightgreen"),
                    Loc::Temp => ("ellipse", "lightgray"),
                };
                let _ = writeln!(
                    out,
                    "  {n} [shape={shape}, style=filled, fillcolor={color}];"
                );
            }
        };
        for (k, phase) in self.phases.iter().enumerate() {
            for copy in &phase.copies {
                declare(&mut out, &copy.from);
                declare(&mut out, &copy.to);
                let _ = writeln!(
                    out,
                    "  {} -> {} [style=dashed, label=\"p{k} copy\"];",
                    name(&copy.from),
                    name(&copy.to)
                );
            }
            for round in &phase.rounds {
                for j in 0..round.block_ids.len() {
                    declare(&mut out, &round.sends[j]);
                    declare(&mut out, &round.recvs[j]);
                    let _ = writeln!(
                        out,
                        "  {} -> {} [label=\"p{k} {:?} b{}\"];",
                        name(&round.sends[j]),
                        name(&round.recvs[j]),
                        round.offset,
                        round.block_ids[j]
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

impl std::fmt::Display for Plan {
    /// Human-readable schedule dump: one line per round with the relative
    /// offset, partner directions, and the blocks on the wire — the
    /// "arrays of datatypes and ranks" view of §3.4.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:?} schedule: d={}, t={}, C={} rounds, V={} blocks, {} temp slots",
            self.kind, self.ndims, self.t, self.rounds, self.volume_blocks, self.temp_slots
        )?;
        for (k, phase) in self.phases.iter().enumerate() {
            writeln!(f, "phase {k}:")?;
            for copy in &phase.copies {
                writeln!(
                    f,
                    "  copy  {:?}[{}] -> {:?}[{}]",
                    copy.from.loc, copy.from.slot, copy.to.loc, copy.to.slot
                )?;
            }
            for round in &phase.rounds {
                write!(f, "  round offset {:?}:", round.offset)?;
                for (j, &b) in round.block_ids.iter().enumerate() {
                    write!(
                        f,
                        " [{}:{:?}[{}]->{:?}[{}]]",
                        b,
                        round.sends[j].loc,
                        round.sends[j].slot,
                        round.recvs[j].loc,
                        round.recvs[j].slot
                    )?;
                }
                writeln!(f)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_plan() -> Plan {
        Plan {
            kind: PlanKind::Alltoall,
            ndims: 2,
            t: 2,
            phases: vec![PlanPhase {
                copies: vec![],
                rounds: vec![PlanRound {
                    offset: vec![1, 0],
                    sends: vec![BlockRef::new(Loc::Send, 0)],
                    recvs: vec![BlockRef::new(Loc::Recv, 0)],
                    block_ids: vec![0],
                }],
            }],
            temp_slots: 0,
            rounds: 1,
            volume_blocks: 1,
        }
    }

    #[test]
    fn valid_plan_passes() {
        assert!(tiny_plan().validate().is_ok());
    }

    #[test]
    fn counter_mismatch_detected() {
        let mut p = tiny_plan();
        p.rounds = 7;
        assert!(p.validate().unwrap_err().contains("rounds"));
        let mut p = tiny_plan();
        p.volume_blocks = 9;
        assert!(p.validate().unwrap_err().contains("volume"));
    }

    #[test]
    fn multi_axis_offset_rejected() {
        let mut p = tiny_plan();
        p.phases[0].rounds[0].offset = vec![1, 1];
        assert!(p.validate().is_err());
        p.phases[0].rounds[0].offset = vec![0, 0];
        assert!(p.validate().is_err());
    }

    #[test]
    fn temp_slot_bounds_checked() {
        let mut p = tiny_plan();
        p.phases[0].rounds[0].sends = vec![BlockRef::new(Loc::Temp, 3)];
        assert!(p.validate().is_err());
    }

    #[test]
    fn mismatched_lists_rejected() {
        let mut p = tiny_plan();
        p.phases[0].rounds[0].block_ids = vec![0, 1];
        assert!(p.validate().is_err());
    }

    #[test]
    fn round_bytes_sums_block_sizes() {
        let p = tiny_plan();
        let sizes = p.round_bytes(&|_b| 40);
        assert_eq!(sizes, vec![40]);
    }

    #[test]
    fn display_shows_rounds_and_counters() {
        let p = tiny_plan();
        let s = p.to_string();
        assert!(s.contains("C=1 rounds"));
        assert!(s.contains("V=1 blocks"));
        assert!(s.contains("offset [1, 0]"));
    }

    #[test]
    fn dot_export_is_wellformed() {
        let mut p = tiny_plan();
        p.phases[0].copies.push(LocalCopy {
            from: BlockRef::new(Loc::Send, 1),
            to: BlockRef::new(Loc::Recv, 1),
        });
        let dot = p.to_dot();
        assert!(dot.starts_with("digraph schedule {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("send_0 -> recv_0"));
        assert!(dot.contains("style=dashed"));
        assert!(dot.contains("fillcolor=lightblue"));
        // nodes declared once even if reused
        assert_eq!(dot.matches("send_1 [").count(), 1);
    }
}
