//! Round/volume accounting and the latency/bandwidth cut-off analysis
//! (§3.1, §3.2 and Table 1).

use cartcomm_topo::RelNeighborhood;

use crate::schedule::{allgather_plan, alltoall_plan};

/// The analytic quantities of one neighborhood, as reported in Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct CostSummary {
    /// Number of neighbors, `t` (= trivial algorithm rounds and volume).
    pub t: usize,
    /// Message-combining rounds, `C = Σ_k C_k`.
    pub rounds: usize,
    /// Message-combining alltoall volume in blocks, `V = Σ_i z_i`.
    pub alltoall_volume: usize,
    /// Message-combining allgather volume (edges of the routing tree built
    /// in increasing `C_k` order).
    pub allgather_volume: usize,
    /// Message-combining reduction volume: the reversed reduce tree runs
    /// the allgather tree of the *negated* neighborhood backwards, so its
    /// volume is that tree's edge count (equals `allgather_volume` for
    /// symmetric neighborhoods).
    pub reduce_volume: usize,
    /// The cut-off ratio `(t−C)/(V−t)` for the alltoall: combining wins for
    /// block sizes `m < (α/β)·ratio`. `None` when `V == t` (combining never
    /// moves extra data, so it wins whenever it saves rounds).
    pub cutoff: Option<f64>,
}

impl CostSummary {
    /// Compute all Table 1 quantities for a neighborhood.
    pub fn of(nb: &RelNeighborhood) -> CostSummary {
        let t = nb.len();
        let rounds = nb.combining_rounds();
        let alltoall_volume = nb.alltoall_volume();
        let allgather_volume = allgather_plan(nb).volume_blocks;
        let reduce_volume = allgather_plan(&nb.negated()).volume_blocks;
        CostSummary {
            t,
            rounds,
            alltoall_volume,
            allgather_volume,
            reduce_volume,
            cutoff: cutoff_ratio(t, rounds, alltoall_volume),
        }
    }

    /// Predicted trivial alltoall time under the linear cost model:
    /// `t·(α + β·m)` with `m` in bytes.
    pub fn trivial_time(&self, alpha: f64, beta: f64, m_bytes: usize) -> f64 {
        self.t as f64 * (alpha + beta * m_bytes as f64)
    }

    /// Predicted message-combining alltoall time: `C·α + β·V·m`.
    pub fn combining_alltoall_time(&self, alpha: f64, beta: f64, m_bytes: usize) -> f64 {
        self.rounds as f64 * alpha + beta * (self.alltoall_volume * m_bytes) as f64
    }

    /// Predicted message-combining allgather time: `C·α + β·V_ag·m`.
    pub fn combining_allgather_time(&self, alpha: f64, beta: f64, m_bytes: usize) -> f64 {
        self.rounds as f64 * alpha + beta * (self.allgather_volume * m_bytes) as f64
    }

    /// Predicted message-combining reduction time (`Cart_reduce_scatter`
    /// or `Cart_allreduce`): `C·α + β·V_red·m`.
    pub fn combining_reduce_time(&self, alpha: f64, beta: f64, m_bytes: usize) -> f64 {
        self.rounds as f64 * alpha + beta * (self.reduce_volume * m_bytes) as f64
    }

    /// The block size in bytes below which combining alltoall beats trivial
    /// for a machine with latency `alpha` (seconds) and inverse bandwidth
    /// `beta` (seconds/byte).
    pub fn cutoff_bytes(&self, alpha: f64, beta: f64) -> Option<f64> {
        self.cutoff.map(|r| (alpha / beta) * r)
    }
}

/// The paper's cut-off ratio `(t−C)/(V−t)` (§3.1): message-combining
/// alltoall is preferable when `m < (α/β)·ratio`. Returns `None` when
/// `V ≤ t` (no volume inflation — combining is then never worse in volume).
pub fn cutoff_ratio(t: usize, rounds: usize, volume: usize) -> Option<f64> {
    if volume > t {
        Some((t as f64 - rounds as f64) / (volume as f64 - t as f64))
    } else {
        None
    }
}

/// Closed-form Table 1 quantities for the `(d, n)` stencil families
/// (offsets `{f, …, f+n−1}` per dimension, zero vector excluded): useful as
/// an independent check of the schedule computation.
pub mod closed_form {
    /// `t = n^d − 1`.
    pub fn t(d: u32, n: u64) -> u64 {
        n.pow(d) - 1
    }

    /// `C = d (n − 1)` (assuming `0 ∈ {f..f+n−1}`, as with `f = −1`).
    pub fn rounds(d: u64, n: u64) -> u64 {
        d * (n - 1)
    }

    /// Alltoall volume `V = Σ_j j·C(d,j)·(n−1)^j` (§3.1's example).
    pub fn alltoall_volume(d: u64, n: u64) -> u64 {
        (1..=d)
            .map(|j| j * binom(d, j) * (n - 1).pow(j as u32))
            .sum()
    }

    /// Allgather volume `V = Σ_j C(d,j)·(n−1)^j = n^d − 1` (§3.2's example).
    pub fn allgather_volume(d: u32, n: u64) -> u64 {
        n.pow(d) - 1
    }

    fn binom(n: u64, k: u64) -> u64 {
        if k > n {
            return 0;
        }
        let k = k.min(n - k);
        let mut num = 1u64;
        let mut den = 1u64;
        for i in 0..k {
            num *= n - i;
            den *= i + 1;
        }
        num / den
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn binomials() {
            assert_eq!(binom(5, 0), 1);
            assert_eq!(binom(5, 2), 10);
            assert_eq!(binom(5, 5), 1);
            assert_eq!(binom(3, 4), 0);
        }

        #[test]
        fn moore_identities() {
            // Σ_j C(d,j)(n−1)^j = n^d − 1 (binomial theorem)
            for d in 1..=5u32 {
                for n in 2..=5u64 {
                    let sum: u64 = (1..=d as u64)
                        .map(|j| binom(d as u64, j) * (n - 1).pow(j as u32))
                        .sum();
                    assert_eq!(sum, n.pow(d) - 1);
                }
            }
        }
    }
}

/// Verify that the trivial algorithm's volume is exactly `t` (stated in
/// §3.1) — provided for symmetry with the combining summaries.
pub fn trivial_volume(nb: &RelNeighborhood) -> usize {
    nb.len()
}

/// Extract per-round wire byte counts from the combining plans, for the
/// simulator: `(alltoall rounds, allgather rounds)` with uniform block size
/// `m_bytes`.
pub fn round_bytes_uniform(nb: &RelNeighborhood, m_bytes: usize) -> (Vec<usize>, Vec<usize>) {
    let a2a = alltoall_plan(nb);
    let ag = allgather_plan(nb);
    (a2a.round_bytes(&|_| m_bytes), ag.round_bytes(&|_| m_bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_closed_forms_match_schedules() {
        for d in 2..=5usize {
            for n in 3..=5usize {
                let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
                let cs = CostSummary::of(&nb);
                assert_eq!(cs.t as u64, closed_form::t(d as u32, n as u64));
                assert_eq!(cs.rounds as u64, closed_form::rounds(d as u64, n as u64));
                assert_eq!(
                    cs.alltoall_volume as u64,
                    closed_form::alltoall_volume(d as u64, n as u64)
                );
                assert_eq!(
                    cs.allgather_volume as u64,
                    closed_form::allgather_volume(d as u32, n as u64),
                    "allgather volume = t for Moore-style stencils (d={d}, n={n})"
                );
            }
        }
    }

    #[test]
    fn table1_cutoff_ratios() {
        // The cells that are unambiguous in the published table.
        let cases = [(4usize, 5usize, 0.443), (5, 4, 0.358), (5, 5, 0.331)];
        for (d, n, expected) in cases {
            let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
            let cs = CostSummary::of(&nb);
            let r = cs.cutoff.unwrap();
            assert!(
                (r - expected).abs() < 5e-3,
                "d={d} n={n}: ratio {r:.3} vs published {expected}"
            );
        }
    }

    #[test]
    fn cutoff_none_when_no_volume_inflation() {
        assert_eq!(cutoff_ratio(8, 4, 8), None);
        assert!(cutoff_ratio(8, 4, 12).is_some());
        assert!((cutoff_ratio(8, 4, 12).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn model_crossover_behaviour() {
        let nb = RelNeighborhood::stencil_family(3, 5, -1).unwrap();
        let cs = CostSummary::of(&nb);
        let (alpha, beta) = (2e-6, 0.08e-9);
        // Small blocks: combining wins.
        assert!(cs.combining_alltoall_time(alpha, beta, 4) < cs.trivial_time(alpha, beta, 4));
        // Far past the cut-off: trivial wins.
        let huge = (cs.cutoff_bytes(alpha, beta).unwrap() * 10.0) as usize;
        assert!(cs.combining_alltoall_time(alpha, beta, huge) > cs.trivial_time(alpha, beta, huge));
        // Exactly at the cut-off the two are equal (within fp error).
        let at = cs.cutoff_bytes(alpha, beta).unwrap();
        let m = at as usize;
        let diff =
            (cs.combining_alltoall_time(alpha, beta, m) - cs.trivial_time(alpha, beta, m)).abs();
        assert!(diff < alpha, "near-equality at the cut-off");
    }

    #[test]
    fn allgather_combining_always_wins_for_moore() {
        // §3.2: allgather combining volume equals trivial volume, rounds are
        // exponentially fewer => combining never loses in the model.
        let nb = RelNeighborhood::stencil_family(4, 3, -1).unwrap();
        let cs = CostSummary::of(&nb);
        assert_eq!(cs.allgather_volume, cs.t);
        for m in [1usize, 100, 10_000, 1_000_000] {
            assert!(
                cs.combining_allgather_time(2e-6, 0.08e-9, m) <= cs.trivial_time(2e-6, 0.08e-9, m)
            );
        }
    }

    #[test]
    fn reduce_volume_mirrors_allgather() {
        // Symmetric neighborhoods: negation is a permutation, so the
        // reversed reduce tree has exactly the allgather volume.
        for d in 2..=3usize {
            let nb = RelNeighborhood::moore(d, 1).unwrap();
            let cs = CostSummary::of(&nb);
            assert_eq!(cs.reduce_volume, cs.allgather_volume);
            assert_eq!(cs.reduce_volume, cs.t, "Moore reduce volume = t");
        }
        // Asymmetric: still the negated neighborhood's tree edges.
        let nb = RelNeighborhood::stencil_family(2, 3, -2).unwrap();
        let cs = CostSummary::of(&nb);
        assert_eq!(
            cs.reduce_volume,
            allgather_plan(&nb.negated()).volume_blocks
        );
        assert!(cs.combining_reduce_time(2e-6, 0.08e-9, 8) > 0.0);
    }

    #[test]
    fn round_bytes_totals_match_volume() {
        let nb = RelNeighborhood::stencil_family(3, 3, -1).unwrap();
        let (a2a, ag) = round_bytes_uniform(&nb, 10);
        let cs = CostSummary::of(&nb);
        assert_eq!(a2a.iter().sum::<usize>(), cs.alltoall_volume * 10);
        assert_eq!(ag.iter().sum::<usize>(), cs.allgather_volume * 10);
        assert_eq!(a2a.len(), cs.rounds);
        assert_eq!(ag.len(), cs.rounds);
        assert_eq!(trivial_volume(&nb), cs.t);
    }
}
