//! Property-based byte-equality tests for the packed execution pipeline.
//!
//! The compiled executor now moves every wire byte through the wide-copy
//! pack kernels (batched gathers/scatters over `SpanBatch` runs). These
//! tests drive whole random universes — d ∈ 1..=3, random per-block
//! payload sizes in *bytes* (odd sizes included, so spans land at odd
//! offsets and misaligned tails inside the wire) — and assert the
//! combining schedule delivers bytes identical to the trivial
//! direct-exchange reference. Building with `--features scalar-pack`
//! forces the same tests through the scalar reference kernels, so the
//! suite doubles as the kernel-vs-scalar equivalence check at pipeline
//! level.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    periods: Vec<bool>,
    offsets: Vec<Vec<i64>>,
    /// Per-block payload in bytes — deliberately allowed to be odd, so
    /// compiled spans start and end at arbitrary alignments.
    m_bytes: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..=3)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(2usize..4, d..=d),
                proptest::collection::vec(any::<bool>(), d..=d),
                proptest::collection::vec(proptest::collection::vec(-2i64..3, d..=d), 1..5),
                prop_oneof![1usize..=9, 63usize..=65, 127usize..=129],
            )
        })
        .prop_map(|(dims, periods, offsets, m_bytes)| Case {
            dims,
            periods,
            offsets,
            m_bytes,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 16,
        max_shrink_iters: 48,
        .. ProptestConfig::default()
    })]

    /// Message-combining allgather over u8 payloads of arbitrary (odd)
    /// byte sizes is byte-identical to the trivial reference exchange.
    #[test]
    fn packed_allgather_is_byte_identical(case in arb_case()) {
        let Case { dims, periods, offsets, m_bytes } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(move |comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<u8> = (0..m_bytes).map(|i| (rank * 31 + i * 7 + 1) as u8).collect();
            let mut a = vec![0u8; t * m_bytes];
            let mut b = vec![0u8; t * m_bytes];
            cart.allgather(&send, &mut a, Algo::Combining).unwrap();
            cart.allgather(&send, &mut b, Algo::Trivial).unwrap();
            (a, b)
        });
        for (rank, (a, b)) in results.into_iter().enumerate() {
            prop_assert_eq!(a, b, "allgather divergence at rank {}", rank);
        }
    }

    /// Message-combining alltoall over u8 payloads of arbitrary (odd)
    /// byte sizes is byte-identical to the trivial reference exchange.
    #[test]
    fn packed_alltoall_is_byte_identical(case in arb_case()) {
        let Case { dims, periods, offsets, m_bytes } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(move |comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<u8> = (0..t * m_bytes).map(|i| (rank * 13 + i * 5 + 2) as u8).collect();
            let mut a = vec![0u8; t * m_bytes];
            let mut b = vec![0u8; t * m_bytes];
            cart.alltoall(&send, &mut a, Algo::Combining).unwrap();
            cart.alltoall(&send, &mut b, Algo::Trivial).unwrap();
            (a, b)
        });
        for (rank, (a, b)) in results.into_iter().enumerate() {
            prop_assert_eq!(a, b, "alltoall divergence at rank {}", rank);
        }
    }
}
