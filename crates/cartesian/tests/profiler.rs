//! Profiler pinning tests: deterministic DES timelines (ManualClock model
//! time) where the critical path and skew are *exact*, plus a threaded
//! `Universe::builder(p).profiled(c)` integration run checked against the schedule
//! analysis (Props 3.2/3.3).

use cartcomm::ops::Algo;
use cartcomm::schedule::alltoall_plan;
use cartcomm::{CartComm, CostSummary};
use cartcomm_comm::obs::{AlphaBetaFit, CriticalPath, TraceCollector};
use cartcomm_comm::Universe;
use cartcomm_sim::{EventSim, LinearModel, SimTracer};
use cartcomm_topo::{CartTopology, RelNeighborhood};

/// α = 1 µs, β = 1 ns/B: round numbers so every expected timestamp is an
/// exact integer of nanoseconds.
const M: LinearModel = LinearModel {
    alpha: 1e-6,
    beta: 1e-9,
};

/// Drive the combining alltoall schedule of a 2-D Moore 3×3 torus through
/// the DES, one `phase_traced` call per schedule round (every rank sends
/// its round message), and pin the profiler's outputs exactly.
#[test]
fn des_moore_2d_critical_path_and_skew_are_exact() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::new(&[3, 3], &[true, true]).unwrap();
    let plan = alltoall_plan(&nb);
    let m_bytes = 40usize;
    let round_bytes = plan.round_bytes(&|_| m_bytes);
    assert_eq!(plan.rounds, 4, "moore(2,1): C = d(n-1) = 4");

    let p = 9usize;
    let tracer = SimTracer::new(4096);
    let mut sim = EventSim::new(p, M);
    let mut global = 0usize;
    for (k, phase) in plan.phases.iter().enumerate() {
        for round in &phase.rounds {
            let msgs: Vec<(usize, usize, usize)> = (0..p)
                .map(|rank| {
                    let dst = topo
                        .rank_of_offset(rank, &round.offset)
                        .unwrap()
                        .expect("all-periodic torus has every neighbor");
                    (rank, dst, round_bytes[global])
                })
                .collect();
            sim.phase_traced(k, &msgs, &tracer);
            global += 1;
        }
    }

    let dag = TraceCollector::from_records(tracer.records()).build();

    // Prop 3.2 / 3.3 accounting, per rank, exactly.
    let cost = CostSummary::of(&nb);
    assert_eq!(dag.nodes().len(), p * cost.rounds);
    assert_eq!(dag.sends_per_rank(), vec![cost.rounds; p]);
    assert_eq!(
        dag.sent_bytes_per_rank(),
        vec![(cost.alltoall_volume * m_bytes) as u64; p]
    );
    for rank in 0..p {
        assert_eq!(dag.phase_rounds(rank), vec![2, 2], "C_k = n-1 = 2 per dim");
    }
    assert_eq!(dag.unpaired_starts, 0);
    assert_eq!(dag.unpaired_ends, 0);

    // Exact makespan: isomorphic rounds run bulk-synchronously in the
    // model, so T = Σ_r (α + β·z_r·m) = C·α + β·V·m. Accumulate through
    // the same f64 path the DES uses so the ns truncation agrees bit for
    // bit (the ideal integer value is 4480 ns; the float path lands
    // within 1 ns of it).
    let t_secs: f64 = round_bytes.iter().fold(0.0, |t, &b| t + M.message(b));
    let expected_ns = (t_secs * 1e9) as u64;
    let ideal_ns = (cost.rounds * 1_000 + cost.alltoall_volume * m_bytes) as u64;
    assert!(expected_ns.abs_diff(ideal_ns) <= 1);
    assert_eq!(dag.makespan_ns(), expected_ns, "C·α + β·V·m, in ns");

    let cp = CriticalPath::of(&dag);
    assert_eq!(cp.makespan_ns, expected_ns);
    // Perfect symmetry: the path is one wire per round, its latency sum
    // is the whole makespan, and no rank ever waits on another (zero
    // skew in both phases).
    assert_eq!(cp.steps.len(), cost.rounds);
    assert_eq!(cp.path_latency_ns(), expected_ns);
    let phases: Vec<usize> = cp.steps.iter().map(|s| s.phase).collect();
    assert_eq!(phases, vec![0, 0, 1, 1], "chronological phase order");
    assert_eq!(cp.skew.len(), 2);
    for s in &cp.skew {
        assert_eq!(s.skew_ns(), 0, "symmetric phases have zero skew");
    }
    // All ranks tie as "stragglers" at the common finish time.
    assert!(cp.stragglers.iter().all(|s| s.last_ns == expected_ns));

    // Every round of this schedule carries the same wire size (3 blocks),
    // so a fit over it is degenerate by definition — the fitter must say
    // so rather than fabricate coefficients.
    let fit = AlphaBetaFit::fit_size_means(&dag.latency_samples());
    assert!(
        fit.degenerate,
        "single distinct size cannot identify α and β"
    );
}

/// A hand-built asymmetric relay (0 → 1 → 2 → 0) where the critical path
/// is unambiguous: pin every node timestamp and the exact chain.
#[test]
fn des_relay_chain_pins_exact_path() {
    let tracer = SimTracer::new(64);
    let mut sim = EventSim::new(3, M);
    sim.phase_traced(0, &[(0, 1, 1000)], &tracer);
    sim.phase_traced(1, &[(1, 2, 1000)], &tracer);
    sim.phase_traced(2, &[(2, 0, 500)], &tracer);

    let dag = TraceCollector::from_records(tracer.records()).build();
    assert_eq!(dag.nodes().len(), 3);
    let times: Vec<(u64, u64)> = dag
        .nodes()
        .iter()
        .map(|n| (n.depart_ns, n.arrive_ns))
        .collect();
    assert_eq!(times, vec![(0, 2_000), (2_000, 4_000), (4_000, 5_500)]);

    let cp = CriticalPath::of(&dag);
    assert_eq!(cp.makespan_ns, 5_500);
    assert_eq!(cp.steps.len(), 3);
    assert_eq!(cp.rank_chain(), vec![0, 1, 2, 0]);
    assert_eq!(cp.path_latency_ns(), 5_500, "the chain IS the makespan");
    let skews: Vec<u64> = cp.skew.iter().map(|s| s.skew_ns()).collect();
    assert_eq!(skews, vec![0, 0, 0], "one receiver per phase");
    assert_eq!(cp.skew[2].last_done_ns, 5_500);
    // Straggler order: rank 0 finishes last (5.5 µs), then 2, then 1.
    let order: Vec<usize> = cp.stragglers.iter().map(|s| s.rank).collect();
    assert_eq!(order, vec![0, 2, 1]);

    // Two distinct wire sizes identify the model exactly: the DES
    // timeline is perfectly linear, so the fit recovers α = 1 µs and
    // β = 1 ns/B to rounding error.
    let fit = AlphaBetaFit::fit_size_means(&dag.latency_samples());
    assert!(!fit.degenerate);
    assert!((fit.alpha_ns - 1_000.0).abs() < 1.0, "α̂ = {}", fit.alpha_ns);
    assert!(
        (fit.beta_ns_per_byte - 1.0).abs() < 0.01,
        "β̂ = {}",
        fit.beta_ns_per_byte
    );
}

/// Threaded integration: a profiled combining alltoall on the 2-D Moore
/// torus must assemble into a DAG whose accounting matches the schedule
/// analysis exactly (timestamps are real, so only ordering-free
/// quantities are pinned).
#[test]
fn threaded_profiled_run_matches_schedule_analysis() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let cost = CostSummary::of(&nb);
    let m = 8usize; // i32 elements per block
    let dims = vec![3usize, 3];
    let periods = vec![true, true];
    let t = nb.len();
    let p = 9usize;

    let nb2 = nb.clone();
    let run = Universe::builder(p).profiled(8192).run(move |comm| {
        let cart = CartComm::create(comm, &dims, &periods, nb2.clone()).unwrap();
        let rank = cart.rank();
        let plan = cart.plans().alltoall();
        let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
        let mut recv = vec![0i32; t * m];
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        plan.phases
            .iter()
            .map(|ph| ph.rounds.len())
            .collect::<Vec<_>>()
    });

    let phase_rounds = run.results[0].clone();
    let dag = TraceCollector::from_ranks(run.traces).build();

    assert_eq!(dag.ranks(), p);
    assert_eq!(dag.sends_per_rank(), vec![cost.rounds; p]);
    let m_bytes = m * std::mem::size_of::<i32>();
    assert_eq!(
        dag.sent_bytes_per_rank(),
        vec![(cost.alltoall_volume * m_bytes) as u64; p]
    );
    for rank in 0..p {
        assert_eq!(dag.phase_rounds(rank), phase_rounds);
    }
    assert_eq!(dag.unpaired_starts, 0);
    assert_eq!(dag.unpaired_ends, 0);
    assert_eq!(dag.orphan_overlays, 0);
    assert!(dag.makespan_ns() > 0, "shared clock yields a real makespan");

    // The critical path exists and is chronologically consistent.
    let cp = CriticalPath::of(&dag);
    assert!(!cp.steps.is_empty());
    for w in cp.steps.windows(2) {
        assert!(
            w[0].depart_ns <= w[1].depart_ns,
            "path steps are chronological"
        );
    }
    assert!(cp.path_latency_ns() > 0);
    assert_eq!(cp.skew.len(), dag.phases());
}
