//! Machine-aware reordering (the `reorder` flag, actually implemented):
//! collectives must stay correct through any rank permutation, and the
//! brick mapping must measurably reduce inter-node traffic.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{brick_permutation, traffic_summary, CartTopology, RelNeighborhood};

#[test]
fn reordered_alltoall_delivers_correctly() {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let cores = 4usize;
    // reference topology with the same permutation, for expectations
    let topo = CartTopology::torus(&dims)
        .unwrap()
        .with_permutation(brick_permutation(&dims, cores).unwrap())
        .unwrap();
    Universe::builder(16).run(|comm| {
        let cart = CartComm::create_reordered(comm, &dims, &[true, true], nb.clone(), None, cores)
            .unwrap();
        assert!(cart.topology().is_reordered());
        let rank = cart.rank();
        let send: Vec<i32> = (0..t).map(|i| (rank * 100 + i) as i32).collect();
        let mut combining = vec![0i32; t];
        let mut trivial = vec![0i32; t];
        cart.alltoall(&send, &mut combining, Algo::Combining)
            .unwrap();
        cart.alltoall(&send, &mut trivial, Algo::Trivial).unwrap();
        assert_eq!(combining, trivial);
        for (i, off) in nb.offsets().iter().enumerate() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
            assert_eq!(combining[i], (src * 100 + i) as i32, "block {i}");
        }
    });
}

#[test]
fn reordered_allgather_and_reduce_agree_with_identity_results() {
    // The *multiset* of values a rank family exchanges is permutation-
    // dependent, but global invariants are not: the sum over all ranks of
    // all received blocks must match, and each rank's reduce must equal
    // the sum over its permuted neighbors.
    let dims = [4usize, 4];
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    let t = nb.len();
    let cores = 4usize;
    let totals = Universe::builder(16).run(|comm| {
        let cart = CartComm::create_reordered(comm, &dims, &[true, true], nb.clone(), None, cores)
            .unwrap();
        let send = [cart.rank() as i64];
        let mut recv = vec![0i64; t];
        cart.allgather(&send, &mut recv, Algo::Combining).unwrap();
        let mut acc = [cart.rank() as i64];
        cart.neighbor_reduce(&mut acc, |a, b| a + b).unwrap();
        // reduce = own + sum of allgather blocks
        assert_eq!(acc[0], cart.rank() as i64 + recv.iter().sum::<i64>());
        recv.iter().sum::<i64>()
    });
    // every rank's value is received by exactly t neighbors
    let global: i64 = totals.iter().sum();
    assert_eq!(global, (0..16i64).sum::<i64>() * t as i64);
}

#[test]
fn reordering_reduces_internode_traffic_for_stencils() {
    let dims = [4usize, 16];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let cores = 16usize;
    let identity = CartTopology::torus(&dims).unwrap();
    let before = traffic_summary(&identity, &nb, None, cores).unwrap();
    let remapped = CartTopology::torus(&dims)
        .unwrap()
        .with_permutation(brick_permutation(&dims, cores).unwrap())
        .unwrap();
    let after = traffic_summary(&remapped, &nb, None, cores).unwrap();
    assert!(after.inter_fraction() < before.inter_fraction());
}

#[test]
fn incompatible_node_size_is_an_error() {
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        // 9 processes cannot form 2-core nodes
        let res = CartComm::create_reordered(comm, &[3, 3], &[true, true], nb.clone(), None, 2);
        assert!(res.is_err());
    });
}

#[test]
fn listing2_helpers_respect_permutation() {
    let dims = [4usize, 4];
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(16).run(|comm| {
        let cart =
            CartComm::create_reordered(comm, &dims, &[true, true], nb.clone(), None, 4).unwrap();
        let rank = cart.rank();
        let coords = cart.coords();
        // coords/rank roundtrip through the permutation
        assert_eq!(cart.topology().rank_of(&coords).unwrap(), rank);
        // relative_shift antisymmetry
        let (src, dst) = cart.relative_shift(&[1, 0]).unwrap();
        let (src2, dst2) = cart.relative_shift(&[-1, 0]).unwrap();
        assert_eq!(src, dst2);
        assert_eq!(dst, src2);
        // neighbor_get lists stay consistent with relative shifts
        let g = cart.neighbor_get().unwrap();
        for (i, off) in nb.offsets().iter().enumerate() {
            let (_, target) = cart.relative_shift(off).unwrap();
            assert_eq!(g.targets()[i], target.unwrap());
        }
    });
}
