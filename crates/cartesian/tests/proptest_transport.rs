//! Property test for backend equivalence: on a random torus (d ∈ 1..=3),
//! a random relative neighborhood, a random block size, and a *random
//! transport backend*, the compiled persistent alltoall produces receive
//! buffers byte-identical to the same program run on the in-process
//! reference backend. The transport layer must be a pure carrier — no
//! backend may reorder, truncate, pad, or otherwise perturb what the
//! schedule delivers.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{TransportKind, Universe};
use cartcomm_topo::RelNeighborhood;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct TransportCase {
    dims: Vec<usize>,
    offsets: Vec<Vec<i64>>,
    m: usize,
    backend: TransportKind,
}

/// Random torus (p ≤ 27), radius-1 neighborhood, block size up to 16
/// elements, and one of the four backends.
fn arb_transport_case() -> impl Strategy<Value = TransportCase> {
    (1usize..=3).prop_flat_map(|d| {
        (
            proptest::collection::vec(2usize..=3, d..=d),
            proptest::collection::vec(proptest::collection::vec(-1i64..=1, d..=d), 1..10),
            1usize..=16,
            0usize..4,
        )
            .prop_map(move |(dims, offsets, m, b)| TransportCase {
                dims,
                offsets,
                m,
                backend: [
                    TransportKind::InProcess,
                    TransportKind::SharedMem,
                    TransportKind::Uds,
                    TransportKind::Tcp,
                ][b],
            })
    })
}

fn payload(rank: usize, block: usize, e: usize) -> i32 {
    (rank * 1_000_000 + block * 1_000 + e) as i32
}

/// Run the compiled persistent alltoall for the case on one backend and
/// return every rank's receive buffer.
fn compiled_alltoall_on(
    kind: TransportKind,
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
) -> Vec<Vec<i32>> {
    let d = dims.len();
    let t = nb.len();
    let p: usize = dims.iter().product();
    let periods = vec![true; d];
    Universe::builder(p)
        .on(kind)
        .try_run(|comm| {
            let cart = CartComm::create(comm, dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
            let mut handle = cart.alltoall_init::<i32>(m, Algo::Combining).unwrap();
            let mut recv = vec![-7i32; t * m];
            handle.execute_typed(&cart, &send, &mut recv).unwrap();
            cart.comm().barrier().unwrap();
            recv
        })
        .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 8,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// The sampled backend's compiled-plan results are byte-identical to
    /// the in-process reference on every rank.
    #[test]
    fn compiled_plan_is_backend_invariant(case in arb_transport_case()) {
        let TransportCase { dims, offsets, m, backend } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid neighborhood");

        let reference = compiled_alltoall_on(TransportKind::InProcess, &dims, &nb, m);
        let sampled = compiled_alltoall_on(backend, &dims, &nb, m);
        for (rank, (r, s)) in reference.iter().zip(&sampled).enumerate() {
            prop_assert!(
                r == s,
                "backend {} diverged from in-process at rank {} (dims {:?}, m {})",
                backend, rank, dims, m
            );
        }
    }
}
