//! Chaos suite for the neighborhood reductions: `Cart_reduce_scatter` and
//! `Cart_allreduce` under a deterministic, seeded fault plane must stay
//! **byte-identical** to the fault-free reference, keep the analytical
//! round count `C` on the combining path, and terminate — for every
//! executor (trivial, compiled combining, persistent handles) and on both
//! the in-process and shared-memory backends.
//!
//! Same seed discipline as `chaos_exchange`: eight pinned seeds plus an
//! optional `CHAOS_SEED` environment override. Reproduce any failure with
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --release --test chaos_reduce
//! ```

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{FaultSpec, LinkSel, RetryPolicy, Tag, TransportKind, Universe};
use cartcomm_topo::{CartTopology, RelNeighborhood};
use cartcomm_types::RedOp;
use std::time::Duration;

/// The Cartesian data tags (compiled rounds at `0x7A00_0000`, trivial
/// reductions at `0x7E00_0000`) all fall in this half-open range.
const CART_TAGS_LO: Tag = 0x7A00_0000;
const CART_TAGS_HI: Tag = 0x7F00_0000;

fn cart_traffic() -> LinkSel {
    LinkSel::any().tags(CART_TAGS_LO, CART_TAGS_HI)
}

/// Eight pinned seeds plus the `CHAOS_SEED` environment override.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![
        0x0000_0001,
        0x00C0_FFEE,
        0xDEAD_BEEF,
        0x5EED_0003,
        0x0BAD_CAB1,
        0x0FAB_0005,
        0x1234_5678,
        0xA5A5_A5A5,
    ];
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let v = s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("CHAOS_SEED must be a u64, got {s:?}: {e}"));
        seeds.push(v);
    }
    seeds
}

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(25),
        factor: 2.0,
        max: Duration::from_millis(250),
    }
}

/// Per-rank, per-block, per-element send payload. Kept small so i32 sums
/// over t ≤ 26 contributions cannot overflow.
fn payload(rank: usize, block: usize, e: usize) -> i32 {
    (rank * 10_000 + block * 100 + e) as i32
}

/// Reference `Cart_reduce_scatter`: block `j` of the send buffer of each
/// source neighbor `rank − N[j]`, summed. A zero offset contributes the
/// caller's own block `j`; repeated offsets contribute per occurrence.
fn expected_reduce_scatter(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    m: usize,
) -> Vec<i32> {
    let mut acc = vec![0i32; m];
    for (j, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for (e, a) in acc.iter_mut().enumerate() {
                *a += payload(src, j, e);
            }
        }
    }
    acc
}

/// Reference `Cart_allreduce`: the own block exactly once, plus the own
/// block of every *non-zero* source neighbor.
fn expected_allreduce(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    m: usize,
) -> Vec<i32> {
    let mut acc: Vec<i32> = (0..m).map(|e| payload(rank, 0, e)).collect();
    for off in nb.offsets() {
        if off.iter().all(|&c| c == 0) {
            continue;
        }
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for (e, a) in acc.iter_mut().enumerate() {
                *a += payload(src, 0, e);
            }
        }
    }
    acc
}

/// One seeded chaos scenario: every reduction executor on a `dims` torus,
/// byte-identical to the fault-free reference, combining in exactly `C`
/// rounds. Returns each rank's `(retransmits, dup_drops)` delta plus the
/// plane's final stats.
fn run_chaos_reduce(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    spec: FaultSpec,
    policy: RetryPolicy,
    seed: u64,
    transport: TransportKind,
) -> (Vec<(u64, u64)>, cartcomm_comm::FaultStats) {
    eprintln!(
        "chaos reduce scenario: dims={dims:?} t={} m={m} seed={seed} transport={transport} \
         (rerun: CHAOS_SEED={seed})",
        nb.len()
    );
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let topo = CartTopology::new(dims, &periods).unwrap();
    let t = nb.len();
    let outs = Universe::builder(p).on(transport).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(policy));
        let cart = CartComm::create(comm, dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let rs_send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
        let ar_send: Vec<i32> = (0..m).map(|e| payload(rank, 0, e)).collect();
        let rs_expect = expected_reduce_scatter(&topo, nb, rank, m);
        let ar_expect = expected_allreduce(&topo, nb, rank, m);
        let before = cart.comm().metrics();

        let mut recv = vec![-1i32; m];
        cart.neighbor_reduce_scatter(RedOp::Sum, &rs_send, &mut recv, Algo::Trivial)
            .unwrap();
        assert_eq!(
            recv, rs_expect,
            "trivial reduce_scatter diverged, rank {rank} seed {seed}"
        );

        let c = cart
            .plans()
            .schedule(cartcomm::PlanKind::ReduceScatter)
            .rounds as u64;
        let pre = cart.comm().metrics();
        let mut recv = vec![-1i32; m];
        cart.neighbor_reduce_scatter(RedOp::Sum, &rs_send, &mut recv, Algo::Combining)
            .unwrap();
        assert_eq!(
            recv, rs_expect,
            "combining reduce_scatter diverged, rank {rank} seed {seed}"
        );
        let d = cart.comm().metrics().since(&pre);
        assert_eq!(
            d.rounds_completed, c,
            "combining reduce_scatter must keep C rounds under chaos, rank {rank} seed {seed}"
        );

        let mut recv = vec![-1i32; m];
        cart.neighbor_allreduce(RedOp::Sum, &ar_send, &mut recv, Algo::Trivial)
            .unwrap();
        assert_eq!(
            recv, ar_expect,
            "trivial allreduce diverged, rank {rank} seed {seed}"
        );
        let mut recv = vec![-1i32; m];
        cart.neighbor_allreduce(RedOp::Sum, &ar_send, &mut recv, Algo::Combining)
            .unwrap();
        assert_eq!(
            recv, ar_expect,
            "combining allreduce diverged, rank {rank} seed {seed}"
        );

        // Persistent compiled handles under the same chaos.
        let mut rs = cart
            .reduce_scatter_init::<i32>(RedOp::Sum, m, Algo::Combining)
            .unwrap();
        let mut recv = vec![-1i32; m];
        rs.execute_typed(&cart, &rs_send, &mut recv).unwrap();
        assert_eq!(
            recv, rs_expect,
            "persistent reduce_scatter diverged, rank {rank} seed {seed}"
        );
        let mut ar = cart
            .allreduce_init::<i32>(RedOp::Sum, m, Algo::Combining)
            .unwrap();
        let mut recv = vec![-1i32; m];
        ar.execute_typed(&cart, &ar_send, &mut recv).unwrap();
        assert_eq!(
            recv, ar_expect,
            "persistent allreduce diverged, rank {rank} seed {seed}"
        );

        cart.comm().barrier().unwrap();
        let total = cart.comm().metrics().since(&before);
        let stats = cart.comm().fault_stats().unwrap();
        ((total.retransmits, total.dup_drops), stats)
    });
    let stats = outs[0].1;
    (outs.into_iter().map(|(d, _)| d).collect(), stats)
}

/// Combined adversity (drops + duplicates + reorder) on the canonical 2-D
/// Moore neighborhood, across the full seed set.
#[test]
fn moore2d_reductions_survive_combined_chaos() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    for seed in chaos_seeds() {
        let spec = FaultSpec::new(seed)
            .drop_rate(cart_traffic(), 0.15)
            .dup_rate(cart_traffic(), 0.08, 2)
            .reorder_rate(cart_traffic(), 0.20);
        run_chaos_reduce(
            &[3, 3],
            &nb,
            4,
            spec,
            chaos_policy(),
            seed,
            TransportKind::InProcess,
        );
    }
}

/// A neighborhood containing the zero offset plus duplicates of the same
/// non-zero offset: the executors' self-contribution and multiplicity
/// semantics must hold even while the fault plane scrambles delivery.
#[test]
fn zero_offset_and_duplicates_survive_chaos() {
    let nb =
        RelNeighborhood::new(2, vec![vec![0, 0], vec![1, 0], vec![1, 0], vec![0, -1]]).unwrap();
    for &seed in &chaos_seeds()[..4] {
        let spec = FaultSpec::new(seed)
            .drop_rate(cart_traffic(), 0.20)
            .reorder_rate(cart_traffic(), 0.15);
        run_chaos_reduce(
            &[3, 3],
            &nb,
            3,
            spec,
            chaos_policy(),
            seed,
            TransportKind::InProcess,
        );
    }
}

/// 3-D von Neumann reductions over the shared-memory rings under loss
/// plus duplicates: the reliable layer below the shm transport must
/// deliver the same bytes the in-process backend does.
#[test]
fn von_neumann_3d_reductions_survive_chaos_on_shm() {
    let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
    for &seed in &chaos_seeds()[..2] {
        let spec = FaultSpec::new(seed)
            .drop_rate(cart_traffic(), 0.15)
            .dup_rate(cart_traffic(), 0.08, 1);
        run_chaos_reduce(
            &[2, 2, 2],
            &nb,
            3,
            spec,
            chaos_policy(),
            seed,
            TransportKind::SharedMem,
        );
    }
}

/// Retransmission accounting under pure loss, reduction traffic only:
/// at quiescence `Σ retransmits ≥ drops` and the excess (spurious
/// retransmissions) is bounded by the receivers' dedup absorbs — the
/// same sandwich the alltoall chaos suite pins.
#[test]
fn reduce_retransmits_match_injected_drops_under_pure_loss() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let policy = RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(150),
        factor: 2.0,
        max: Duration::from_millis(600),
    };
    for &seed in &chaos_seeds()[..3] {
        let spec = FaultSpec::new(seed).drop_rate(cart_traffic(), 0.20);
        let (deltas, stats) = run_chaos_reduce(
            &[3, 3],
            &nb,
            4,
            spec,
            policy,
            seed,
            TransportKind::InProcess,
        );
        let retx: u64 = deltas.iter().map(|d| d.0).sum();
        let dups: u64 = deltas.iter().map(|d| d.1).sum();
        assert!(
            stats.drops > 0,
            "seed {seed} injected no drops — spec inert?"
        );
        assert!(
            retx >= stats.drops,
            "every drop must be retransmitted: {retx} retransmits < {} drops, seed {seed}",
            stats.drops
        );
        assert!(
            retx - stats.drops <= dups,
            "unaccounted retransmissions: {retx} retransmits, {} drops, {dups} dedups, seed {seed}",
            stats.drops
        );
    }
}
