//! Flat-tree arena invariants: the CSR schedule arena must produce the
//! exact plans the seed's pointer tree produced.
//!
//! The allgather routing tree was rebuilt from a per-node
//! `children: Vec<(i64, usize)>` pointer tree into a contiguous CSR arena
//! (one node vec + one shared children slab). These tests pin that the
//! refactor is *observationally invisible*: for every stencil family the
//! paper evaluates — plus an asymmetric upwind neighborhood — the arena
//! tree yields identical `(rounds, volume, per-phase C_k)` counts, an
//! identical rank-independent plan structure, and identical compiled span
//! programs for every rank of a concrete torus.
//!
//! Golden fingerprints were generated from the seed's pointer-tree
//! implementation (FNV-1a over the full structural content, stable across
//! platforms and rustc versions) before the arena landed; re-bless with
//! `BLESS_GOLDEN=1 cargo test --test flat_tree_invariants -- --nocapture`
//! only when the schedule itself intentionally changes.

use cartcomm::exec::{BlockLayout, ExecLayouts};
use cartcomm::schedule::{
    allgather_plan_with_order, allreduce_plan, alltoall_plan, reduce_scatter_plan, DimOrder,
};
use cartcomm::{CompiledPlan, Loc, Plan, PlanKind};
use cartcomm_topo::{CartTopology, RelNeighborhood};

/// FNV-1a 64 over a u64 stream (mirrors the compiler's internal hasher so
/// goldens are portable).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xCBF2_9CE4_8422_2325)
    }
    fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
    fn i64(&mut self, v: i64) {
        self.u64(v as u64)
    }
}

fn loc_tag(loc: Loc) -> u64 {
    match loc {
        Loc::Send => 1,
        Loc::Recv => 2,
        Loc::Temp => 3,
    }
}

/// Structural fingerprint of a rank-independent plan: every phase, copy,
/// round offset, and wire-ordered block list contributes.
fn plan_fingerprint(plan: &Plan) -> u64 {
    let mut h = Fnv::new();
    h.u64(match plan.kind {
        PlanKind::Alltoall => 1,
        PlanKind::Allgather => 2,
        PlanKind::ReduceScatter => 3,
        PlanKind::Allreduce => 4,
    });
    h.u64(plan.ndims as u64);
    h.u64(plan.t as u64);
    h.u64(plan.temp_slots as u64);
    h.u64(plan.rounds as u64);
    h.u64(plan.volume_blocks as u64);
    for phase in &plan.phases {
        h.u64(0xFACE);
        for c in &phase.copies {
            h.u64(0xC0);
            h.u64(loc_tag(c.from.loc));
            h.u64(c.from.slot as u64);
            h.u64(loc_tag(c.to.loc));
            h.u64(c.to.slot as u64);
        }
        for r in &phase.rounds {
            h.u64(0xF0);
            for &o in &r.offset {
                h.i64(o);
            }
            for j in 0..r.block_ids.len() {
                h.u64(loc_tag(r.sends[j].loc));
                h.u64(r.sends[j].slot as u64);
                h.u64(loc_tag(r.recvs[j].loc));
                h.u64(r.recvs[j].slot as u64);
                h.u64(r.block_ids[j] as u64);
            }
        }
    }
    h.0
}

/// Contiguous layouts with temp sizing, mirroring the library's regular
/// path (`ops::regular_layouts` + `ops::size_temp`), so compiled programs
/// here match what `CartComm::allgather`/`alltoall` execute.
fn layouts(plan: &Plan, block_bytes: usize) -> ExecLayouts {
    let t = plan.t;
    let blocks: Vec<BlockLayout> = (0..t)
        .map(|i| BlockLayout::contiguous((i * block_bytes) as i64, block_bytes))
        .collect();
    let single = vec![BlockLayout::contiguous(0, block_bytes)];
    let send = match plan.kind {
        PlanKind::Alltoall | PlanKind::ReduceScatter => blocks.clone(),
        PlanKind::Allgather | PlanKind::Allreduce => single.clone(),
    };
    let recv = match plan.kind {
        PlanKind::Alltoall | PlanKind::Allgather => blocks,
        PlanKind::ReduceScatter | PlanKind::Allreduce => single,
    };
    let lay = ExecLayouts {
        send,
        recv,
        block_bytes: vec![block_bytes; t],
        temp_offsets: Vec::new(),
        temp_sizes: Vec::new(),
    };
    lay.with_temp_sizes(vec![block_bytes; plan.temp_slots])
}

/// Fingerprint of the compiled span programs of *all* ranks of `topo`,
/// combined order-sensitively.
fn compiled_fingerprint(topo: &CartTopology, plan: &Plan, block_bytes: usize) -> u64 {
    let lay = layouts(plan, block_bytes);
    let mut h = Fnv::new();
    let p: usize = topo.dims().iter().product();
    for rank in 0..p {
        let cp = CompiledPlan::compile(topo, rank, plan, &lay, 0x7A00_0000).unwrap();
        h.u64(rank as u64);
        h.u64(cp.program_fingerprint());
    }
    h.0
}

struct Case {
    name: &'static str,
    dims: &'static [usize],
    nb: fn() -> RelNeighborhood,
}

/// An asymmetric upwind neighborhood: strictly "upstream" neighbors with
/// mixed hop counts and a duplicate-coordinate column, exercising temp
/// forwarder nodes and fill copies in the allgather tree.
fn upwind_2d() -> RelNeighborhood {
    RelNeighborhood::new(
        2,
        vec![
            vec![-1, 0],
            vec![-2, 0],
            vec![0, -1],
            vec![-1, -1],
            vec![-2, -1],
        ],
    )
    .unwrap()
}

fn upwind_3d() -> RelNeighborhood {
    RelNeighborhood::new(
        3,
        vec![
            vec![-1, 0, 0],
            vec![-2, 0, 0],
            vec![0, -1, 0],
            vec![0, 0, -1],
            vec![-1, -1, 0],
            vec![-1, 0, -1],
            vec![-2, -1, -1],
        ],
    )
    .unwrap()
}

fn cases() -> Vec<Case> {
    vec![
        Case {
            name: "moore2d",
            dims: &[4, 4],
            nb: || RelNeighborhood::moore(2, 1).unwrap(),
        },
        Case {
            name: "moore3d",
            dims: &[3, 3, 3],
            nb: || RelNeighborhood::moore(3, 1).unwrap(),
        },
        Case {
            name: "vonneumann2d",
            dims: &[4, 4],
            nb: || RelNeighborhood::von_neumann(2, 1).unwrap(),
        },
        Case {
            name: "vonneumann3d",
            dims: &[3, 3, 3],
            nb: || RelNeighborhood::von_neumann(3, 1).unwrap(),
        },
        Case {
            name: "upwind2d",
            dims: &[5, 4],
            nb: upwind_2d,
        },
        Case {
            name: "upwind3d",
            dims: &[4, 3, 3],
            nb: upwind_3d,
        },
    ]
}

/// Golden row: counts and fingerprints captured from the seed's pointer
/// tree. Per case: (name, rounds, volume, phase C_k, plan fp per DimOrder
/// [IncreasingCk, Given, DecreasingCk], compiled fp of the IncreasingCk
/// allgather at 24 B blocks, alltoall plan fp, alltoall compiled fp).
struct Golden {
    name: &'static str,
    rounds: usize,
    volume: usize,
    phase_rounds: &'static [usize],
    ag_plan_fp: [u64; 3],
    ag_compiled_fp: u64,
    a2a_plan_fp: u64,
    a2a_compiled_fp: u64,
    rs_plan_fp: u64,
    rs_compiled_fp: u64,
    ar_plan_fp: u64,
    ar_compiled_fp: u64,
}

const BLOCK_BYTES: usize = 24;

#[rustfmt::skip]
const GOLDENS: &[Golden] = &[
    Golden { name: "moore2d", rounds: 4, volume: 8, phase_rounds: &[2, 2], ag_plan_fp: [0x5A9B3C038A60497F, 0x5A9B3C038A60497F, 0x5A9B3C038A60497F], ag_compiled_fp: 0xE2FAE7493F030021, a2a_plan_fp: 0x48A23E8F8EF5665E, a2a_compiled_fp: 0x987D0EE325DE89A2, rs_plan_fp: 0x05B5318F8DFAE80A, rs_compiled_fp: 0x1472F98C46B9C7A0, ar_plan_fp: 0x277F5483062918FB, ar_compiled_fp: 0x2129FC4E63DBAA20 },
    Golden { name: "moore3d", rounds: 6, volume: 26, phase_rounds: &[2, 2, 2], ag_plan_fp: [0x928BC23F905E1F61, 0x928BC23F905E1F61, 0x928BC23F905E1F61], ag_compiled_fp: 0x2524848D0921EFD1, a2a_plan_fp: 0xA32D96D5D48251E7, a2a_compiled_fp: 0x4F66AB70F6505419, rs_plan_fp: 0xC62A25D98A85AF0E, rs_compiled_fp: 0xD59233C800C37F27, ar_plan_fp: 0xFB9E4A49E4B00A96, ar_compiled_fp: 0xA9A07DF4923A60AE },
    Golden { name: "vonneumann2d", rounds: 4, volume: 4, phase_rounds: &[2, 2], ag_plan_fp: [0xA77C418323449335, 0xA77C418323449335, 0xA77C418323449335], ag_compiled_fp: 0xAC9863F3488F8FB6, a2a_plan_fp: 0x2CAF881602A4E676, a2a_compiled_fp: 0x279EEE43F255EB2B, rs_plan_fp: 0xED9267DB0D7F817C, rs_compiled_fp: 0xAB328C44E4A500CA, ar_plan_fp: 0xC81C38211AF42FFD, ar_compiled_fp: 0xB2605B4F94C56B64 },
    Golden { name: "vonneumann3d", rounds: 6, volume: 6, phase_rounds: &[2, 2, 2], ag_plan_fp: [0xA4A279AFD185787F, 0xA4A279AFD185787F, 0xA4A279AFD185787F], ag_compiled_fp: 0x4EA44B73EA19B1ED, a2a_plan_fp: 0xD309059B4E6324F3, a2a_compiled_fp: 0xD9447ED2A65EC647, rs_plan_fp: 0xAD9D9800ED7A714C, rs_compiled_fp: 0xE8970C47269CC01B, ar_plan_fp: 0xBDB8FDB68B01EBBC, ar_compiled_fp: 0x6585EF2202A9A3C3 },
    Golden { name: "upwind2d", rounds: 3, volume: 5, phase_rounds: &[1, 2], ag_plan_fp: [0xF634015CEBA4F350, 0x7247D929E04955F1, 0x7247D929E04955F1], ag_compiled_fp: 0xEA6474FED2BF2ECA, a2a_plan_fp: 0x710022A7387C9B2F, a2a_compiled_fp: 0xFC0D8CEF8EA6F121, rs_plan_fp: 0xD870BFF751278003, rs_compiled_fp: 0x780E27C301B48543, ar_plan_fp: 0x54CFEA461D57A8EE, ar_compiled_fp: 0x184EA55E5BC6C81E },
    Golden { name: "upwind3d", rounds: 4, volume: 8, phase_rounds: &[1, 1, 2], ag_plan_fp: [0x44D4859AC7E9B72A, 0x4B9DC78C3F72BE34, 0x4B9DC78C3F72BE34], ag_compiled_fp: 0xBCD34B3EBD23A0DF, a2a_plan_fp: 0xBF08C8A4DBE212A8, a2a_compiled_fp: 0xF3DDB642C0D13461, rs_plan_fp: 0xF2A8091550CF7833, rs_compiled_fp: 0xA8AF775E7A59A6AB, ar_plan_fp: 0xF22F31E2ABCC8F7D, ar_compiled_fp: 0x28B06E51374D802F },
];

fn bless() -> bool {
    std::env::var("BLESS_GOLDEN").is_ok_and(|v| v == "1")
}

#[test]
fn arena_tree_matches_seed_pointer_tree_goldens() {
    for case in cases() {
        let nb = (case.nb)();
        let topo = CartTopology::new(case.dims, &vec![true; case.dims.len()]).unwrap();

        let ag = allgather_plan_with_order(&nb, DimOrder::IncreasingCk);
        let phase_rounds: Vec<usize> = ag.phases.iter().map(|p| p.rounds.len()).collect();
        let ag_plan_fp = [
            plan_fingerprint(&ag),
            plan_fingerprint(&allgather_plan_with_order(&nb, DimOrder::Given)),
            plan_fingerprint(&allgather_plan_with_order(&nb, DimOrder::DecreasingCk)),
        ];
        let ag_compiled_fp = compiled_fingerprint(&topo, &ag, BLOCK_BYTES);

        let a2a = alltoall_plan(&nb);
        let a2a_plan_fp = plan_fingerprint(&a2a);
        let a2a_compiled_fp = compiled_fingerprint(&topo, &a2a, BLOCK_BYTES);

        let rs = reduce_scatter_plan(&nb);
        let rs_plan_fp = plan_fingerprint(&rs);
        let rs_compiled_fp = compiled_fingerprint(&topo, &rs, BLOCK_BYTES);

        let ar = allreduce_plan(&nb);
        let ar_plan_fp = plan_fingerprint(&ar);
        let ar_compiled_fp = compiled_fingerprint(&topo, &ar, BLOCK_BYTES);

        if bless() {
            println!(
                "Golden {{ name: \"{}\", rounds: {}, volume: {}, phase_rounds: &{:?}, \
                 ag_plan_fp: [{:#018X}, {:#018X}, {:#018X}], ag_compiled_fp: {:#018X}, \
                 a2a_plan_fp: {:#018X}, a2a_compiled_fp: {:#018X}, \
                 rs_plan_fp: {:#018X}, rs_compiled_fp: {:#018X}, \
                 ar_plan_fp: {:#018X}, ar_compiled_fp: {:#018X} }},",
                case.name,
                ag.rounds,
                ag.volume_blocks,
                phase_rounds,
                ag_plan_fp[0],
                ag_plan_fp[1],
                ag_plan_fp[2],
                ag_compiled_fp,
                a2a_plan_fp,
                a2a_compiled_fp,
                rs_plan_fp,
                rs_compiled_fp,
                ar_plan_fp,
                ar_compiled_fp,
            );
            continue;
        }

        let g = GOLDENS
            .iter()
            .find(|g| g.name == case.name)
            .unwrap_or_else(|| panic!("no golden for {}", case.name));
        assert_eq!(ag.rounds, g.rounds, "{}: allgather rounds", case.name);
        assert_eq!(
            ag.volume_blocks, g.volume,
            "{}: allgather volume",
            case.name
        );
        assert_eq!(phase_rounds, g.phase_rounds, "{}: per-phase C_k", case.name);
        assert_eq!(ag_plan_fp, g.ag_plan_fp, "{}: allgather plan fp", case.name);
        assert_eq!(
            ag_compiled_fp, g.ag_compiled_fp,
            "{}: allgather compiled fp",
            case.name
        );
        assert_eq!(
            a2a_plan_fp, g.a2a_plan_fp,
            "{}: alltoall plan fp",
            case.name
        );
        assert_eq!(
            a2a_compiled_fp, g.a2a_compiled_fp,
            "{}: alltoall compiled fp",
            case.name
        );
        assert_eq!(
            rs_plan_fp, g.rs_plan_fp,
            "{}: reduce_scatter plan fp",
            case.name
        );
        assert_eq!(
            rs_compiled_fp, g.rs_compiled_fp,
            "{}: reduce_scatter compiled fp",
            case.name
        );
        assert_eq!(ar_plan_fp, g.ar_plan_fp, "{}: allreduce plan fp", case.name);
        assert_eq!(
            ar_compiled_fp, g.ar_compiled_fp,
            "{}: allreduce compiled fp",
            case.name
        );
    }
}

/// Independently of the goldens: the arena plan must satisfy the same
/// internal invariants the seed's tree satisfied, for every dimension
/// order (validate() + routing counts).
#[test]
fn arena_plans_validate_for_all_orders() {
    for case in cases() {
        let nb = (case.nb)();
        for order in [
            DimOrder::IncreasingCk,
            DimOrder::Given,
            DimOrder::DecreasingCk,
        ] {
            let plan = allgather_plan_with_order(&nb, order);
            plan.validate()
                .unwrap_or_else(|e| panic!("{}: {e}", case.name));
            assert_eq!(plan.rounds, nb.combining_rounds(), "{}", case.name);
        }
        for plan in [reduce_scatter_plan(&nb), allreduce_plan(&nb)] {
            plan.validate()
                .unwrap_or_else(|e| panic!("{} ({:?}): {e}", case.name, plan.kind));
            assert_eq!(
                plan.rounds,
                nb.negated().combining_rounds(),
                "{}",
                case.name
            );
        }
    }
}
