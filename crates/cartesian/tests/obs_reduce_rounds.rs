//! Observability pins the paper's accounting for the reductions: with a
//! trace sink attached, a combining `Cart_reduce_scatter` or
//! `Cart_allreduce` must emit exactly `C = Σ_k C_k` round events (Prop.
//! 3.2, the reversed tree keeps the forward round count) carrying exactly
//! `V·m` wire bytes (Prop. 3.3, V = edges of the negated neighborhood's
//! allgather tree) — on 2-D/3-D Moore and 3-D von Neumann universes, with
//! the windows expressed as `MetricsDelta`s. Every reduction round must
//! also emit its `AccumSpan` unpack mirror.

use std::sync::Arc;

use cartcomm::ops::Algo;
use cartcomm::{CartComm, PlanKind};
use cartcomm_comm::obs::{RingBufferSink, TraceEvent};
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::RedOp;

/// Per-rank observation of one traced reduction: `(rounds_started,
/// rounds_ended, start_wire_bytes, end_wire_bytes, accum_events,
/// accum_bytes)`.
type Observed = (usize, usize, usize, usize, usize, usize);

/// Run one combining reduction on a `dims` torus with tracing enabled and
/// return each rank's observed rounds/bytes plus the plan's `(C, V)`.
fn observe_reduction(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    kind: PlanKind,
) -> (Vec<Observed>, usize, usize) {
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let t = nb.len();
    let nb = nb.clone();
    let dims = dims.to_vec();
    let outs = Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let plan = cart.plans().schedule(kind);
        let (c, v) = (plan.rounds, plan.volume_blocks);

        let sink = Arc::new(RingBufferSink::new(4 * (c + v) + 64));
        cart.comm().obs().attach_sink(sink.clone());
        let before = cart.comm().obs().snapshot();

        match kind {
            PlanKind::ReduceScatter => {
                let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
                let mut recv = vec![0i32; m];
                cart.neighbor_reduce_scatter(RedOp::Sum, &send, &mut recv, Algo::Combining)
                    .unwrap();
            }
            PlanKind::Allreduce => {
                let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
                let mut recv = vec![0i32; m];
                cart.neighbor_allreduce(RedOp::Sum, &send, &mut recv, Algo::Combining)
                    .unwrap();
            }
            other => panic!("not a reduction kind: {other:?}"),
        }
        let delta = cart.comm().obs().metrics().delta_since(&before);
        cart.comm().obs().detach_sink();

        let mut obs: Observed = (0, 0, 0, 0, 0, 0);
        for rec in sink.snapshot() {
            assert_eq!(rec.rank, rank, "sink only sees its own rank's events");
            match rec.event {
                TraceEvent::RoundStart { wire_bytes, .. } => {
                    obs.0 += 1;
                    obs.2 += wire_bytes;
                }
                TraceEvent::RoundEnd { wire_bytes, .. } => {
                    obs.1 += 1;
                    obs.3 += wire_bytes;
                }
                TraceEvent::AccumSpan { bytes, .. } => {
                    obs.4 += 1;
                    obs.5 += bytes;
                }
                _ => {}
            }
        }
        // The always-on counters agree with the trace over the window.
        assert_eq!(
            delta.rounds_started as usize, obs.0,
            "rank {rank}: MetricsDelta rounds vs trace"
        );
        assert_eq!(
            delta.rounds_completed as usize, obs.1,
            "rank {rank}: MetricsDelta completions vs trace"
        );
        (obs, c, v)
    });
    let mut per_rank = Vec::with_capacity(p);
    let mut cv = (0usize, 0usize);
    for (obs, c, v) in outs {
        cv = (c, v);
        per_rank.push(obs);
    }
    (per_rank, cv.0, cv.1)
}

/// The shared assertion: every rank observed exactly `C` rounds carrying
/// `V·m` wire bytes each way, and one `AccumSpan` per completed round
/// whose byte total equals the inbound wire volume.
fn assert_matches_cv(dims: &[usize], nb: &RelNeighborhood, m: usize, kind: PlanKind) {
    let (per_rank, c, v) = observe_reduction(dims, nb, m, kind);
    let m_bytes = m * std::mem::size_of::<i32>();
    for (rank, (starts, ends, sent, recvd, accums, accum_bytes)) in per_rank.into_iter().enumerate()
    {
        assert_eq!(starts, c, "rank {rank}: observed rounds != C ({kind:?})");
        assert_eq!(ends, c, "rank {rank}: completed rounds != C ({kind:?})");
        assert_eq!(
            sent,
            v * m_bytes,
            "rank {rank}: sent wire bytes != V*m ({kind:?})"
        );
        assert_eq!(
            recvd,
            v * m_bytes,
            "rank {rank}: recv wire bytes != V*m ({kind:?})"
        );
        assert_eq!(
            accums, c,
            "rank {rank}: one AccumSpan per reduction round ({kind:?})"
        );
        assert_eq!(
            accum_bytes,
            v * m_bytes,
            "rank {rank}: accumulated bytes != inbound volume ({kind:?})"
        );
    }
}

#[test]
fn moore_2d_reduce_rounds_match_c_and_volume() {
    // 9-point stencil on a 3x3 torus: t = 8, C = 4, V = 8.
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    assert_matches_cv(&[3, 3], &nb, 3, PlanKind::ReduceScatter);
    assert_matches_cv(&[3, 3], &nb, 2, PlanKind::Allreduce);
}

#[test]
fn moore_3d_reduce_rounds_match_c_and_volume() {
    // 27-point stencil on a 3x3x3 torus: t = 26, C = 6, V = 26.
    let nb = RelNeighborhood::moore(3, 1).unwrap();
    assert_matches_cv(&[3, 3, 3], &nb, 2, PlanKind::ReduceScatter);
    assert_matches_cv(&[3, 3, 3], &nb, 1, PlanKind::Allreduce);
}

#[test]
fn von_neumann_3d_reduce_rounds_match_c_and_volume() {
    // 7-point stencil (minus self) on a 3x3x4 torus: t = 6, C = 6, V = 6.
    let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
    assert_matches_cv(&[3, 3, 4], &nb, 4, PlanKind::ReduceScatter);
    assert_matches_cv(&[3, 3, 4], &nb, 2, PlanKind::Allreduce);
}

#[test]
fn trivial_reduce_rounds_match_live_neighbors() {
    // The trivial reductions exchange one block per *non-zero* neighbor
    // (the own contribution folds in locally), and each completed round
    // emits its AccumSpan mirror.
    let nb = RelNeighborhood::new(2, vec![vec![0, 0], vec![1, 0], vec![0, -1]]).unwrap();
    let live = 2usize; // non-zero offsets
    let m = 3usize;
    let m_bytes = m * std::mem::size_of::<i32>();
    let outs = Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let sink = Arc::new(RingBufferSink::new(256));
        cart.comm().obs().attach_sink(sink.clone());
        let send: Vec<i32> = (0..nb.len() * m).map(|x| x as i32).collect();
        let mut recv = vec![0i32; m];
        cart.neighbor_reduce_scatter(RedOp::Sum, &send, &mut recv, Algo::Trivial)
            .unwrap();
        let own: Vec<i32> = (0..m).map(|e| e as i32).collect();
        let mut recv2 = vec![0i32; m];
        cart.neighbor_allreduce(RedOp::Sum, &own, &mut recv2, Algo::Trivial)
            .unwrap();
        cart.comm().obs().detach_sink();
        let mut starts = 0usize;
        let mut bytes = 0usize;
        let mut accums = 0usize;
        for rec in sink.snapshot() {
            match rec.event {
                TraceEvent::RoundStart { wire_bytes, .. } => {
                    starts += 1;
                    bytes += wire_bytes;
                }
                TraceEvent::AccumSpan { .. } => accums += 1,
                _ => {}
            }
        }
        (starts, bytes, accums)
    });
    for (rank, (starts, bytes, accums)) in outs.into_iter().enumerate() {
        assert_eq!(starts, 2 * live, "rank {rank}: trivial rounds != live t");
        assert_eq!(
            bytes,
            2 * live * m_bytes,
            "rank {rank}: trivial volume != live t * m"
        );
        assert_eq!(accums, 2 * live, "rank {rank}: AccumSpan per round");
    }
}
