//! Wire-pool convergence under sustained persistent-collective load.
//!
//! A persistent handle on a 4×4 torus with the Moore neighborhood is
//! executed 1000 times per rank. The pool must (a) serve every wire buffer
//! from its free lists once warm — a 100% hit rate, zero allocations in
//! steady state — and (b) converge: the bytes parked in the pool stop
//! growing after the warm-up, proving buffers cycle rank → wire → receiver
//! pool → next send instead of accumulating.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;

const ITERS: usize = 1000;
const WARMUP: usize = 10;
const MID: usize = 100;

fn run_stress(algo: Algo, expect_combining: bool) {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 32usize; // elements per block
    Universe::builder(16).run(move |comm| {
        let cart = CartComm::create(comm, &[4, 4], &[true, true], nb.clone()).unwrap();
        let mut handle = cart.alltoall_init::<u64>(m, algo).unwrap();
        assert_eq!(handle.is_combining(), expect_combining);

        let send: Vec<u64> = (0..t * m)
            .map(|i| (cart.rank() * 100_000 + i) as u64)
            .collect();
        let mut recv = vec![0u64; t * m];

        let mut mid_retained = 0u64;
        for it in 0..ITERS {
            handle.execute_typed(&cart, &send, &mut recv).unwrap();
            if it == 0 {
                // Correctness spot check on the first iteration.
                for i in 0..t {
                    let src = cart
                        .relative_shift(cart.neighborhood().offset(i))
                        .unwrap()
                        .0
                        .unwrap();
                    assert_eq!(recv[i * m], (src * 100_000 + i * m) as u64);
                }
            }
            if it + 1 == WARMUP {
                // From here on, every buffer must come from the pool.
                cart.comm().wire_pool().reset_stats();
            }
            if it + 1 == MID {
                mid_retained = cart.comm().pool_telemetry().retained_bytes;
            }
        }

        let stats = cart.comm().pool_telemetry();
        // (a) 100% hit rate after warm-up: not a single allocation in
        // 990 iterations of schedule execution.
        assert!(stats.hits > 0, "pool never used after warm-up");
        assert_eq!(
            stats.misses, 0,
            "steady-state allocations: {} misses vs {} hits",
            stats.misses, stats.hits
        );
        assert_eq!(stats.hit_rate(), 1.0);
        // (b) convergence: pool residency at iteration 1000 equals the
        // residency at iteration 100 — buffers recirculate, they don't
        // accumulate.
        assert_eq!(
            stats.retained_bytes, mid_retained,
            "pool grew between iteration {MID} and {ITERS}"
        );
    });
}

#[test]
fn combining_persistent_alltoall_converges_with_full_hit_rate() {
    run_stress(Algo::Combining, true);
}

#[test]
fn trivial_persistent_alltoall_converges_with_full_hit_rate() {
    run_stress(Algo::Trivial, false);
}

#[test]
fn persistent_allgather_converges_with_full_hit_rate() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 16usize;
    Universe::builder(16).run(move |comm| {
        let cart = CartComm::create(comm, &[4, 4], &[true, true], nb.clone()).unwrap();
        let mut handle = cart.allgather_init::<u64>(m, Algo::Combining).unwrap();
        let send: Vec<u64> = (0..m).map(|i| (cart.rank() * 1000 + i) as u64).collect();
        let mut recv = vec![0u64; t * m];
        let mut mid_retained = 0u64;
        for it in 0..ITERS {
            handle.execute_typed(&cart, &send, &mut recv).unwrap();
            if it + 1 == WARMUP {
                cart.comm().wire_pool().reset_stats();
            }
            if it + 1 == MID {
                mid_retained = cart.comm().pool_telemetry().retained_bytes;
            }
        }
        let stats = cart.comm().pool_telemetry();
        assert!(stats.hits > 0);
        assert_eq!(stats.misses, 0, "steady-state allocations in allgather");
        assert_eq!(stats.retained_bytes, mid_retained);
    });
}

#[test]
fn first_execute_after_init_already_hits() {
    // `_init` pre-warms the pool with the plan's wire sizes: even the very
    // first execute must not allocate on the send path. (Received buffers
    // are peers' sends, retargeted — they never count as local misses.)
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    Universe::builder(16).run(move |comm| {
        let cart = CartComm::create(comm, &[4, 4], &[true, true], nb.clone()).unwrap();
        let mut handle = cart.alltoall_init::<u64>(8, Algo::Combining).unwrap();
        cart.comm().wire_pool().reset_stats();
        let send = vec![1u64; t * 8];
        let mut recv = vec![0u64; t * 8];
        handle.execute_typed(&cart, &send, &mut recv).unwrap();
        let stats = cart.comm().pool_telemetry();
        assert_eq!(
            stats.misses, 0,
            "first execute allocated despite init-time pre-warm"
        );
        assert!(stats.hits > 0);
    });
}
