//! Correctness of the Cartesian neighborhood reductions: the
//! tree-combining algorithm must agree with the trivial algorithm and with
//! a directly computed reference for any neighborhood.

use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};

/// Reference: acc_r = own(r) + Σ_{i: N[i]≠0} own(r − N[i]).
///
/// The caller's own contribution counts exactly once, even when the
/// neighborhood contains the zero offset — the in-place reduction seeds
/// the accumulator with `own`, and a zero-offset "neighbor" is the caller
/// itself, not a second copy of its data.
fn expected_sum(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    m: usize,
    own: impl Fn(usize, usize) -> i64,
) -> Vec<i64> {
    let mut acc: Vec<i64> = (0..m).map(|e| own(rank, e)).collect();
    for off in nb.offsets() {
        if off.iter().all(|&c| c == 0) {
            continue;
        }
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for (e, a) in acc.iter_mut().enumerate() {
                *a += own(src, e);
            }
        }
    }
    acc
}

fn check_reduce(dims: &[usize], nb: RelNeighborhood, m: usize) {
    let p: usize = dims.iter().product();
    let topo = CartTopology::torus(dims).unwrap();
    let periods = vec![true; dims.len()];
    let own = |rank: usize, e: usize| (rank * 100 + e) as i64;
    Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let expect = expected_sum(&topo, &nb, rank, m, own);

        let mut trivial: Vec<i64> = (0..m).map(|e| own(rank, e)).collect();
        cart.neighbor_reduce_trivial(&mut trivial, |a, b| a + b)
            .unwrap();
        assert_eq!(trivial, expect, "trivial reduce, rank {rank}");

        let mut tree: Vec<i64> = (0..m).map(|e| own(rank, e)).collect();
        cart.neighbor_reduce(&mut tree, |a, b| a + b).unwrap();
        assert_eq!(tree, expect, "tree reduce, rank {rank}");
    });
}

#[test]
fn moore_2d_sum() {
    check_reduce(&[3, 3], RelNeighborhood::moore(2, 1).unwrap(), 3);
}

#[test]
fn moore_3d_sum() {
    check_reduce(&[3, 3, 3], RelNeighborhood::moore(3, 1).unwrap(), 2);
}

#[test]
fn asymmetric_family() {
    check_reduce(
        &[5, 4],
        RelNeighborhood::stencil_family(2, 4, -1).unwrap(),
        4,
    );
}

#[test]
fn von_neumann() {
    check_reduce(&[4, 4], RelNeighborhood::von_neumann(2, 1).unwrap(), 1);
}

#[test]
fn with_self_neighbor() {
    check_reduce(
        &[3, 3],
        RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap(),
        2,
    );
}

/// Regression: a neighborhood containing the zero offset must not fold
/// the caller's own contribution in twice. The trivial executor used to
/// reduce `acc` with a copy of itself at the self-offset branch, which
/// double-counts with non-idempotent operators like Sum.
#[test]
fn zero_offset_is_not_double_counted() {
    let nb = RelNeighborhood::new(1, vec![vec![0], vec![1]]).unwrap();
    Universe::builder(4).run(|comm| {
        let cart = CartComm::create(comm, &[4], &[true], nb.clone()).unwrap();
        let rank = cart.rank();
        let own = (rank as i64 + 1) * 1000;
        // Sum over {self, left neighbor}: own exactly once + own(rank-1).
        let want = own + ((rank + 3) % 4 + 1) as i64 * 1000;

        let mut trivial = [own];
        cart.neighbor_reduce_trivial(&mut trivial, |a, b| a + b)
            .unwrap();
        assert_eq!(trivial[0], want, "trivial reduce, rank {rank}");

        let mut tree = [own];
        cart.neighbor_reduce(&mut tree, |a, b| a + b).unwrap();
        assert_eq!(tree[0], want, "tree reduce, rank {rank}");
    });
}

#[test]
fn repeated_offsets_count_twice() {
    let nb = RelNeighborhood::new(1, vec![vec![1], vec![1], vec![-2]]).unwrap();
    check_reduce(&[5], nb, 3);
}

#[test]
fn wrapping_offsets() {
    let nb = RelNeighborhood::new(2, vec![vec![3, 0], vec![-2, 1], vec![0, -4]]).unwrap();
    check_reduce(&[3, 4], nb, 2);
}

#[test]
fn forwarder_heavy_neighborhood() {
    // Shared (1,·) coordinates force temp forwarder joins in the tree.
    let nb =
        RelNeighborhood::new(2, vec![vec![-2, 1], vec![-1, 1], vec![1, 1], vec![2, 1]]).unwrap();
    check_reduce(&[5, 5], nb, 3);
}

#[test]
fn random_neighborhoods() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(77);
    for _ in 0..6 {
        let d = rng.gen_range(1..4);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2..4)).collect();
        let t = rng.gen_range(1..7);
        let offsets: Vec<Vec<i64>> = (0..t)
            .map(|_| (0..d).map(|_| rng.gen_range(-3i64..4)).collect())
            .collect();
        let nb = RelNeighborhood::new(d, offsets).unwrap();
        let m = rng.gen_range(1..4);
        check_reduce(&dims, nb, m);
    }
}

#[test]
fn max_operator() {
    // A non-additive commutative operator.
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let mut acc = [rank as i64 * 7 % 5];
        cart.neighbor_reduce(&mut acc, |a, b| a.max(b)).unwrap();
        let mut want = rank as i64 * 7 % 5;
        for off in nb.offsets() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
            want = want.max(src as i64 * 7 % 5);
        }
        assert_eq!(acc[0], want);
    });
}

#[test]
fn float_reduction() {
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let mut a = [cart.rank() as f64, 1.0];
        let mut b = a;
        cart.neighbor_reduce(&mut a, |x, y| x + y).unwrap();
        cart.neighbor_reduce_trivial(&mut b, |x, y| x + y).unwrap();
        assert!((a[0] - b[0]).abs() < 1e-12);
        assert_eq!(a[1], 5.0); // 4 neighbors + self
    });
}

#[test]
fn empty_blocks() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let mut acc: [i32; 0] = [];
        cart.neighbor_reduce(&mut acc, |a, b| a + b).unwrap();
        cart.neighbor_reduce_trivial(&mut acc, |a, b| a + b)
            .unwrap();
    });
}

#[test]
fn mesh_falls_back_to_error_for_combining() {
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[false, false], nb.clone()).unwrap();
        let mut acc = [1i32];
        assert!(matches!(
            cart.neighbor_reduce(&mut acc, |a, b| a + b),
            Err(cartcomm::CartError::CombiningNeedsTorus { .. })
        ));
        // trivial works on meshes, skipping pruned neighbors
        let mut acc = [1i32];
        cart.neighbor_reduce_trivial(&mut acc, |a, b| a + b)
            .unwrap();
    });
}
