//! The 0.2.0 API consolidation keeps every pre-redesign entry point alive
//! as a deprecated forwarder. These tests pin that the shims still produce
//! results identical to the consolidated API, so downstream code can
//! migrate at its own pace.
#![allow(deprecated)]

use cartcomm::exec::{BlockLayout, ExecLayouts};
use cartcomm::ops::{Algo, Algorithm, WBlock};
use cartcomm::plan::PlanKind;
use cartcomm::CartComm;
use cartcomm_comm::{FaultSpec, TransportKind, Universe};
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::Datatype;

fn on_torus<R: Send + 'static>(
    f: impl Fn(&CartComm) -> R + Send + Sync + Clone + 'static,
) -> Vec<R> {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    Universe::builder(9).run(move |comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        f(&cart)
    })
}

#[test]
fn trivial_shims_match_algo_trivial() {
    let outs = on_torus(|cart| {
        let t = cart.neighbor_count();
        let m = 3usize;
        let rank = cart.rank();
        let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();

        let mut via_shim = vec![0i32; t * m];
        cart.alltoall_trivial(&send, &mut via_shim).unwrap();
        let mut via_algo = vec![0i32; t * m];
        cart.alltoall(&send, &mut via_algo, Algo::Trivial).unwrap();
        assert_eq!(via_shim, via_algo, "alltoall_trivial");

        let gsend: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
        let mut g_shim = vec![0i32; t * m];
        cart.allgather_trivial(&gsend, &mut g_shim).unwrap();
        let mut g_algo = vec![0i32; t * m];
        cart.allgather(&gsend, &mut g_algo, Algo::Trivial).unwrap();
        assert_eq!(g_shim, g_algo, "allgather_trivial");
        (via_shim, g_shim)
    });
    assert_eq!(outs.len(), 9);
}

#[test]
fn v_and_w_trivial_shims_match() {
    let outs = on_torus(|cart| {
        let t = cart.neighbor_count();
        let rank = cart.rank();
        let counts = vec![2usize; t];
        let displs: Vec<usize> = (0..t).map(|i| i * 2).collect();
        let send: Vec<i32> = (0..t * 2).map(|x| (rank * 100 + x) as i32).collect();

        let mut v_shim = vec![0i32; t * 2];
        cart.alltoallv_trivial(&send, &counts, &displs, &mut v_shim, &counts, &displs)
            .unwrap();
        let mut v_algo = vec![0i32; t * 2];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut v_algo,
            &counts,
            &displs,
            Algo::Trivial,
        )
        .unwrap();
        assert_eq!(v_shim, v_algo, "alltoallv_trivial");

        let vg_displs: Vec<usize> = (0..t).map(|i| i * 2).collect();
        let gsend: Vec<i32> = (0..2).map(|e| (rank * 10 + e) as i32).collect();
        let mut vg_shim = vec![0i32; t * 2];
        cart.allgatherv_trivial(&gsend, &mut vg_shim, 2, &vg_displs)
            .unwrap();
        let mut vg_algo = vec![0i32; t * 2];
        cart.allgatherv(&gsend, &mut vg_algo, 2, &vg_displs, Algo::Trivial)
            .unwrap();
        assert_eq!(vg_shim, vg_algo, "allgatherv_trivial");

        // w variants over raw bytes with contiguous blocks.
        let blk = |i: usize| WBlock::new((i * 4) as i64, 4, &Datatype::byte());
        let spec: Vec<WBlock> = (0..t).map(blk).collect();
        let wsend: Vec<u8> = (0..t * 4).map(|x| (rank * 7 + x) as u8).collect();
        let mut w_shim = vec![0u8; t * 4];
        cart.alltoallw_trivial(&wsend, &spec, &mut w_shim, &spec)
            .unwrap();
        let mut w_algo = vec![0u8; t * 4];
        cart.alltoallw(&wsend, &spec, &mut w_algo, &spec, Algo::Trivial)
            .unwrap();
        assert_eq!(w_shim, w_algo, "alltoallw_trivial");

        let sendblock = blk(0);
        let wgsend: Vec<u8> = (0..4).map(|x| (rank * 3 + x) as u8).collect();
        let mut wg_shim = vec![0u8; t * 4];
        cart.allgatherw_trivial(&wgsend, &sendblock, &mut wg_shim, &spec)
            .unwrap();
        let mut wg_algo = vec![0u8; t * 4];
        cart.allgatherw(&wgsend, &sendblock, &mut wg_algo, &spec, Algo::Trivial)
            .unwrap();
        assert_eq!(wg_shim, wg_algo, "allgatherw_trivial");
        v_shim
    });
    assert_eq!(outs.len(), 9);
}

#[test]
fn plan_accessor_forwarders_match_plans_view() {
    // Isolated store: other tests in this binary (and this one's own
    // shared 3x3 moore shape) would otherwise turn the pinned first miss
    // into a process-wide hit.
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let store = cartcomm::PlanStore::new(4, 8);
    let outs = Universe::builder(9).run(move |comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone())
            .unwrap()
            .with_plan_store(store.clone());
        let cart = &cart;
        // Schedule forwarders return the same shared plans.
        let a_old = cart.alltoall_schedule();
        let a_new = cart.plans().alltoall();
        assert_eq!(a_old.rounds, a_new.rounds);
        assert_eq!(a_old.volume_blocks, a_new.volume_blocks);
        let g_old = cart.allgather_schedule();
        let g_new = cart.plans().allgather();
        assert_eq!(g_old.rounds, g_new.rounds);

        // Compiled-plan forwarder goes through the same cache.
        let t = cart.neighbor_count();
        let m = 4usize;
        let blocks: Vec<BlockLayout> = (0..t)
            .map(|i| BlockLayout::contiguous((i * m) as i64, m))
            .collect();
        let lay = ExecLayouts {
            send: blocks.clone(),
            recv: blocks,
            block_bytes: vec![m; t],
            temp_offsets: Vec::new(),
            temp_sizes: Vec::new(),
        }
        .with_temp_sizes(vec![m; a_new.temp_slots]);
        let cp_old = cart.compiled_plan(PlanKind::Alltoall, lay.clone()).unwrap();
        let cp_new = cart.plans().compiled(PlanKind::Alltoall, lay).unwrap();
        assert!(std::sync::Arc::ptr_eq(&cp_old, &cp_new), "same cached plan");

        // Tuple forwarder mirrors the struct accessor.
        let (h, m) = cart.plan_cache_stats();
        let stats = cart.plans().cache_stats();
        assert_eq!((h, m), (stats.hits, stats.misses));
        (h, m)
    });
    // First compiled_plan call misses, second hits, on every rank.
    for (h, m) in outs {
        assert_eq!((h, m), (1, 1));
    }
}

#[test]
fn launcher_forwarders_match_builder() {
    // The nine 0.2.x `Universe::run*` names forward onto one
    // `Universe::builder` chain each; results must be indistinguishable.
    let sum = |comm: &mut cartcomm_comm::Comm| {
        let mut x = [comm.rank() as u64 + 1];
        comm.allreduce(&mut x, |a, b| a + b).unwrap();
        x[0]
    };

    assert_eq!(Universe::run(4, sum), Universe::builder(4).run(sum));
    assert_eq!(
        Universe::run_on(TransportKind::InProcess, 4, sum).unwrap(),
        Universe::builder(4)
            .on(TransportKind::InProcess)
            .try_run(sum)
            .unwrap()
    );
    assert_eq!(
        Universe::run_with_stack(4, 4 << 20, sum),
        Universe::builder(4).stack_bytes(4 << 20).run(sum)
    );
    assert_eq!(
        Universe::run_with_faults(4, FaultSpec::new(7), sum),
        Universe::builder(4).faults(FaultSpec::new(7)).run(sum)
    );
    assert_eq!(
        Universe::run_on_with_faults(TransportKind::InProcess, 4, FaultSpec::new(7), sum).unwrap(),
        vec![10; 4]
    );
}

#[test]
fn profiled_launcher_forwarders_match_builder() {
    let mark = |comm: &mut cartcomm_comm::Comm| {
        comm.obs().emit(
            comm.rank(),
            cartcomm_comm::obs::TraceEvent::PoolHit { bytes: comm.rank() },
        );
        comm.rank()
    };
    let old = Universe::run_profiled(3, 64, mark);
    let new = Universe::builder(3).profiled(64).run(mark);
    assert_eq!(old.results, new.results);
    assert_eq!(old.traces.len(), new.traces.len());
    assert!(old.traces.iter().all(|t| !t.is_empty()));

    let on = Universe::run_profiled_on(TransportKind::InProcess, 3, 64, mark).unwrap();
    assert_eq!(on.results, vec![0, 1, 2]);

    let faulty = Universe::run_profiled_with_faults(3, 64, FaultSpec::new(9), mark);
    assert_eq!(faulty.results, vec![0, 1, 2]);

    let both = Universe::run_profiled_on_with_faults(
        TransportKind::InProcess,
        3,
        64,
        FaultSpec::new(9),
        mark,
    )
    .unwrap();
    assert_eq!(both.results, vec![0, 1, 2]);
}

#[test]
fn algorithm_alias_still_names_algo() {
    // The deprecated `Algorithm` name is a type alias for `Algo`, so old
    // signatures keep compiling and the variants are interchangeable.
    let old: Algorithm = Algorithm::Combining;
    let new: Algo = old;
    assert_eq!(new, Algo::Combining);
    let outs = on_torus(move |cart| {
        let handle = cart.alltoall_init::<i32>(2, old).unwrap();
        handle.is_combining()
    });
    assert!(outs.into_iter().all(|c| c));
}
