//! Chaos suite: Cartesian collectives under a deterministic, seeded fault
//! plane must stay **byte-identical** to the fault-free reference, keep
//! the analytical round count `C`, and terminate — for every executor
//! (trivial, interpreted combining, compiled persistent).
//!
//! Every scenario runs under a fixed set of seeds plus an optional
//! `CHAOS_SEED` environment override (CI passes `$GITHUB_RUN_ID`). On
//! failure the captured output names the offending seed; reproduce any
//! failure locally with
//!
//! ```text
//! CHAOS_SEED=<seed> cargo test --release --test chaos_exchange
//! ```
//!
//! Fault rules are scoped to the Cartesian data-tag range so topology
//! setup (internal contexts) runs clean — the chaos hits exactly the
//! schedule traffic the paper's algorithms generate.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{CommError, FaultSpec, LinkSel, RetryPolicy, Tag, Universe};
use cartcomm_topo::{CartTopology, RelNeighborhood};
use std::time::Duration;

/// The Cartesian data tags (compiled rounds at `0x7A00_0000`, trivial
/// alltoall/allgather at `0x7B.._0000`/`0x7C.._0000`, reductions at
/// `0x7E00_0000`) all fall in this half-open range.
const CART_TAGS_LO: Tag = 0x7A00_0000;
const CART_TAGS_HI: Tag = 0x7F00_0000;

/// A link selector covering all Cartesian schedule traffic and nothing
/// else. [`CartComm`] duplicates the communicator into a private context,
/// so the rules scope by data-tag range (the internal setup collectives
/// use tags from `RESERVED_TAG_BASE = 0xF000_0000` up and stay clean).
fn cart_traffic() -> LinkSel {
    LinkSel::any().tags(CART_TAGS_LO, CART_TAGS_HI)
}

/// Eight pinned seeds, plus `CHAOS_SEED` from the environment when set
/// (CI injects the run id there so every pipeline run explores new
/// chaos while staying reproducible).
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![
        0x0000_0001,
        0x00C0_FFEE,
        0xDEAD_BEEF,
        0x5EED_0003,
        0x0BAD_CAB1,
        0x0FAB_0005,
        0x1234_5678,
        0xA5A5_A5A5,
    ];
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let v = s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("CHAOS_SEED must be a u64, got {s:?}: {e}"));
        seeds.push(v);
    }
    seeds
}

/// Retry schedule for the chaos runs: patient enough that acknowledgements
/// under scheduler noise rarely trigger spurious retransmissions, fast
/// enough to keep the suite snappy.
fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(25),
        factor: 2.0,
        max: Duration::from_millis(250),
    }
}

fn payload(rank: usize, block: usize, e: usize) -> i32 {
    (rank * 1_000_000 + block * 1_000 + e) as i32
}

/// The fault-free reference: block `i` of rank `r`'s receive buffer holds
/// `payload(src, i, ·)` where `src` is the rank at offset `-N[i]`.
fn expected_alltoall(topo: &CartTopology, nb: &RelNeighborhood, rank: usize, m: usize) -> Vec<i32> {
    let mut out = vec![0i32; nb.len() * m];
    for (i, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for e in 0..m {
                out[i * m + e] = payload(src, i, e);
            }
        }
    }
    out
}

/// Run one seeded chaos scenario: all three executors on a `dims` torus
/// with neighborhood `nb`, asserting each is byte-identical to the
/// fault-free reference and that the combining executor still runs in
/// exactly `C` rounds. Panics (with the seed in the captured output) on
/// any divergence; returns each rank's `(retransmits, dup_drops)` delta
/// plus the plane's final stats for scenario-specific accounting.
fn run_chaos_alltoall(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    spec: FaultSpec,
    policy: RetryPolicy,
    seed: u64,
) -> (Vec<(u64, u64)>, cartcomm_comm::FaultStats) {
    eprintln!(
        "chaos scenario: dims={dims:?} t={} m={m} seed={seed} (rerun: CHAOS_SEED={seed})",
        nb.len()
    );
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let topo = CartTopology::new(dims, &periods).unwrap();
    let t = nb.len();
    let outs = Universe::builder(p).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(policy));
        let cart = CartComm::create(comm, dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
        let expect = expected_alltoall(&topo, nb, rank, m);
        let before = cart.comm().metrics();

        let mut recv = vec![-1i32; t * m];
        cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap();
        assert_eq!(
            recv, expect,
            "trivial alltoall diverged, rank {rank} seed {seed}"
        );

        let c = cart.plans().alltoall().rounds as u64;
        let pre = cart.comm().metrics();
        let mut recv2 = vec![-1i32; t * m];
        cart.alltoall(&send, &mut recv2, Algo::Combining).unwrap();
        assert_eq!(
            recv2, expect,
            "combining alltoall diverged, rank {rank} seed {seed}"
        );
        let d = cart.comm().metrics().since(&pre);
        assert_eq!(
            d.rounds_completed, c,
            "combining must keep C rounds under chaos, rank {rank} seed {seed}"
        );

        let mut handle = cart.alltoall_init::<i32>(m, Algo::Combining).unwrap();
        let mut recv3 = vec![-1i32; t * m];
        handle.execute_typed(&cart, &send, &mut recv3).unwrap();
        assert_eq!(
            recv3, expect,
            "compiled alltoall diverged, rank {rank} seed {seed}"
        );

        // Rendezvous on the clean internal context before any rank exits,
        // so no late retransmission can hit a torn-down channel.
        cart.comm().barrier().unwrap();
        let total = cart.comm().metrics().since(&before);
        let stats = cart.comm().fault_stats().unwrap();
        ((total.retransmits, total.dup_drops), stats)
    });
    let stats = outs[0].1;
    (outs.into_iter().map(|(d, _)| d).collect(), stats)
}

/// Dense combined adversity (drops + duplicates + reorder) on the paper's
/// canonical 2-D Moore neighborhood, across the full seed set.
#[test]
fn moore2d_survives_combined_chaos_byte_identical() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    for seed in chaos_seeds() {
        let spec = FaultSpec::new(seed)
            .drop_rate(cart_traffic(), 0.15)
            .dup_rate(cart_traffic(), 0.08, 2)
            .reorder_rate(cart_traffic(), 0.20);
        run_chaos_alltoall(&[3, 3], &nb, 4, spec, chaos_policy(), seed);
    }
}

/// 3-D von Neumann neighborhood under heavy loss plus duplicates.
#[test]
fn von_neumann_3d_survives_drop_and_dup() {
    let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
    for &seed in &chaos_seeds()[..3] {
        let spec = FaultSpec::new(seed)
            .drop_rate(cart_traffic(), 0.20)
            .dup_rate(cart_traffic(), 0.10, 1);
        run_chaos_alltoall(&[2, 2, 2], &nb, 5, spec, chaos_policy(), seed);
    }
}

/// 3-D Moore neighborhood (t = 26): delay-by-polls plus reordering —
/// the sequencing layer must restore posting order without retransmits
/// being required at all.
#[test]
fn moore3d_absorbs_delay_and_reorder() {
    let nb = RelNeighborhood::moore(3, 1).unwrap();
    assert_eq!(nb.len(), 26);
    for &seed in &chaos_seeds()[..2] {
        let spec = FaultSpec::new(seed)
            .delay_rate(cart_traffic(), 0.30, 3)
            .reorder_rate(cart_traffic(), 0.30);
        let (deltas, stats) = run_chaos_alltoall(&[2, 2, 2], &nb, 3, spec, chaos_policy(), seed);
        assert_eq!(stats.drops, 0, "delay/reorder spec must not drop");
        // Nothing was lost, so dedup may only fire on (rare) spurious
        // retransmissions — never more often than we retransmitted.
        // Retransmits count on the sender and absorbs on the receiver,
        // so the invariant only holds summed across ranks.
        let retx: u64 = deltas.iter().map(|&(r, _)| r).sum();
        let dups: u64 = deltas.iter().map(|&(_, d)| d).sum();
        assert!(
            dups <= retx,
            "{dups} dedup absorbs but only {retx} retransmits, seed {seed}"
        );
    }
}

/// Retransmission accounting under pure loss: every plane drop forces
/// exactly one retransmission, so at quiescence
/// `Σ retransmits = drops + spurious`, where each spurious retransmission
/// (deadline raced an in-flight ack) is visible as a receiver dedup
/// absorb. With a patient base backoff the spurious term is almost always
/// zero, making this equality in practice — and the sandwich is exact
/// regardless of scheduler noise.
#[test]
fn retransmits_match_injected_drops_under_pure_loss() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let policy = RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(150),
        factor: 2.0,
        max: Duration::from_millis(600),
    };
    for &seed in &chaos_seeds()[..3] {
        let spec = FaultSpec::new(seed).drop_rate(cart_traffic(), 0.20);
        let (deltas, stats) = run_chaos_alltoall(&[3, 3], &nb, 4, spec, policy, seed);
        let retx: u64 = deltas.iter().map(|d| d.0).sum();
        let dups: u64 = deltas.iter().map(|d| d.1).sum();
        assert!(
            stats.drops > 0,
            "seed {seed} injected no drops — spec inert?"
        );
        assert!(
            retx >= stats.drops,
            "every drop must be retransmitted: {retx} retransmits < {} drops, seed {seed}",
            stats.drops
        );
        assert!(
            retx - stats.drops <= dups,
            "unaccounted retransmissions: {retx} retransmits, {} drops, {dups} dedups, seed {seed}",
            stats.drops
        );
    }
}

/// A fully dead directed link surfaces [`CommError::PeerUnreachable`] on
/// both endpoints within the retry bound — no hang, no panic. The trivial
/// executor is the paper's Listing-4 per-neighbor sendrecv loop, so (as
/// in real MPI) the failure *cascades*: ranks whose round-order
/// dependency chain passes through the stalled endpoints also abort with
/// `PeerUnreachable`, while ranks with clean chains finish with correct
/// bytes. The hard guarantees pinned here: everyone terminates, the dead
/// link's endpoints blame each other exactly, every other failure is a
/// `PeerUnreachable` (never a hang, wrong data, or panic).
#[test]
fn dead_link_surfaces_peer_unreachable_within_bound() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 4usize;
    let policy = RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(10),
        factor: 2.0,
        max: Duration::from_millis(80),
    };
    let spec = FaultSpec::new(0x00DE_AD11)
        .drop_rate(LinkSel::link(0, 1).tags(CART_TAGS_LO, CART_TAGS_HI), 1.0);
    let topo = CartTopology::new(&dims, &[true, true]).unwrap();
    let outs = Universe::builder(9).faults(spec).run(|comm| {
        comm.set_default_reliability(Some(policy));
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
        let mut recv = vec![-1i32; t * m];
        let res = cart.alltoall(&send, &mut recv, Algo::Trivial);
        if res.is_ok() {
            assert_eq!(recv, expected_alltoall(&topo, &nb, rank, m));
        }
        // Keep every rank alive until all exchanges (and their retry
        // tails) have wound down.
        cart.comm().barrier().unwrap();
        res
    });
    let mut survivors = 0;
    for (rank, res) in outs.into_iter().enumerate() {
        match rank {
            // Sender side of the dead link: retries exhaust.
            0 => match res {
                Err(cartcomm::CartError::Comm(CommError::PeerUnreachable { peer, attempts })) => {
                    assert_eq!(peer, 1);
                    assert!(attempts <= policy.attempts);
                }
                other => panic!("rank 0 expected PeerUnreachable(1), got {other:?}"),
            },
            // Receiver side: progress budget expires waiting on rank 0.
            1 => match res {
                Err(cartcomm::CartError::Comm(CommError::PeerUnreachable { peer, .. })) => {
                    assert_eq!(peer, 0)
                }
                other => panic!("rank 1 expected PeerUnreachable(0), got {other:?}"),
            },
            // Elsewhere: either a clean finish (bytes already verified in
            // the rank closure) or a cascaded PeerUnreachable.
            _ => match res {
                Ok(()) => survivors += 1,
                Err(cartcomm::CartError::Comm(CommError::PeerUnreachable { .. })) => {}
                other => panic!("rank {rank}: unexpected outcome {other:?}"),
            },
        }
    }
    // The round-order dependency analysis for this topology leaves at
    // least one rank whose chain never crosses the stalled endpoints.
    assert!(survivors >= 1, "some rank off the dead link must finish");
}
