//! Edge cases of schedule execution: forwarding through non-contiguous
//! receive layouts, overlapping send blocks, zero-size blocks, and
//! error paths.

use cartcomm::ops::{Algo, WBlock};
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};
use cartcomm_types::Datatype;

/// A 3-hop block whose receive layout is a strided vector: the combining
/// schedule receives the first hop *into the receive buffer's strided
/// layout* (odd remaining hops) and must gather from that layout when
/// forwarding — the subtle zero-copy path of Algorithm 1.
#[test]
fn multi_hop_forwarding_through_strided_recv_layout() {
    let nb = RelNeighborhood::new(3, vec![vec![1, 1, 1]]).unwrap();
    let m = 4usize; // elements per block
    let dims = [3usize, 3, 3];
    let topo = CartTopology::torus(&dims).unwrap();
    // recv layout: m elements strided by 3 (occupying 3m-2 slots)
    let span = 3 * m - 2;
    let strided = Datatype::vector(m, 1, 3, &Datatype::int());
    let contig = Datatype::contiguous(m, &Datatype::int());
    Universe::builder(27).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true; 3], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let send: Vec<i32> = (0..m as i32).map(|e| rank * 100 + e).collect();
        let sendspec = vec![WBlock::new(0, 1, &contig)];
        let recvspec = vec![WBlock::new(0, 1, &strided)];
        let mut recv = vec![-1i32; span];
        {
            let sb = cartcomm_types::cast_slice(&send);
            let rb = cartcomm_types::cast_slice_mut(&mut recv);
            cart.alltoallw(sb, &sendspec, rb, &recvspec, Algo::Combining)
                .unwrap();
        }
        let src = topo
            .rank_of_offset(cart.rank(), &[-1, -1, -1])
            .unwrap()
            .unwrap() as i32;
        for e in 0..m {
            assert_eq!(recv[3 * e], src * 100 + e as i32, "strided element {e}");
        }
        // gaps untouched
        assert_eq!(recv[1], -1);
        assert_eq!(recv[2], -1);
    });
}

/// Overlapping *send* layouts are legal (the same interior cell feeding
/// two neighbors), as in the Figure 1 stencil where corners overlap
/// rows/columns.
#[test]
fn overlapping_send_blocks_are_legal() {
    let nb = RelNeighborhood::new(1, vec![vec![1], vec![-1]]).unwrap();
    Universe::builder(4).run(|comm| {
        let cart = CartComm::create(comm, &[4], &[true], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let data: Vec<i32> = vec![rank * 10, rank * 10 + 1];
        // both neighbors receive the SAME two elements
        let whole = Datatype::contiguous(2, &Datatype::int());
        let sendspec = vec![WBlock::new(0, 1, &whole), WBlock::new(0, 1, &whole)];
        let recvspec = vec![WBlock::new(0, 1, &whole), WBlock::new(8, 1, &whole)];
        let mut recv = vec![0i32; 4];
        {
            let sb = cartcomm_types::cast_slice(&data);
            let rb = cartcomm_types::cast_slice_mut(&mut recv);
            cart.alltoallw(sb, &sendspec, rb, &recvspec, Algo::Combining)
                .unwrap();
        }
        let left = ((rank + 3) % 4) * 10;
        let right = ((rank + 1) % 4) * 10;
        assert_eq!(recv, vec![left, left + 1, right, right + 1]);
    });
}

/// Zero-count blocks mixed with non-empty ones in a v-exchange.
#[test]
fn zero_count_blocks_in_alltoallv() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    // every other block empty
    let counts: Vec<usize> = (0..t).map(|i| if i % 2 == 0 { 2 } else { 0 }).collect();
    let displs: Vec<usize> = counts
        .iter()
        .scan(0usize, |a, &c| {
            let v = *a;
            *a += c;
            Some(v)
        })
        .collect();
    let total: usize = counts.iter().sum();
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..total).map(|x| (rank * 50 + x) as i32).collect();
        let mut a = vec![0i32; total];
        let mut b = vec![0i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut a,
            &counts,
            &displs,
            Algo::Combining,
        )
        .unwrap();
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut b,
            &counts,
            &displs,
            Algo::Trivial,
        )
        .unwrap();
        assert_eq!(a, b);
        for (i, &c) in counts.iter().enumerate() {
            if c > 0 {
                let neg: Vec<i64> = nb.offset(i).iter().map(|&x| -x).collect();
                let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
                assert_eq!(a[displs[i]], (src * 50 + displs[i]) as i32);
            }
        }
    });
}

/// Offsets that wrap to self on a small torus, with datatypes.
#[test]
fn wrap_to_self_with_w_types() {
    // On a 2-torus, offset (2) wraps to self: the combining schedule sends
    // a real message to itself.
    let nb = RelNeighborhood::new(1, vec![vec![2], vec![1]]).unwrap();
    Universe::builder(2).run(|comm| {
        let cart = CartComm::create(comm, &[2], &[true], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let send = vec![rank * 7, rank * 7 + 1];
        let elem2 = Datatype::contiguous(1, &Datatype::int());
        let sendspec = vec![WBlock::new(0, 1, &elem2), WBlock::new(4, 1, &elem2)];
        let recvspec = vec![WBlock::new(0, 1, &elem2), WBlock::new(4, 1, &elem2)];
        let mut recv = vec![0i32; 2];
        {
            let sb = cartcomm_types::cast_slice(&send);
            let rb = cartcomm_types::cast_slice_mut(&mut recv);
            cart.alltoallw(sb, &sendspec, rb, &recvspec, Algo::Combining)
                .unwrap();
        }
        // block 0 from self (offset 2 ≡ 0), block 1 from the other rank
        assert_eq!(recv[0], rank * 7);
        assert_eq!(recv[1], (1 - rank) * 7 + 1);
    });
}

/// Error paths: wrong spec lengths and mismatched block sizes.
#[test]
fn ops_error_paths() {
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let int1 = Datatype::int();
        // too few recv specs
        let s4: Vec<WBlock> = (0..4).map(|i| WBlock::new(i * 4, 1, &int1)).collect();
        let s3: Vec<WBlock> = (0..3).map(|i| WBlock::new(i * 4, 1, &int1)).collect();
        let buf = vec![0u8; 64];
        let mut out = vec![0u8; 64];
        assert!(cart
            .alltoallw(&buf, &s4, &mut out, &s3, Algo::Combining)
            .is_err());
        // mismatched per-index sizes
        let big: Vec<WBlock> = (0..4).map(|i| WBlock::new(i * 8, 2, &int1)).collect();
        assert!(matches!(
            cart.alltoallw(&buf, &s4, &mut out, &big, Algo::Combining),
            Err(cartcomm::CartError::BlockSizeMismatch { .. })
        ));
        // allgatherv displacement list too short
        let send = vec![0i32; 2];
        let mut recv = vec![0i32; 8];
        assert!(cart
            .allgatherv(&send, &mut recv, 2, &[0, 2, 4], Algo::Combining)
            .is_err());
        // non-uniform allgather sizes rejected for combining
        let sb = WBlock::new(0, 2, &int1);
        let rs: Vec<WBlock> = (0..4).map(|i| WBlock::new(i * 8, 2, &int1)).collect();
        let mut ok_out = vec![0u8; 64];
        assert!(cart
            .allgatherw(&buf[..8], &sb, &mut ok_out, &rs, Algo::Combining)
            .is_ok());
    });
}

/// In-place persistent execution for a regular alltoall (send == recv
/// buffer, disjoint slots guaranteed by the plan's buffer alternation
/// plus phase-wise gather-before-scatter).
#[test]
fn persistent_in_place_roundtrip() {
    let nb = RelNeighborhood::new(1, vec![vec![1], vec![-1]]).unwrap();
    Universe::builder(4).run(|comm| {
        let cart = CartComm::create(comm, &[4], &[true], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let mut h = cart.alltoall_init::<i32>(1, Algo::Combining).unwrap();
        let mut buf: Vec<i32> = vec![rank * 2, rank * 2 + 1];
        {
            let bytes = cartcomm_types::cast_slice_mut(&mut buf);
            h.execute_in_place(&cart, bytes).unwrap();
        }
        // block 0 (offset +1) arrives from rank-1's block 0; block 1
        // (offset -1) arrives from rank+1's block 1
        let from_left = ((rank + 3) % 4) * 2;
        let from_right = ((rank + 1) % 4) * 2 + 1;
        assert_eq!(buf, vec![from_left, from_right]);

        // trivial algorithm in place snapshots correctly too
        let mut h2 = cart.alltoall_init::<i32>(1, Algo::Trivial).unwrap();
        let mut buf2: Vec<i32> = vec![rank * 2, rank * 2 + 1];
        {
            let bytes = cartcomm_types::cast_slice_mut(&mut buf2);
            h2.execute_in_place(&cart, bytes).unwrap();
        }
        assert_eq!(buf2, buf);
    });
}
