//! Property-based tests on the schedule algorithms: for arbitrary
//! neighborhoods, the computed plans must satisfy the structural
//! invariants of Propositions 3.1–3.3 and route every block correctly
//! (checked symbolically, without running a universe).

use cartcomm::schedule::{allgather_plan_with_order, alltoall_plan, DimOrder};
use cartcomm::{Loc, Plan};
use cartcomm_topo::RelNeighborhood;
use proptest::prelude::*;
use std::collections::HashMap;

fn arb_neighborhood() -> impl Strategy<Value = RelNeighborhood> {
    (1usize..5).prop_flat_map(|d| {
        proptest::collection::vec(proptest::collection::vec(-4i64..5, d..=d), 0..24)
            .prop_map(move |offsets| RelNeighborhood::new(d, offsets).expect("valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Prop 3.2: the alltoall plan has exactly C rounds and volume V.
    #[test]
    fn alltoall_counts(nb in arb_neighborhood()) {
        let plan = alltoall_plan(&nb);
        prop_assert_eq!(plan.validate(), Ok(()));
        prop_assert_eq!(plan.rounds, nb.combining_rounds());
        prop_assert_eq!(plan.volume_blocks, nb.alltoall_volume());
        prop_assert_eq!(plan.t, nb.len());
    }

    /// Every alltoall block makes exactly z_i hops along its own non-zero
    /// dimensions in increasing dimension order and lands in Recv[i].
    #[test]
    fn alltoall_routing(nb in arb_neighborhood()) {
        let plan = alltoall_plan(&nb);
        let hops = nb.hops();
        let t = nb.len();
        let mut loc: Vec<(Loc, usize)> = (0..t).map(|i| (Loc::Send, i)).collect();
        let mut made = vec![0usize; t];
        for (k, phase) in plan.phases.iter().enumerate() {
            for round in &phase.rounds {
                let dim = round.offset.iter().position(|&c| c != 0).expect("one axis");
                prop_assert_eq!(dim, k);
                for (j, &b) in round.block_ids.iter().enumerate() {
                    prop_assert_eq!(nb.offset(b)[dim], round.offset[dim]);
                    prop_assert_eq!((round.sends[j].loc, round.sends[j].slot), loc[b]);
                    loc[b] = (round.recvs[j].loc, round.recvs[j].slot);
                    made[b] += 1;
                }
            }
        }
        for i in 0..t {
            prop_assert_eq!(made[i], hops[i]);
            if hops[i] > 0 {
                prop_assert_eq!(loc[i], (Loc::Recv, i));
            }
        }
        // self blocks handled by copies
        let copies = plan.all_copies().count();
        prop_assert_eq!(copies, hops.iter().filter(|&&z| z == 0).count());
    }

    /// Prop 3.3: every dimension order yields C rounds, validates, and
    /// routes every origin's copy to the right receive slot (symbolic
    /// origin tracking).
    #[test]
    fn allgather_routing_all_orders(nb in arb_neighborhood()) {
        for order in [DimOrder::IncreasingCk, DimOrder::Given, DimOrder::DecreasingCk] {
            let plan = allgather_plan_with_order(&nb, order);
            prop_assert_eq!(plan.validate(), Ok(()));
            prop_assert_eq!(plan.rounds, nb.combining_rounds());
            check_allgather(&nb, &plan)?;
            // volume bounded: at least max(C_k...) hmm — at least the
            // number of distinct offsets reached in one hop; at most t*d.
            prop_assert!(plan.volume_blocks <= nb.len() * nb.ndims().max(1));
        }
    }

    /// The increasing-C_k heuristic never exceeds the worst order by more
    /// than the tree depth factor (sanity bound), and matches Moore
    /// closed-forms when applicable.
    #[test]
    fn allgather_volume_bounds(nb in arb_neighborhood()) {
        let inc = allgather_plan_with_order(&nb, DimOrder::IncreasingCk).volume_blocks;
        let dec = allgather_plan_with_order(&nb, DimOrder::DecreasingCk).volume_blocks;
        // both route every distinct neighbor at least once
        let mut distinct: Vec<_> = nb.offsets().iter().filter(|o| o.iter().any(|&c| c != 0)).collect();
        distinct.sort();
        distinct.dedup();
        prop_assert!(inc >= distinct.len());
        prop_assert!(dec >= distinct.len());
    }

    /// Round wire sizing is consistent: per round, block_ids determine the
    /// bytes; totals equal V * m for uniform blocks.
    #[test]
    fn round_bytes_consistency(nb in arb_neighborhood(), m in 0usize..64) {
        let plan = alltoall_plan(&nb);
        let bytes = plan.round_bytes(&|_| m);
        prop_assert_eq!(bytes.len(), plan.rounds);
        prop_assert_eq!(bytes.iter().sum::<usize>(), plan.volume_blocks * m);
    }
}

/// Symbolic allgather check (shared with the unit tests): track the origin
/// offset of each slot's copy; every Recv[j] must end with origin N[j].
fn check_allgather(
    nb: &RelNeighborhood,
    plan: &Plan,
) -> Result<(), proptest::test_runner::TestCaseError> {
    let d = nb.ndims();
    let mut recv_path: HashMap<usize, Vec<i64>> = HashMap::new();
    let mut temp_path: HashMap<usize, Vec<i64>> = HashMap::new();
    let read = |loc: Loc,
                slot: usize,
                recv_path: &HashMap<usize, Vec<i64>>,
                temp_path: &HashMap<usize, Vec<i64>>|
     -> Option<Vec<i64>> {
        match loc {
            Loc::Send => Some(vec![0i64; d]),
            Loc::Recv => recv_path.get(&slot).cloned(),
            Loc::Temp => temp_path.get(&slot).cloned(),
        }
    };
    for phase in &plan.phases {
        for copy in &phase.copies {
            let v = read(copy.from.loc, copy.from.slot, &recv_path, &temp_path)
                .ok_or_else(|| TestCaseError::fail("copy from unfilled slot"))?;
            match copy.to.loc {
                Loc::Recv => {
                    recv_path.insert(copy.to.slot, v);
                }
                Loc::Temp => {
                    temp_path.insert(copy.to.slot, v);
                }
                Loc::Send => return Err(TestCaseError::fail("write to send buffer")),
            }
        }
        for round in &phase.rounds {
            for j in 0..round.block_ids.len() {
                let mut v = read(
                    round.sends[j].loc,
                    round.sends[j].slot,
                    &recv_path,
                    &temp_path,
                )
                .ok_or_else(|| TestCaseError::fail("send of unfilled slot"))?;
                for (k, &o) in round.offset.iter().enumerate() {
                    v[k] += o;
                }
                match round.recvs[j].loc {
                    Loc::Recv => {
                        recv_path.insert(round.recvs[j].slot, v);
                    }
                    Loc::Temp => {
                        temp_path.insert(round.recvs[j].slot, v);
                    }
                    Loc::Send => return Err(TestCaseError::fail("write to send buffer")),
                }
            }
        }
    }
    for (j, off) in nb.offsets().iter().enumerate() {
        let got = recv_path
            .get(&j)
            .ok_or_else(|| TestCaseError::fail(format!("recv {j} never filled")))?;
        prop_assert_eq!(&got[..], &off[..]);
    }
    Ok(())
}
