//! Observability pins the paper's accounting: with a trace sink attached,
//! the round events a combining collective emits must match the schedule's
//! analytical round count `C = Σ_k C_k` (Prop. 3.2) exactly, and the wire
//! bytes they carry must sum to the analytical volume `V·m` (Prop. 3.3) —
//! for every neighborhood family the paper evaluates.

use std::sync::Arc;

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::obs::{RingBufferSink, TraceEvent};
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;

/// Per-rank observation of one traced collective run: `(rounds_started,
/// rounds_ended, start_wire_bytes, end_wire_bytes)` from this rank's own
/// trace ring.
type Observed = (usize, usize, usize, usize);

/// Run one combining collective on a `dims` torus with tracing enabled and
/// return each rank's observed rounds/bytes plus the plan's `(C, V)`.
fn observe_combining(
    dims: &[usize],
    nb: &RelNeighborhood,
    m: usize,
    allgather: bool,
) -> (Vec<Observed>, usize, usize) {
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let t = nb.len();
    let nb = nb.clone();
    let dims = dims.to_vec();
    let mut cv = (0usize, 0usize);
    let outs = Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let plan = if allgather {
            cart.plans().allgather()
        } else {
            cart.plans().alltoall()
        };
        let (c, v) = (plan.rounds, plan.volume_blocks);

        let sink = Arc::new(RingBufferSink::new(4 * (c + v) + 64));
        cart.comm().obs().attach_sink(sink.clone());

        if allgather {
            let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
            let mut recv = vec![0i32; t * m];
            cart.allgather(&send, &mut recv, Algo::Combining).unwrap();
        } else {
            let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
            let mut recv = vec![0i32; t * m];
            cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        }
        cart.comm().obs().detach_sink();

        let mut obs: Observed = (0, 0, 0, 0);
        for rec in sink.snapshot() {
            assert_eq!(rec.rank, rank, "sink only sees its own rank's events");
            match rec.event {
                TraceEvent::RoundStart { wire_bytes, .. } => {
                    obs.0 += 1;
                    obs.2 += wire_bytes;
                }
                TraceEvent::RoundEnd { wire_bytes, .. } => {
                    obs.1 += 1;
                    obs.3 += wire_bytes;
                }
                _ => {}
            }
        }
        (obs, c, v)
    });
    let mut per_rank = Vec::with_capacity(p);
    for (obs, c, v) in outs {
        cv = (c, v);
        per_rank.push(obs);
    }
    (per_rank, cv.0, cv.1)
}

/// The shared assertion: every rank observed exactly `C` rounds and `V·m`
/// wire bytes, in both directions.
fn assert_matches_cv(dims: &[usize], nb: &RelNeighborhood, m: usize, allgather: bool) {
    let (per_rank, c, v) = observe_combining(dims, nb, m, allgather);
    let m_bytes = m * std::mem::size_of::<i32>();
    for (rank, (starts, ends, sent, recvd)) in per_rank.into_iter().enumerate() {
        assert_eq!(starts, c, "rank {rank}: observed rounds != C");
        assert_eq!(ends, c, "rank {rank}: completed rounds != C");
        assert_eq!(sent, v * m_bytes, "rank {rank}: sent wire bytes != V*m");
        assert_eq!(recvd, v * m_bytes, "rank {rank}: recv wire bytes != V*m");
    }
}

#[test]
fn moore_2d_rounds_match_c_and_volume() {
    // 9-point stencil on a 3x3 torus: t = 8, C = 4 (Table 1).
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    assert_matches_cv(&[3, 3], &nb, 3, false);
    assert_matches_cv(&[3, 3], &nb, 2, true);
}

#[test]
fn moore_3d_rounds_match_c_and_volume() {
    // 27-point stencil on a 3x3x3 torus: t = 26, C = 13.
    let nb = RelNeighborhood::moore(3, 1).unwrap();
    assert_matches_cv(&[3, 3, 3], &nb, 2, false);
    assert_matches_cv(&[3, 3, 3], &nb, 1, true);
}

#[test]
fn von_neumann_3d_rounds_match_c_and_volume() {
    // 7-point stencil (minus self) on a 3x3x4 torus: t = 6, C = 6, V = 6.
    let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
    assert_matches_cv(&[3, 3, 4], &nb, 4, false);
    assert_matches_cv(&[3, 3, 4], &nb, 2, true);
}

#[test]
fn asymmetric_stencil_rounds_match_c_and_volume() {
    // An irregular (but isomorphic) neighborhood: upwind-biased offsets.
    let nb = RelNeighborhood::new(
        2,
        vec![vec![1, 0], vec![2, 0], vec![0, 1], vec![1, 1], vec![-1, 0]],
    )
    .unwrap();
    assert_matches_cv(&[4, 4], &nb, 3, false);
}

#[test]
fn trivial_rounds_match_t_and_direct_volume() {
    // The trivial algorithm's accounting: t rounds, t·m bytes each way.
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 3usize;
    let outs = Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let sink = Arc::new(RingBufferSink::new(256));
        cart.comm().obs().attach_sink(sink.clone());
        let send: Vec<i32> = (0..t * m).map(|x| x as i32).collect();
        let mut recv = vec![0i32; t * m];
        cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap();
        cart.comm().obs().detach_sink();
        let mut starts = 0usize;
        let mut bytes = 0usize;
        for rec in sink.snapshot() {
            if let TraceEvent::RoundStart { wire_bytes, .. } = rec.event {
                starts += 1;
                bytes += wire_bytes;
            }
        }
        (starts, bytes)
    });
    for (rank, (starts, bytes)) in outs.into_iter().enumerate() {
        assert_eq!(starts, t, "rank {rank}: trivial rounds != t");
        assert_eq!(bytes, t * m * 4, "rank {rank}: trivial volume != t*m");
    }
}

#[test]
fn combining_beats_trivial_round_count() {
    // The point of the paper, observed: C < t for the Moore family.
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let (per_rank, c, _) = observe_combining(&[3, 3], &nb, 1, false);
    assert!(c < nb.len(), "C = {c} must beat t = {}", nb.len());
    assert!(per_rank.iter().all(|&(s, ..)| s == c));
}

#[test]
fn plan_cache_events_fire_on_hit_and_miss() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    // Isolated store: concurrent tests in this binary share the global
    // PlanStore and would turn this test's pinned miss into a hit.
    let store = cartcomm::PlanStore::new(4, 8);
    let outs = Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone())
            .unwrap()
            .with_plan_store(store.clone());
        let sink = Arc::new(RingBufferSink::new(1024));
        cart.comm().obs().attach_sink(sink.clone());
        let send: Vec<i32> = (0..t).map(|x| x as i32).collect();
        let mut recv = vec![0i32; t];
        // First call compiles (miss), second reuses (hit).
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        cart.comm().obs().detach_sink();
        let mut hits = 0usize;
        let mut misses = 0usize;
        for rec in sink.snapshot() {
            match rec.event {
                TraceEvent::PlanCacheHit { .. } => hits += 1,
                TraceEvent::PlanCacheMiss { .. } => misses += 1,
                _ => {}
            }
        }
        let stats = cart.plans().cache_stats();
        (hits, misses, stats.hits, stats.misses)
    });
    for (rank, (hits, misses, chits, cmisses)) in outs.into_iter().enumerate() {
        assert_eq!(misses, 1, "rank {rank}: one compile expected");
        assert_eq!(hits, 1, "rank {rank}: one cache hit expected");
        assert_eq!((chits, cmisses), (1, 1), "rank {rank}: counter mismatch");
    }
}

#[test]
fn metrics_counters_match_trace() {
    // The always-on counters and the trace agree on the same run; the
    // window is expressed as a MetricsDelta rather than hand-subtracted
    // counter fields.
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    let t = nb.len();
    let outs = Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let before = cart.comm().obs().snapshot();
        let sink = Arc::new(RingBufferSink::new(256));
        cart.comm().obs().attach_sink(sink.clone());
        let send: Vec<i32> = (0..t).map(|x| x as i32).collect();
        let mut recv = vec![0i32; t];
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        cart.comm().obs().detach_sink();
        let delta = cart.comm().obs().metrics().delta_since(&before);
        let traced_rounds = sink
            .snapshot()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RoundStart { .. }))
            .count() as u64;
        (delta.rounds_started, delta.rounds_completed, traced_rounds)
    });
    for (rank, (started, completed, traced)) in outs.into_iter().enumerate() {
        assert_eq!(started, traced, "rank {rank}: counter vs trace mismatch");
        assert_eq!(completed, traced, "rank {rank}: completions mismatch");
    }
}
