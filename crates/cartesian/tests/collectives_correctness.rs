//! End-to-end correctness: the message-combining collectives must deliver
//! exactly the same data as the trivial algorithm and the direct-delivery
//! baseline, for every neighborhood shape we can throw at them.

use cartcomm::neighbor::DistGraphComm;
use cartcomm::ops::{Algo, WBlock};
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, DistGraphTopology, RelNeighborhood};
use cartcomm_types::Datatype;

/// Reference result: what block i of rank r's receive buffer must hold
/// after an alltoall where rank s sends block j = i with payload
/// `payload(s, j)`.
fn expected_alltoall(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    m: usize,
    payload: impl Fn(usize, usize, usize) -> i32,
) -> Vec<i32> {
    let mut out = vec![0i32; nb.len() * m];
    for (i, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for e in 0..m {
                out[i * m + e] = payload(src, i, e);
            }
        }
    }
    out
}

fn expected_allgather(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    rank: usize,
    m: usize,
    payload: impl Fn(usize, usize) -> i32,
) -> Vec<i32> {
    let mut out = vec![0i32; nb.len() * m];
    for (i, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for e in 0..m {
                out[i * m + e] = payload(src, e);
            }
        }
    }
    out
}

fn check_alltoall_all_ways(dims: &[usize], periods: &[bool], nb: RelNeighborhood, m: usize) {
    let p: usize = dims.iter().product();
    let topo = CartTopology::new(dims, periods).unwrap();
    let t = nb.len();
    let payload =
        |rank: usize, block: usize, e: usize| (rank * 1_000_000 + block * 1_000 + e) as i32;
    Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, dims, periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..t * m)
            .map(|x| payload(rank, x / m.max(1), x % m.max(1)))
            .collect();
        let expect = expected_alltoall(&topo, &nb, rank, m, payload);

        // trivial
        let mut recv = vec![0i32; t * m];
        cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap();
        assert_eq!(recv, expect, "trivial alltoall, rank {rank}");

        // combining (works on tori AND meshes — the mesh executor filters
        // live blocks at the boundaries)
        {
            let mut recv2 = vec![0i32; t * m];
            cart.alltoall(&send, &mut recv2, Algo::Combining).unwrap();
            assert_eq!(recv2, expect, "combining alltoall, rank {rank}");
        }

        // baseline direct delivery over the induced dist graph
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, rank).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        // baseline only matches the full neighborhood on periodic topologies
        // (on meshes the adjacency lists shrink); test it there.
        if periods.iter().all(|&x| x) {
            let mut recv3 = vec![0i32; t * m];
            g.neighbor_alltoall(&send, &mut recv3).unwrap();
            assert_eq!(recv3, expect, "baseline alltoall, rank {rank}");
            let mut recv4 = vec![0i32; t * m];
            g.ineighbor_alltoall(&send, &mut recv4).unwrap();
            assert_eq!(recv4, expect, "ineighbor alltoall, rank {rank}");
        }
    });
}

fn check_allgather_all_ways(dims: &[usize], periods: &[bool], nb: RelNeighborhood, m: usize) {
    let p: usize = dims.iter().product();
    let topo = CartTopology::new(dims, periods).unwrap();
    let t = nb.len();
    let payload = |rank: usize, e: usize| (rank * 1_000 + e) as i32;
    Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, dims, periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..m).map(|e| payload(rank, e)).collect();
        let expect = expected_allgather(&topo, &nb, rank, m, payload);

        let mut recv = vec![0i32; t * m];
        cart.allgather(&send, &mut recv, Algo::Trivial).unwrap();
        assert_eq!(recv, expect, "trivial allgather, rank {rank}");

        // combining allgather works on tori (tree router) and meshes
        // (replicated alltoall router fallback)
        {
            let mut recv2 = vec![0i32; t * m];
            cart.allgather(&send, &mut recv2, Algo::Combining).unwrap();
            assert_eq!(recv2, expect, "combining allgather, rank {rank}");
        }

        if periods.iter().all(|&x| x) {
            let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, rank).unwrap();
            let g = DistGraphComm::create_adjacent(comm, graph);
            let mut recv3 = vec![0i32; t * m];
            g.neighbor_allgather(&send, &mut recv3).unwrap();
            assert_eq!(recv3, expect, "baseline allgather, rank {rank}");
        }
    });
}

#[test]
fn moore_2d_torus_all_algorithms() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    check_alltoall_all_ways(&[3, 3], &[true, true], nb.clone(), 3);
    check_allgather_all_ways(&[3, 3], &[true, true], nb, 3);
}

#[test]
fn moore_2d_with_self_neighbor() {
    let nb = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
    check_alltoall_all_ways(&[4, 3], &[true, true], nb.clone(), 2);
    check_allgather_all_ways(&[4, 3], &[true, true], nb, 2);
}

#[test]
fn asymmetric_family_n4_2d() {
    let nb = RelNeighborhood::stencil_family(2, 4, -1).unwrap();
    check_alltoall_all_ways(&[5, 4], &[true, true], nb.clone(), 1);
    check_allgather_all_ways(&[5, 4], &[true, true], nb, 1);
}

#[test]
fn three_d_moore_on_small_torus() {
    let nb = RelNeighborhood::moore(3, 1).unwrap(); // 26 neighbors
    check_alltoall_all_ways(&[3, 3, 3], &[true, true, true], nb.clone(), 2);
    check_allgather_all_ways(&[3, 3, 3], &[true, true, true], nb, 2);
}

#[test]
fn offsets_larger_than_dimension_wrap() {
    // Offsets ±2 on a 2-wide dimension: everything wraps onto self/peer.
    let nb = RelNeighborhood::new(2, vec![vec![2, 0], vec![-2, 1], vec![1, -1]]).unwrap();
    check_alltoall_all_ways(&[2, 3], &[true, true], nb.clone(), 2);
    check_allgather_all_ways(&[2, 3], &[true, true], nb, 2);
}

#[test]
fn duplicate_offsets_and_multi_hop() {
    let nb = RelNeighborhood::new(
        2,
        vec![vec![1, 1], vec![1, 1], vec![-1, 2], vec![0, -1], vec![0, 0]],
    )
    .unwrap();
    check_alltoall_all_ways(&[4, 5], &[true, true], nb.clone(), 2);
    check_allgather_all_ways(&[4, 5], &[true, true], nb, 2);
}

#[test]
fn von_neumann_on_mesh_trivial_only() {
    // Non-periodic mesh: trivial algorithm prunes boundary neighbors.
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    check_alltoall_all_ways(&[3, 3], &[false, false], nb.clone(), 2);
    check_allgather_all_ways(&[3, 3], &[false, false], nb, 2);
}

#[test]
fn mixed_periodicity_combining_when_moving_dims_are_periodic() {
    // Neighborhood moves only in dim 0 (periodic); dim 1 is a mesh.
    let nb = RelNeighborhood::new(2, vec![vec![1, 0], vec![-1, 0], vec![2, 0]]).unwrap();
    check_alltoall_all_ways(&[4, 2], &[true, false], nb.clone(), 3);
    check_allgather_all_ways(&[4, 2], &[true, false], nb, 3);
}

#[test]
fn mesh_combining_covers_alltoall_and_allgather() {
    // The mesh extension routes both operations (allgather through the
    // replicated alltoall router); only the tree reduction stays
    // torus-gated (see the reductions test suite).
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[false, false], nb.clone()).unwrap();
        let send = vec![cart.rank() as i32];
        let mut a = vec![-1i32; 4];
        let mut b = vec![-1i32; 4];
        cart.allgather(&send, &mut a, Algo::Combining).unwrap();
        cart.allgather(&send, &mut b, Algo::Trivial).unwrap();
        assert_eq!(a, b);
        let send = vec![0i32; 4];
        let mut recv = vec![0i32; 4];
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
    });
}

#[test]
fn zero_block_size_alltoall() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    check_alltoall_all_ways(&[3, 3], &[true, true], nb, 0);
}

#[test]
fn one_dimensional_ring() {
    let nb = RelNeighborhood::new(1, vec![vec![1], vec![-1], vec![3], vec![-2]]).unwrap();
    check_alltoall_all_ways(&[6], &[true], nb.clone(), 4);
    check_allgather_all_ways(&[6], &[true], nb, 4);
}

#[test]
fn five_dimensional_tiny_torus() {
    let nb = RelNeighborhood::von_neumann(5, 1).unwrap(); // 10 neighbors
    check_alltoall_all_ways(&[2, 2, 2, 2, 2], &[true; 5], nb.clone(), 1);
    check_allgather_all_ways(&[2, 2, 2, 2, 2], &[true; 5], nb, 1);
}

#[test]
fn random_neighborhoods_on_random_tori() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(2024);
    for _ in 0..8 {
        let d = rng.gen_range(1..4);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2..4)).collect();
        let t = rng.gen_range(1..7);
        let offsets: Vec<Vec<i64>> = (0..t)
            .map(|_| (0..d).map(|_| rng.gen_range(-3i64..4)).collect())
            .collect();
        let nb = RelNeighborhood::new(d, offsets).unwrap();
        let m = rng.gen_range(1..4);
        check_alltoall_all_ways(&dims, &vec![true; d], nb.clone(), m);
        check_allgather_all_ways(&dims, &vec![true; d], nb, m);
    }
}

// ----- irregular variants ------------------------------------------------------

#[test]
fn alltoallv_matches_trivial_and_expected() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    // block i has i+1 elements; displacements packed in order
    let counts: Vec<usize> = (0..t).map(|i| i + 1).collect();
    let displs: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, &c| {
            let d = *acc;
            *acc += c;
            Some(d)
        })
        .collect();
    let total: usize = counts.iter().sum();
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..total).map(|x| (rank * 10_000 + x) as i32).collect();
        let mut expect = vec![0i32; total];
        for (i, off) in nb.offsets().iter().enumerate() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
            for e in 0..counts[i] {
                expect[displs[i] + e] = (src * 10_000 + displs[i] + e) as i32;
            }
        }
        let mut recv = vec![0i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut recv,
            &counts,
            &displs,
            Algo::Combining,
        )
        .unwrap();
        assert_eq!(recv, expect, "combining alltoallv, rank {rank}");
        let mut recv2 = vec![0i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut recv2,
            &counts,
            &displs,
            Algo::Trivial,
        )
        .unwrap();
        assert_eq!(recv2, expect, "trivial alltoallv, rank {rank}");
    });
}

#[test]
fn alltoallw_with_column_datatypes() {
    // Each rank owns a 4x4 i32 matrix. Exchange column 0 with the left
    // neighbor and column 3 with the right neighbor on a 1-d ring,
    // receiving into the opposite columns — all described with vector
    // datatypes, no staging buffers.
    let nb = RelNeighborhood::new(1, vec![vec![-1], vec![1]]).unwrap();
    let col = Datatype::vector(4, 1, 4, &Datatype::int());
    Universe::builder(5).run(|comm| {
        let cart = CartComm::create(comm, &[5], &[true], nb.clone()).unwrap();
        let rank = cart.rank() as i32;
        let matrix: Vec<i32> = (0..16).map(|x| rank * 100 + x).collect();
        let sendspec = vec![
            WBlock::new(0, 1, &col),     // column 0 to the left
            WBlock::new(3 * 4, 1, &col), // column 3 to the right
        ];
        let mut result = vec![-1i32; 16];
        let recvspec = vec![
            WBlock::new(3 * 4, 1, &col), // from the right into column 3
            WBlock::new(0, 1, &col),     // from the left into column 0
        ];
        let send_bytes = cartcomm_types::cast_slice(&matrix);
        {
            let recv_bytes = cartcomm_types::cast_slice_mut(&mut result);
            cart.alltoallw(
                send_bytes,
                &sendspec,
                recv_bytes,
                &recvspec,
                Algo::Combining,
            )
            .unwrap();
        }
        let left = (rank + 4) % 5;
        let right = (rank + 1) % 5;
        for r in 0..4 {
            // column 3 received from right neighbor's column 0 send...
            // right neighbor sends its column 0 to *its* left = us.
            assert_eq!(result[r * 4 + 3], right * 100 + (r * 4) as i32);
            // column 0 received from left neighbor's column 3.
            assert_eq!(result[r * 4], left * 100 + (r * 4 + 3) as i32);
        }
        // untouched interior stays -1
        assert_eq!(result[5], -1);

        // trivial variant gives the same picture
        let mut result2 = vec![-1i32; 16];
        {
            let recv_bytes = cartcomm_types::cast_slice_mut(&mut result2);
            cart.alltoallw(send_bytes, &sendspec, recv_bytes, &recvspec, Algo::Trivial)
                .unwrap();
        }
        assert_eq!(result, result2);
    });
}

#[test]
fn allgatherv_with_scattered_placement() {
    let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
    let t = nb.len();
    let m = 3usize;
    // blocks placed in reverse order with gaps
    let displs: Vec<usize> = (0..t).map(|i| (t - 1 - i) * (m + 2)).collect();
    let total = t * (m + 2);
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..m).map(|e| (rank * 100 + e) as i32).collect();
        let mut recv = vec![-7i32; total];
        cart.allgatherv(&send, &mut recv, m, &displs, Algo::Combining)
            .unwrap();
        for (i, off) in nb.offsets().iter().enumerate() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            let src = topo.rank_of_offset(rank, &neg).unwrap().unwrap();
            for e in 0..m {
                assert_eq!(recv[displs[i] + e], (src * 100 + e) as i32);
            }
            // gap bytes untouched
            assert_eq!(recv[displs[i] + m], -7);
        }
        let mut recv2 = vec![-7i32; total];
        cart.allgatherv(&send, &mut recv2, m, &displs, Algo::Trivial)
            .unwrap();
        assert_eq!(recv, recv2);
    });
}

#[test]
fn allgatherw_different_layout_per_source() {
    // The paper's proposed Cart_allgatherw: same data, different layout per
    // source block. Receive each source's 4-element block as a strided
    // column of a 4x t matrix.
    let nb = RelNeighborhood::new(1, vec![vec![1], vec![-1], vec![2]]).unwrap();
    let t = nb.len();
    let m = 4usize;
    Universe::builder(6).run(|comm| {
        let cart = CartComm::create(comm, &[6], &[true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
        let col = Datatype::vector(m, 1, t as i64, &Datatype::int());
        let sendblock = WBlock::new(0, 1, &Datatype::contiguous(m, &Datatype::int()));
        let recvspec: Vec<WBlock> = (0..t)
            .map(|i| WBlock::new((i * 4) as i64, 1, &col))
            .collect();
        let mut recv = vec![0i32; m * t];
        {
            let rb = cartcomm_types::cast_slice_mut(&mut recv);
            cart.allgatherw(
                cartcomm_types::cast_slice(&send),
                &sendblock,
                rb,
                &recvspec,
                Algo::Combining,
            )
            .unwrap();
        }
        let topo = CartTopology::torus(&[6]).unwrap();
        for (i, off) in nb.offsets().iter().enumerate() {
            let src = topo.rank_of_offset(rank, &[-off[0]]).unwrap().unwrap();
            for e in 0..m {
                assert_eq!(recv[e * t + i], (src * 10 + e) as i32, "col {i} row {e}");
            }
        }
    });
}

// ----- persistent handles ---------------------------------------------------------

#[test]
fn persistent_alltoall_reuse_many_iterations() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 2usize;
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let mut handle = cart.alltoall_init::<i32>(m, Algo::Combining).unwrap();
        assert!(handle.is_combining());
        for iter in 0..5 {
            let payload = |r: usize, b: usize, e: usize| (iter * 7 + r * 1000 + b * 10 + e) as i32;
            let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
            let mut recv = vec![0i32; t * m];
            handle.execute_typed(&cart, &send, &mut recv).unwrap();
            let expect = expected_alltoall(&topo, &nb, rank, m, payload);
            assert_eq!(recv, expect, "iteration {iter}");
        }
    });
}

#[test]
fn persistent_auto_selects_by_cutoff() {
    let nb = RelNeighborhood::moore(2, 1).unwrap(); // ratio = (8-4)/(12-8) = 1.0
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        // alpha/beta = 1000 bytes: m = 4 bytes -> combining; m = 1MB -> trivial.
        let small = cart
            .alltoall_init::<i32>(
                1,
                Algo::Auto {
                    alpha_beta_bytes: 1000.0,
                },
            )
            .unwrap();
        assert!(small.is_combining());
        let big = cart
            .alltoall_init::<i32>(
                100_000,
                Algo::Auto {
                    alpha_beta_bytes: 1000.0,
                },
            )
            .unwrap();
        assert!(!big.is_combining());
    });
}

#[test]
fn persistent_allgather_trivial_and_combining_agree() {
    let nb = RelNeighborhood::stencil_family(2, 4, -1).unwrap();
    let t = nb.len();
    let m = 3usize;
    Universe::builder(12).run(|comm| {
        let cart = CartComm::create(comm, &[4, 3], &[true, true], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..m).map(|e| (rank * 50 + e) as i32).collect();
        let mut h1 = cart.allgather_init::<i32>(m, Algo::Combining).unwrap();
        let mut h2 = cart.allgather_init::<i32>(m, Algo::Trivial).unwrap();
        let mut r1 = vec![0i32; t * m];
        let mut r2 = vec![0i32; t * m];
        h1.execute_typed(&cart, &send, &mut r1).unwrap();
        h2.execute_typed(&cart, &send, &mut r2).unwrap();
        assert_eq!(r1, r2);
    });
}

// ----- creation-time validation ---------------------------------------------------

#[test]
fn non_isomorphic_neighborhoods_rejected() {
    Universe::builder(4).run(|comm| {
        // rank 0 supplies a different neighborhood
        let nb = if comm.rank() == 0 {
            RelNeighborhood::new(1, vec![vec![1], vec![-1]]).unwrap()
        } else {
            RelNeighborhood::new(1, vec![vec![1], vec![2]]).unwrap()
        };
        let res = CartComm::create(comm, &[4], &[true], nb);
        assert!(matches!(res, Err(cartcomm::CartError::NotIsomorphic)));
    });
}

#[test]
fn different_order_is_also_rejected() {
    // Listing 1 requires the *exact same list*; a permutation is not
    // Cartesian.
    Universe::builder(2).run(|comm| {
        let nb = if comm.rank() == 0 {
            RelNeighborhood::new(1, vec![vec![1], vec![-1]]).unwrap()
        } else {
            RelNeighborhood::new(1, vec![vec![-1], vec![1]]).unwrap()
        };
        let res = CartComm::create(comm, &[2], &[true], nb);
        assert!(matches!(res, Err(cartcomm::CartError::NotIsomorphic)));
    });
}

#[test]
fn size_mismatch_rejected() {
    Universe::builder(4).run(|comm| {
        let nb = RelNeighborhood::new(1, vec![vec![1]]).unwrap();
        let res = CartComm::create(comm, &[5], &[true], nb);
        assert!(res.is_err());
    });
}

#[test]
fn buffer_size_validation() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[true, true], nb.clone()).unwrap();
        let send = vec![0i32; 7]; // not divisible by t = 8
        let mut recv = vec![0i32; 8];
        assert!(cart.alltoall(&send, &mut recv, Algo::Combining).is_err());
        let send = vec![0i32; 8];
        let mut recv = vec![0i32; 7]; // too small
        assert!(cart.alltoall(&send, &mut recv, Algo::Combining).is_err());
    });
}

// ----- §2.2 detection ----------------------------------------------------------------

#[test]
fn dist_graph_promotion_detects_cartesian() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::torus(&[3, 3]).unwrap();
    Universe::builder(9).run(|comm| {
        let graph = DistGraphTopology::from_cart_neighborhood(&topo, &nb, comm.rank()).unwrap();
        let g = DistGraphComm::create_adjacent(comm, graph);
        let detected = g.detect_cartesian(&topo).unwrap();
        assert!(
            detected.is_some(),
            "Moore graph must be detected as Cartesian"
        );
        let cart = g.try_promote(&topo).unwrap().expect("promotable");
        // The promoted communicator runs the combining algorithm correctly.
        let t = cart.neighbor_count();
        let send: Vec<i32> = (0..t).map(|i| (cart.rank() * 100 + i) as i32).collect();
        let mut a = vec![0i32; t];
        let mut b = vec![0i32; t];
        cart.alltoall(&send, &mut a, Algo::Combining).unwrap();
        cart.alltoall(&send, &mut b, Algo::Trivial).unwrap();
        assert_eq!(a, b);
    });
}

#[test]
fn dist_graph_detection_rejects_irregular_graph() {
    let topo = CartTopology::torus(&[4]).unwrap();
    Universe::builder(4).run(|comm| {
        // Ring where rank 0 additionally talks to rank 2: degrees differ.
        let (sources, targets) = if comm.rank() == 0 {
            (vec![3, 2], vec![1, 2])
        } else if comm.rank() == 2 {
            (vec![1, 0], vec![3, 0])
        } else {
            (vec![(comm.rank() + 3) % 4], vec![(comm.rank() + 1) % 4])
        };
        let g = DistGraphComm::create_adjacent(
            comm,
            DistGraphTopology::adjacent(sources, targets, None, None).unwrap(),
        );
        assert!(g.detect_cartesian(&topo).unwrap().is_none());
    });
}
