//! The §3.4 composite halo exchange must fill every halo cell — faces,
//! edges, and corners — exactly as the full Moore-neighborhood exchange
//! does, with 2d messages instead of 3^d − 1.

use cartcomm::halo::HaloExchange;
use cartcomm_comm::Universe;
use cartcomm_topo::CartTopology;
use cartcomm_types::Datatype;

/// Run the exchange on a torus where each rank's interior is filled with
/// values encoding (rank, local index); then every halo cell must equal
/// the value the owning neighbor holds at the wrapped global position.
fn check_halo(proc_dims: &[usize], inner: &[usize], depth: usize) {
    let d = proc_dims.len();
    let p: usize = proc_dims.iter().product();
    let w: Vec<usize> = inner.iter().map(|&n| n + 2 * depth).collect();
    let tile_len: usize = w.iter().product();
    let topo = CartTopology::torus(proc_dims).unwrap();

    // global coordinates: rank coords * inner + (local - depth), wrapped
    let global_value = |rank: usize, local: &[usize]| -> i64 {
        let rc = topo.coords_of(rank);
        let mut key = 0i64;
        for j in 0..d {
            let g = (rc[j] * inner[j]) as i64 + local[j] as i64 - depth as i64;
            let size = (proc_dims[j] * inner[j]) as i64;
            key = key * 10_000 + g.rem_euclid(size);
        }
        key
    };

    let proc_dims = proc_dims.to_vec();
    let inner = inner.to_vec();
    let failures = Universe::builder(p).run(|comm| {
        let mut halo = HaloExchange::new(
            comm,
            &proc_dims,
            &inner,
            depth,
            &Datatype::primitive(cartcomm_types::Primitive::I64),
        )
        .unwrap();
        assert_eq!(halo.ndims(), d);
        assert_eq!(halo.messages_per_exchange(), 2 * d);

        let rank = comm.rank();
        let mut tile = vec![0i64; tile_len];
        // fill interior with global values, halo with a sentinel
        let mut idx = vec![0usize; d];
        #[allow(clippy::needless_range_loop)]
        for flat in 0..tile_len {
            // decode flat -> idx (row-major)
            let mut rem = flat;
            for j in (0..d).rev() {
                idx[j] = rem % w[j];
                rem /= w[j];
            }
            let interior = (0..d).all(|j| idx[j] >= depth && idx[j] < w[j] - depth);
            tile[flat] = if interior {
                global_value(rank, &idx)
            } else {
                -1
            };
        }

        {
            let bytes = cartcomm_types::cast_slice_mut(&mut tile);
            halo.exchange(bytes).unwrap();
        }

        // verify every cell (interior unchanged, halo = owner's value)
        let mut bad = 0usize;
        #[allow(clippy::needless_range_loop)]
        for flat in 0..tile_len {
            let mut rem = flat;
            for j in (0..d).rev() {
                idx[j] = rem % w[j];
                rem /= w[j];
            }
            let want = global_value(rank, &idx);
            if tile[flat] != want {
                bad += 1;
            }
        }
        bad
    });
    let total: usize = failures.iter().sum();
    assert_eq!(total, 0, "all halo cells must be filled correctly");
}

#[test]
fn halo_2d_depth1() {
    check_halo(&[3, 3], &[4, 4], 1);
}

#[test]
fn halo_2d_depth2() {
    check_halo(&[3, 2], &[4, 5], 2);
}

#[test]
fn halo_3d_depth1() {
    check_halo(&[2, 2, 2], &[3, 3, 3], 1);
}

#[test]
fn halo_3d_depth2_rectangular() {
    check_halo(&[2, 3, 2], &[4, 5, 6], 2);
}

#[test]
fn halo_1d() {
    check_halo(&[5], &[6], 2);
}

#[test]
fn halo_4d() {
    check_halo(&[2, 2, 2, 2], &[2, 2, 2, 2], 1);
}

#[test]
fn volume_beats_naive_at_depth2() {
    // depth-2 corners are 2^d blocks the naive exchange duplicates.
    Universe::builder(4).run(|comm| {
        let halo = HaloExchange::new(comm, &[2, 2], &[6, 6], 2, &Datatype::double()).unwrap();
        assert!(
            halo.bytes_per_exchange() < halo.naive_bytes() + 1,
            "phased {} vs naive {}",
            halo.bytes_per_exchange(),
            halo.naive_bytes()
        );
        // and always fewer messages: 4 vs 8
        assert_eq!(halo.messages_per_exchange(), 4);
    });
}

#[test]
fn validation_errors() {
    Universe::builder(4).run(|comm| {
        // depth too large
        assert!(HaloExchange::new(comm, &[2, 2], &[2, 2], 3, &Datatype::double()).is_err());
        // zero depth
        assert!(HaloExchange::new(comm, &[2, 2], &[4, 4], 0, &Datatype::double()).is_err());
        // dims mismatch
        assert!(HaloExchange::new(comm, &[2, 2], &[4], 1, &Datatype::double()).is_err());
        // wrong tile length at exchange time
        let mut h = HaloExchange::new(comm, &[2, 2], &[4, 4], 1, &Datatype::double()).unwrap();
        let mut tiny = vec![0u8; 8];
        assert!(h.exchange(&mut tiny).is_err());
    });
}

#[test]
fn repeated_exchanges_converge_like_jacobi() {
    // Use the halo exchange inside a mini Jacobi smoothing loop and check
    // the result agrees with a single-process computation.
    const P: usize = 2;
    const N: usize = 4;
    const G: usize = P * N;
    const STEPS: usize = 10;
    let topo = CartTopology::torus(&[P, P]).unwrap();

    // single-process reference with 5-point averaging
    let mut ref_cur: Vec<f64> = (0..G * G).map(|i| (i % 13) as f64).collect();
    let mut ref_next = vec![0.0f64; G * G];
    for _ in 0..STEPS {
        for r in 0..G {
            for c in 0..G {
                let at = |dr: i64, dc: i64| {
                    let rr = (r as i64 + dr).rem_euclid(G as i64) as usize;
                    let cc = (c as i64 + dc).rem_euclid(G as i64) as usize;
                    ref_cur[rr * G + cc]
                };
                ref_next[r * G + c] =
                    0.2 * (at(0, 0) + at(-1, 0) + at(1, 0) + at(0, -1) + at(0, 1));
            }
        }
        std::mem::swap(&mut ref_cur, &mut ref_next);
    }

    let tiles = Universe::builder(P * P).run(|comm| {
        let mut halo = HaloExchange::new(comm, &[P, P], &[N, N], 1, &Datatype::double()).unwrap();
        let coords = topo.coords_of(comm.rank());
        let w = N + 2;
        let mut tile = vec![0.0f64; w * w];
        let mut next = vec![0.0f64; w * w];
        for r in 0..N {
            for c in 0..N {
                let g = (coords[0] * N + r) * G + coords[1] * N + c;
                tile[(r + 1) * w + c + 1] = (g % 13) as f64;
            }
        }
        for _ in 0..STEPS {
            {
                let bytes = cartcomm_types::cast_slice_mut(&mut tile);
                halo.exchange(bytes).unwrap();
            }
            for r in 1..=N {
                for c in 1..=N {
                    next[r * w + c] = 0.2
                        * (tile[r * w + c]
                            + tile[(r - 1) * w + c]
                            + tile[(r + 1) * w + c]
                            + tile[r * w + c - 1]
                            + tile[r * w + c + 1]);
                }
            }
            for r in 1..=N {
                for c in 1..=N {
                    tile[r * w + c] = next[r * w + c];
                }
            }
        }
        (coords, tile)
    });

    for (coords, tile) in tiles {
        let w = N + 2;
        for r in 0..N {
            for c in 0..N {
                let g = (coords[0] * N + r) * G + coords[1] * N + c;
                let got = tile[(r + 1) * w + c + 1];
                assert!(
                    (got - ref_cur[g]).abs() < 1e-12,
                    "cell {g}: {got} vs {}",
                    ref_cur[g]
                );
            }
        }
    }
}
