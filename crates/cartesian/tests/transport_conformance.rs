//! Backend-generic transport conformance: one shared matrix of delivery,
//! schedule, accounting, chaos, and failure-semantics assertions, run
//! against **every** transport backend (in-process channels, shared-memory
//! rings, Unix-domain sockets, loopback TCP).
//!
//! The point of the `Transport` trait is that everything above the fabric
//! — matching, the paper's combining schedules, Props 3.2/3.3 accounting,
//! reliable delivery — is backend-agnostic. This suite is that claim,
//! executable: the *same* test body runs on each backend and must observe
//! the same bytes, the same round counts, and the same failure shapes.
//!
//! Set `TRANSPORT_BACKEND=shm` (or `uds`, `tcp`, `inproc`, or a
//! comma-separated list) to restrict the matrix to specific backends —
//! CI uses this to give each backend its own job.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{
    CommError, FaultSpec, LinkSel, RetryPolicy, SpawnRole, Tag, TransportKind, Universe,
    ANY_SOURCE, ANY_TAG,
};
use cartcomm_topo::{CartTopology, RelNeighborhood};
use std::time::Duration;

/// Cartesian data tags — same range the chaos suite scopes to.
const CART_TAGS_LO: Tag = 0x7A00_0000;
const CART_TAGS_HI: Tag = 0x7F00_0000;

/// The backends under test: all four, unless `TRANSPORT_BACKEND` names a
/// subset (comma-separated `inproc|shm|uds|tcp`).
fn backends() -> Vec<TransportKind> {
    match std::env::var("TRANSPORT_BACKEND") {
        Ok(s) => {
            let picked: Vec<TransportKind> = s
                .split(',')
                .map(|n| {
                    TransportKind::parse(n)
                        .unwrap_or_else(|| panic!("unknown TRANSPORT_BACKEND entry {n:?}"))
                })
                .collect();
            assert!(!picked.is_empty(), "TRANSPORT_BACKEND must name a backend");
            picked
        }
        Err(_) => vec![
            TransportKind::InProcess,
            TransportKind::SharedMem,
            TransportKind::Uds,
            TransportKind::Tcp,
        ],
    }
}

/// Eight pinned seeds plus the optional `CHAOS_SEED` override, exactly as
/// in `chaos_exchange.rs`.
fn chaos_seeds() -> Vec<u64> {
    let mut seeds = vec![
        0x0000_0001,
        0x00C0_FFEE,
        0xDEAD_BEEF,
        0x5EED_0003,
        0x0BAD_CAB1,
        0x0FAB_0005,
        0x1234_5678,
        0xA5A5_A5A5,
    ];
    if let Ok(s) = std::env::var("CHAOS_SEED") {
        let v = s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|e| panic!("CHAOS_SEED must be a u64, got {s:?}: {e}"));
        seeds.push(v);
    }
    seeds
}

fn cart_traffic() -> LinkSel {
    LinkSel::any().tags(CART_TAGS_LO, CART_TAGS_HI)
}

fn chaos_policy() -> RetryPolicy {
    RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(25),
        factor: 2.0,
        max: Duration::from_millis(250),
    }
}

fn payload(rank: usize, block: usize, e: usize) -> i32 {
    (rank * 1_000_000 + block * 1_000 + e) as i32
}

fn expected_alltoall(topo: &CartTopology, nb: &RelNeighborhood, rank: usize, m: usize) -> Vec<i32> {
    let mut out = vec![0i32; nb.len() * m];
    for (i, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for e in 0..m {
                out[i * m + e] = payload(src, i, e);
            }
        }
    }
    out
}

// ---------------------------------------------------------------------
// Delivery semantics
// ---------------------------------------------------------------------

/// Exactly-once, FIFO-per-(src, tag) point-to-point delivery: every rank
/// streams tagged messages to every rank (including itself), receivers
/// check content *and order* per source, and an any/any probe afterwards
/// proves nothing was duplicated or conjured.
#[test]
fn point_to_point_is_exactly_once_and_fifo_per_link() {
    for kind in backends() {
        let p = 4usize;
        let k = 25usize;
        Universe::builder(p)
            .on(kind)
            .try_run(|comm| {
                let rank = comm.rank();
                for dst in 0..p {
                    for i in 0..k {
                        comm.send_bytes(
                            dst,
                            CART_TAGS_LO + dst as Tag,
                            vec![rank as u8, i as u8, dst as u8],
                        )
                        .unwrap();
                    }
                }
                for src in 0..p {
                    for i in 0..k {
                        let (bytes, status) =
                            comm.recv_bytes(src, CART_TAGS_LO + rank as Tag).unwrap();
                        assert_eq!(status.src, src, "backend {kind}");
                        assert_eq!(
                            bytes,
                            vec![src as u8, i as u8, rank as u8],
                            "backend {kind}: rank {rank} message {i} from {src} out of order"
                        );
                    }
                }
                comm.barrier().unwrap();
                assert!(
                    comm.iprobe(ANY_SOURCE, ANY_TAG).unwrap().is_none(),
                    "backend {kind}: stray message after all {k} × {p} receives"
                );
            })
            .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"));
    }
}

// ---------------------------------------------------------------------
// Schedule correctness and accounting
// ---------------------------------------------------------------------

/// All three alltoall executors (trivial, interpreted combining, compiled
/// persistent) are byte-identical to the analytical reference on every
/// backend — and byte-identical *across* backends.
#[test]
fn alltoall_executors_byte_identical_on_every_backend() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::new(&dims, &[true, true]).unwrap();
    let t = nb.len();
    let m = 3usize;
    let mut reference: Option<Vec<Vec<i32>>> = None;
    for kind in backends() {
        let outs = Universe::builder(9)
            .on(kind)
            .try_run(|comm| {
                let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
                let rank = cart.rank();
                let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
                let expect = expected_alltoall(&topo, &nb, rank, m);

                let mut trivial = vec![-1i32; t * m];
                cart.alltoall(&send, &mut trivial, Algo::Trivial).unwrap();
                assert_eq!(trivial, expect, "trivial diverged, rank {rank} on {kind}");

                let mut combining = vec![-1i32; t * m];
                cart.alltoall(&send, &mut combining, Algo::Combining)
                    .unwrap();
                assert_eq!(
                    combining, expect,
                    "combining diverged, rank {rank} on {kind}"
                );

                let mut handle = cart.alltoall_init::<i32>(m, Algo::Combining).unwrap();
                let mut compiled = vec![-1i32; t * m];
                handle.execute_typed(&cart, &send, &mut compiled).unwrap();
                assert_eq!(compiled, expect, "compiled diverged, rank {rank} on {kind}");

                cart.comm().barrier().unwrap();
                trivial
            })
            .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"));
        match &reference {
            None => reference = Some(outs),
            Some(r) => assert_eq!(r, &outs, "backend {kind} disagrees with the first backend"),
        }
    }
}

/// Props 3.2/3.3 observed at runtime, per backend: the combining alltoall
/// completes in exactly `C` rounds and moves exactly `V·m` wire bytes on
/// each rank, no matter what carries the envelopes. (First call compiles
/// the plan; the measured window is the second, steady-state call.)
#[test]
fn props_32_33_hold_on_every_backend() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 3usize;
    let m_bytes = m * std::mem::size_of::<i32>();
    for kind in backends() {
        let outs = Universe::builder(9)
            .on(kind)
            .try_run(|comm| {
                let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
                let rank = cart.rank();
                let plan = cart.plans().alltoall();
                let (c, v) = (plan.rounds as u64, plan.volume_blocks as u64);
                let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
                let mut recv = vec![-1i32; t * m];
                cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();

                let before = cart.comm().metrics();
                cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
                let delta = cart.comm().metrics().since(&before);
                cart.comm().barrier().unwrap();
                (delta.rounds_completed, delta.wire_bytes_sent, c, v)
            })
            .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"));
        for (rank, (rounds, wire, c, v)) in outs.into_iter().enumerate() {
            assert_eq!(
                rounds, c,
                "backend {kind}, rank {rank}: rounds != C (Prop 3.2)"
            );
            assert_eq!(
                wire,
                v * m_bytes as u64,
                "backend {kind}, rank {rank}: wire bytes != V·m (Prop 3.3)"
            );
        }
    }
}

// ---------------------------------------------------------------------
// Chaos and reliability
// ---------------------------------------------------------------------

/// One seeded chaos run of trivial + combining alltoall on a backend;
/// returns per-rank `(retransmits, dup_drops)` and the plane stats.
fn chaos_alltoall_on(
    kind: TransportKind,
    spec: FaultSpec,
    policy: RetryPolicy,
    seed: u64,
) -> (Vec<(u64, u64)>, cartcomm_comm::FaultStats) {
    eprintln!("transport chaos: backend={kind} seed={seed} (rerun: CHAOS_SEED={seed})");
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::new(&dims, &[true, true]).unwrap();
    let t = nb.len();
    let m = 2usize;
    let outs = Universe::builder(9)
        .on(kind)
        .faults(spec)
        .try_run(|comm| {
            comm.set_default_reliability(Some(policy));
            let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
            let expect = expected_alltoall(&topo, &nb, rank, m);
            let before = cart.comm().metrics();

            let mut recv = vec![-1i32; t * m];
            cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap();
            assert_eq!(
                recv, expect,
                "trivial diverged on {kind}, rank {rank} seed {seed}"
            );

            let mut recv2 = vec![-1i32; t * m];
            cart.alltoall(&send, &mut recv2, Algo::Combining).unwrap();
            assert_eq!(
                recv2, expect,
                "combining diverged on {kind}, rank {rank} seed {seed}"
            );

            cart.comm().barrier().unwrap();
            let d = cart.comm().metrics().since(&before);
            (
                (d.retransmits, d.dup_drops),
                cart.comm().fault_stats().unwrap(),
            )
        })
        .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"));
    let stats = outs[0].1;
    (outs.into_iter().map(|(d, _)| d).collect(), stats)
}

/// The full eight-seed chaos matrix (drops + duplicates + reorder) stays
/// byte-identical on every backend: the fault plane injects *above* the
/// transport, so the reliable layer sees the identical adversity schedule
/// whether envelopes cross a channel, a ring, or a socket.
#[test]
fn chaos_seed_matrix_survives_on_every_backend() {
    for kind in backends() {
        for seed in chaos_seeds() {
            let spec = FaultSpec::new(seed)
                .drop_rate(cart_traffic(), 0.12)
                .dup_rate(cart_traffic(), 0.06, 1)
                .reorder_rate(cart_traffic(), 0.15);
            chaos_alltoall_on(kind, spec, chaos_policy(), seed);
        }
    }
}

/// Retransmit accounting under pure loss holds per backend: every drop is
/// recovered by a retransmission, and every unaccounted retransmission is
/// visible as a receiver dedup absorb (the sandwich from the chaos suite).
#[test]
fn retransmit_accounting_holds_on_every_backend() {
    let policy = RetryPolicy {
        attempts: 10,
        base: Duration::from_millis(150),
        factor: 2.0,
        max: Duration::from_millis(600),
    };
    for kind in backends() {
        for &seed in &chaos_seeds()[..2] {
            let spec = FaultSpec::new(seed).drop_rate(cart_traffic(), 0.20);
            let (deltas, stats) = chaos_alltoall_on(kind, spec, policy, seed);
            let retx: u64 = deltas.iter().map(|d| d.0).sum();
            let dups: u64 = deltas.iter().map(|d| d.1).sum();
            assert!(stats.drops > 0, "backend {kind} seed {seed}: spec inert?");
            assert!(
                retx >= stats.drops,
                "backend {kind} seed {seed}: {retx} retransmits < {} drops",
                stats.drops
            );
            assert!(
                retx - stats.drops <= dups,
                "backend {kind} seed {seed}: {retx} retx, {} drops, {dups} dedups",
                stats.drops
            );
        }
    }
}

/// A fully dead directed link surfaces `PeerUnreachable` on both endpoints
/// within the retry bound on every backend — never a hang, never a panic.
/// Mirrors the chaos suite's cascade semantics: the dead link's endpoints
/// blame each other exactly, other ranks either finish with correct bytes
/// or abort with a cascaded `PeerUnreachable`.
#[test]
fn dead_peer_surfaces_unreachable_on_every_backend() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::new(&dims, &[true, true]).unwrap();
    let t = nb.len();
    let m = 4usize;
    let policy = RetryPolicy {
        attempts: 4,
        base: Duration::from_millis(10),
        factor: 2.0,
        max: Duration::from_millis(80),
    };
    for kind in backends() {
        let spec = FaultSpec::new(0x00DE_AD11)
            .drop_rate(LinkSel::link(0, 1).tags(CART_TAGS_LO, CART_TAGS_HI), 1.0);
        let outs = Universe::builder(9)
            .on(kind)
            .faults(spec)
            .try_run(|comm| {
                comm.set_default_reliability(Some(policy));
                let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
                let rank = cart.rank();
                let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
                let mut recv = vec![-1i32; t * m];
                let res = cart.alltoall(&send, &mut recv, Algo::Trivial);
                if res.is_ok() {
                    assert_eq!(
                        recv,
                        expected_alltoall(&topo, &nb, rank, m),
                        "backend {kind}"
                    );
                }
                // Keep every rank alive until all retry tails have wound down.
                cart.comm().barrier().unwrap();
                res
            })
            .unwrap_or_else(|e| panic!("backend {kind} failed to launch: {e}"));
        let mut survivors = 0;
        for (rank, res) in outs.into_iter().enumerate() {
            match rank {
                0 => match res {
                    Err(cartcomm::CartError::Comm(CommError::PeerUnreachable {
                        peer,
                        attempts,
                    })) => {
                        assert_eq!(peer, 1, "backend {kind}: sender blamed wrong peer");
                        assert!(attempts <= policy.attempts, "backend {kind}");
                    }
                    other => {
                        panic!("backend {kind} rank 0: expected PeerUnreachable(1), got {other:?}")
                    }
                },
                1 => match res {
                    Err(cartcomm::CartError::Comm(CommError::PeerUnreachable { peer, .. })) => {
                        assert_eq!(peer, 0, "backend {kind}: receiver blamed wrong peer")
                    }
                    other => {
                        panic!("backend {kind} rank 1: expected PeerUnreachable(0), got {other:?}")
                    }
                },
                _ => match res {
                    Ok(()) => survivors += 1,
                    Err(cartcomm::CartError::Comm(CommError::PeerUnreachable { .. })) => {}
                    other => panic!("backend {kind} rank {rank}: unexpected outcome {other:?}"),
                },
            }
        }
        assert!(survivors >= 1, "backend {kind}: no rank finished cleanly");
    }
}

// ---------------------------------------------------------------------
// Multi-process universes
// ---------------------------------------------------------------------

/// Four OS *processes* (not threads) form a universe over the
/// shared-memory fabric and run the paper's combining alltoall — the
/// schedule bytes crossing real process boundaries. The parent re-executes
/// this test binary once per rank; each child attaches to the fabric file,
/// runs the closure as its rank, and exits with the harness status.
#[test]
fn multi_process_shm_universe_runs_combining_alltoall() {
    let dims = [2usize, 2];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let topo = CartTopology::new(&dims, &[true, true]).unwrap();
    let t = nb.len();
    let m = 2usize;
    let role = Universe::spawn_processes(
        4,
        &[
            "multi_process_shm_universe_runs_combining_alltoall",
            "--exact",
        ],
        |comm| {
            let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
            let mut recv = vec![-1i32; t * m];
            cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
            assert_eq!(
                recv,
                expected_alltoall(&topo, &nb, rank, m),
                "cross-process combining alltoall diverged at rank {rank}"
            );
            // Rendezvous before exit so no process tears down its rings
            // while a peer still drains.
            cart.comm().barrier().unwrap();
        },
    )
    .expect("spawn_processes failed");
    match role {
        SpawnRole::Parent(statuses) => {
            assert_eq!(statuses.len(), 4);
            for (rank, status) in statuses.iter().enumerate() {
                assert!(
                    status.success(),
                    "child process of rank {rank} failed: {status:?}"
                );
            }
        }
        SpawnRole::Child(()) => {
            // Rank work already ran (and asserted) inside the closure.
        }
    }
}
