//! Property-based equivalence battery for the neighborhood reductions.
//!
//! Random tori (d ∈ 1..=3), random neighborhoods (zero offsets and
//! duplicates included), odd block sizes, every [`RedOp`], and several
//! element types: the compiled combining reductions must agree with the
//! trivial t-round algorithm **exactly** for integer elements (wrapping
//! arithmetic is order-independent) and to within an accumulation-order
//! rounding bound for floating sums; the interpreted slot-walking
//! [`CartComm::neighbor_reduce`] must match both; and [`Algo::Auto`] must
//! produce bit-identical output to whichever explicit algorithm the §3.2
//! cut-off selects for it.

use cartcomm::ops::Algo;
use cartcomm::{cutoff_ratio, CartComm, PlanKind};
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use cartcomm_types::{Pod, RedOp};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    offsets: Vec<Vec<i64>>,
    /// Elements per block — deliberately odd, so wire spans end off any
    /// power-of-two boundary.
    m: usize,
    op: RedOp,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..=3)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(2usize..4, d..=d),
                proptest::collection::vec(proptest::collection::vec(-2i64..3, d..=d), 1..5),
                prop_oneof![Just(1usize), Just(3), Just(5), Just(9)],
                prop_oneof![
                    Just(RedOp::Sum),
                    Just(RedOp::Prod),
                    Just(RedOp::Min),
                    Just(RedOp::Max)
                ],
            )
        })
        .prop_map(|(dims, offsets, m, op)| Case {
            dims,
            offsets,
            m,
            op,
        })
}

/// Test elements: anything Pod we can derive deterministic per-rank
/// payloads for. Values stay small so wrapping products remain tame and
/// float sums stay well-conditioned.
trait TestElem: Pod + PartialEq + Default + std::fmt::Debug {
    fn gen(seed: usize) -> Self;
}

impl TestElem for u8 {
    fn gen(seed: usize) -> Self {
        (seed % 251) as u8
    }
}

impl TestElem for i32 {
    fn gen(seed: usize) -> Self {
        (seed % 97) as i32 - 48
    }
}

impl TestElem for u64 {
    fn gen(seed: usize) -> Self {
        (seed % 1021) as u64
    }
}

/// Both reductions, combining vs trivial, one element type: byte-exact.
fn check_integer_equivalence<T: TestElem>(case: &Case) -> Result<(), TestCaseError> {
    let Case {
        dims,
        offsets,
        m,
        op,
    } = case.clone();
    let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
    let t = nb.len();
    let p: usize = dims.iter().product();
    let periods = vec![true; dims.len()];
    let results = Universe::builder(p).run(move |comm| {
        let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let rs_send: Vec<T> = (0..t * m).map(|x| T::gen(rank * 131 + x * 17)).collect();
        let ar_send: Vec<T> = (0..m).map(|e| T::gen(rank * 131 + e * 17)).collect();
        let mut rs_a = vec![T::default(); m];
        let mut rs_b = vec![T::default(); m];
        let mut ar_a = vec![T::default(); m];
        let mut ar_b = vec![T::default(); m];
        cart.neighbor_reduce_scatter(op, &rs_send, &mut rs_a, Algo::Combining)
            .unwrap();
        cart.neighbor_reduce_scatter(op, &rs_send, &mut rs_b, Algo::Trivial)
            .unwrap();
        cart.neighbor_allreduce(op, &ar_send, &mut ar_a, Algo::Combining)
            .unwrap();
        cart.neighbor_allreduce(op, &ar_send, &mut ar_b, Algo::Trivial)
            .unwrap();
        (rs_a, rs_b, ar_a, ar_b)
    });
    for (rank, (rs_a, rs_b, ar_a, ar_b)) in results.into_iter().enumerate() {
        prop_assert_eq!(rs_a, rs_b, "reduce_scatter divergence at rank {}", rank);
        prop_assert_eq!(ar_a, ar_b, "allreduce divergence at rank {}", rank);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 48,
        .. ProptestConfig::default()
    })]

    /// Integer reductions are exactly order-independent, so the compiled
    /// reversed tree must match the trivial algorithm bit for bit — for
    /// every op and across element widths 1, 4, and 8.
    #[test]
    fn integer_reductions_are_byte_identical(case in arb_case()) {
        check_integer_equivalence::<u8>(&case)?;
        check_integer_equivalence::<i32>(&case)?;
        check_integer_equivalence::<u64>(&case)?;
    }

    /// The interpreted slot-walking reducer (`neighbor_reduce`), seeded
    /// with the own block, computes the same allreduce as both executors.
    #[test]
    fn interpreted_reducer_matches_both_executors(case in arb_case()) {
        let Case { dims, offsets, m, op } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let p: usize = dims.iter().product();
        let periods = vec![true; dims.len()];
        let fold = move |a: i32, b: i32| match op {
            RedOp::Sum => a.wrapping_add(b),
            RedOp::Prod => a.wrapping_mul(b),
            RedOp::Min => a.min(b),
            RedOp::Max => a.max(b),
        };
        let results = Universe::builder(p).run(move |comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let own: Vec<i32> = (0..m).map(|e| i32::gen(rank * 131 + e * 17)).collect();
            let mut interp = own.clone();
            cart.neighbor_reduce(&mut interp, fold).unwrap();
            let mut comb = vec![0i32; m];
            let mut triv = vec![0i32; m];
            cart.neighbor_allreduce(op, &own, &mut comb, Algo::Combining).unwrap();
            cart.neighbor_allreduce(op, &own, &mut triv, Algo::Trivial).unwrap();
            (interp, comb, triv)
        });
        for (rank, (interp, comb, triv)) in results.into_iter().enumerate() {
            prop_assert_eq!(&interp, &comb, "interpreted vs compiled at rank {}", rank);
            prop_assert_eq!(&interp, &triv, "interpreted vs trivial at rank {}", rank);
        }
    }

    /// Floating sums may legitimately round differently between the tree
    /// and the t-round fold; the divergence is bounded by the number of
    /// reassociated additions. All contributions are positive and O(1),
    /// so `Σ|x| ≤ 2·(t+1)` bounds the classic `(n−1)·ε·Σ|x|` error.
    #[test]
    fn float_sums_agree_within_accumulation_order_bounds(case in arb_case()) {
        let Case { dims, offsets, m, .. } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let periods = vec![true; dims.len()];
        let results = Universe::builder(p).run(move |comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send32: Vec<f32> = (0..t * m)
                .map(|x| 1.0 + ((rank * 31 + x * 7) % 97) as f32 / 97.0)
                .collect();
            let send64: Vec<f64> = (0..m)
                .map(|e| 1.0 + ((rank * 31 + e * 7) % 97) as f64 / 97.0)
                .collect();
            let mut rs_a = vec![0f32; m];
            let mut rs_b = vec![0f32; m];
            let mut ar_a = vec![0f64; m];
            let mut ar_b = vec![0f64; m];
            cart.neighbor_reduce_scatter(RedOp::Sum, &send32, &mut rs_a, Algo::Combining)
                .unwrap();
            cart.neighbor_reduce_scatter(RedOp::Sum, &send32, &mut rs_b, Algo::Trivial)
                .unwrap();
            cart.neighbor_allreduce(RedOp::Sum, &send64, &mut ar_a, Algo::Combining)
                .unwrap();
            cart.neighbor_allreduce(RedOp::Sum, &send64, &mut ar_b, Algo::Trivial)
                .unwrap();
            (rs_a, rs_b, ar_a, ar_b)
        });
        let sum_abs = 2.0 * (t as f64 + 1.0);
        let tol32 = (t as f32) * f32::EPSILON * sum_abs as f32;
        let tol64 = (t as f64) * f64::EPSILON * sum_abs;
        for (rank, (rs_a, rs_b, ar_a, ar_b)) in results.into_iter().enumerate() {
            for (e, (a, b)) in rs_a.iter().zip(&rs_b).enumerate() {
                prop_assert!(
                    (a - b).abs() <= tol32,
                    "f32 reduce_scatter rank {} elem {}: {} vs {}", rank, e, a, b
                );
            }
            for (e, (a, b)) in ar_a.iter().zip(&ar_b).enumerate() {
                prop_assert!(
                    (a - b).abs() <= tol64,
                    "f64 allreduce rank {} elem {}: {} vs {}", rank, e, a, b
                );
            }
        }
    }

    /// `Algo::Auto` is a *selector*, not a third algorithm: its output is
    /// bit-identical to whichever explicit algorithm the §3.2 cut-off
    /// picks for the plan's `(t, C, V)` and the concrete block size —
    /// pinned with floating sums, where the two algorithms genuinely can
    /// differ in the low bits.
    #[test]
    fn auto_matches_the_algorithm_it_selects(
        case in arb_case(),
        ab in prop_oneof![Just(0.0f64), Just(16.0), Just(1e9)],
    ) {
        let Case { dims, offsets, m, .. } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let periods = vec![true; dims.len()];
        let results = Universe::builder(p).run(move |comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            // Replicate the published cut-off on the reduce plan the way
            // `Algo::Auto` resolves it (uniform blocks: m_avg = m bytes).
            let plan = cart.plans().schedule(PlanKind::ReduceScatter);
            let m_bytes = (m * std::mem::size_of::<f32>()) as f64;
            let combines = match cutoff_ratio(plan.t, plan.rounds, plan.volume_blocks) {
                Some(ratio) => m_bytes < ab * ratio,
                None => plan.rounds < plan.t,
            };
            let send: Vec<f32> = (0..t * m)
                .map(|x| 1.0 + ((rank * 31 + x * 7) % 97) as f32 / 97.0)
                .collect();
            let mut auto = vec![0f32; m];
            let mut explicit = vec![0f32; m];
            cart.neighbor_reduce_scatter(
                RedOp::Sum,
                &send,
                &mut auto,
                Algo::Auto { alpha_beta_bytes: ab },
            )
            .unwrap();
            let algo = if combines { Algo::Combining } else { Algo::Trivial };
            cart.neighbor_reduce_scatter(RedOp::Sum, &send, &mut explicit, algo)
                .unwrap();
            (auto, explicit, combines)
        });
        for (rank, (auto, explicit, combines)) in results.into_iter().enumerate() {
            let a: Vec<u32> = auto.iter().map(|x| x.to_bits()).collect();
            let b: Vec<u32> = explicit.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(
                a, b,
                "Auto(α/β={}) diverged from its selected algorithm \
                 (combining={}) at rank {}", ab, combines, rank
            );
        }
    }
}
