//! Property-based *runtime* tests: random neighborhoods executed on real
//! thread universes, with proptest shrinking any failure down to a minimal
//! counterexample. Case counts are kept small — each case spins up a
//! universe — but shrinkage makes these far more informative than fixed
//! random sweeps when something breaks.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::RelNeighborhood;
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Case {
    dims: Vec<usize>,
    periods: Vec<bool>,
    offsets: Vec<Vec<i64>>,
    m: usize,
}

fn arb_case() -> impl Strategy<Value = Case> {
    (1usize..3)
        .prop_flat_map(|d| {
            (
                proptest::collection::vec(2usize..4, d..=d),
                proptest::collection::vec(any::<bool>(), d..=d),
                proptest::collection::vec(proptest::collection::vec(-2i64..3, d..=d), 1..5),
                1usize..3,
            )
        })
        .prop_map(|(dims, periods, offsets, m)| Case {
            dims,
            periods,
            offsets,
            m,
        })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24,
        max_shrink_iters: 64,
        .. ProptestConfig::default()
    })]

    /// Combining and trivial alltoall agree bit-for-bit on arbitrary
    /// topologies (tori, meshes, mixed) and neighborhoods.
    #[test]
    fn combining_equals_trivial_alltoall(case in arb_case()) {
        let Case { dims, periods, offsets, m } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
            let mut a = vec![-5i32; t * m];
            let mut b = vec![-5i32; t * m];
            cart.alltoall(&send, &mut a, Algo::Combining).unwrap();
            cart.alltoall(&send, &mut b, Algo::Trivial).unwrap();
            (a, b)
        });
        for (rank, (a, b)) in results.into_iter().enumerate() {
            prop_assert_eq!(a, b, "divergence at rank {}", rank);
        }
    }

    /// Combining and trivial allgather agree on arbitrary topologies.
    #[test]
    fn combining_equals_trivial_allgather(case in arb_case()) {
        let Case { dims, periods, offsets, m } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
            let mut a = vec![-5i32; t * m];
            let mut b = vec![-5i32; t * m];
            cart.allgather(&send, &mut a, Algo::Combining).unwrap();
            cart.allgather(&send, &mut b, Algo::Trivial).unwrap();
            (a, b)
        });
        for (rank, (a, b)) in results.into_iter().enumerate() {
            prop_assert_eq!(a, b, "divergence at rank {}", rank);
        }
    }

    /// `Algo::Auto` delivers bytes identical to BOTH explicit algorithms,
    /// wherever its cut-off heuristic lands, for any α/β ratio.
    #[test]
    fn auto_equals_both_explicit_algorithms(case in arb_case(), ab in 0.0f64..4096.0) {
        let Case { dims, periods, offsets, m } = case;
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
            let mut auto = vec![-5i32; t * m];
            let mut trivial = vec![-5i32; t * m];
            let mut combining = vec![-5i32; t * m];
            cart.alltoall(&send, &mut auto, Algo::Auto { alpha_beta_bytes: ab }).unwrap();
            cart.alltoall(&send, &mut trivial, Algo::Trivial).unwrap();
            cart.alltoall(&send, &mut combining, Algo::Combining).unwrap();
            (auto, trivial, combining)
        });
        for (rank, (auto, trivial, combining)) in results.into_iter().enumerate() {
            prop_assert_eq!(&auto, &trivial, "auto vs trivial at rank {}", rank);
            prop_assert_eq!(&auto, &combining, "auto vs combining at rank {}", rank);
        }
    }

    /// Tree and trivial reductions agree on arbitrary tori.
    #[test]
    fn combining_equals_trivial_reduce(case in arb_case()) {
        let Case { dims, offsets, m, .. } = case;
        let periods = vec![true; dims.len()]; // tree reduce is torus-only
        let nb = RelNeighborhood::new(dims.len(), offsets).expect("valid");
        let p: usize = dims.iter().product();
        let results = Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let mut a: Vec<i64> = (0..m).map(|e| (rank * 7 + e) as i64).collect();
            let mut b = a.clone();
            cart.neighbor_reduce(&mut a, |x, y| x + y).unwrap();
            cart.neighbor_reduce_trivial(&mut b, |x, y| x + y).unwrap();
            (a, b)
        });
        for (rank, (a, b)) in results.into_iter().enumerate() {
            prop_assert_eq!(a, b, "divergence at rank {}", rank);
        }
    }
}
