//! Whole-universe delivery properties of the combining schedules.
//!
//! The first group checks the *plans* statically — no threads, no
//! `Universe`. For random topologies (d ∈ 1..=4, mixed
//! periodic/non-periodic dims) and random isomorphic neighborhoods, the
//! plan is *simulated* across every rank simultaneously: each phase
//! gathers all outgoing messages from the pre-phase state (matching the
//! executor's gather-before-scatter order), routes them through
//! `CartTopology::rank_of_offset` (with wraparound in periodic dims), and
//! scatters them. The properties of Props 3.2/3.3:
//!
//! * every block is delivered to its final receive slot **exactly once**;
//! * `plan.rounds == Σ C_k` and (alltoall) `plan.volume_blocks == Σ z_i`;
//! * the final state is correct on every rank: `Recv[i]` holds the block
//!   that rank `r − N[i]` addressed to its neighbor `i`.
//!
//! The last group checks the *executors* at runtime: on random all-periodic
//! universes the compiled span-program executor must be byte-identical to
//! both the interpreted round-by-round executor and the trivial algorithm.

// Rank loops below index `states` AND route through the topology by rank;
// enumerate() would split the borrow awkwardly.
#![allow(clippy::needless_range_loop)]

use std::collections::HashMap;

use cartcomm::exec::{BlockLayout, ExecLayouts};
use cartcomm::exec_mesh::execute_alltoall_mesh;
use cartcomm::ops::Algo;
use cartcomm::schedule::{allgather_plan, alltoall_plan};
use cartcomm::{CartComm, Loc, Plan};
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};
use proptest::prelude::*;

/// Random `(dims, periods, neighborhood)` with at least one periodic dim;
/// offsets are zeroed in non-periodic dims so the combining schedule is
/// executable everywhere (mesh clipping is `exec_mesh`'s job).
fn arb_universe() -> impl Strategy<Value = (Vec<usize>, Vec<bool>, RelNeighborhood)> {
    (1usize..=4).prop_flat_map(|d| {
        (
            proptest::collection::vec(2usize..5, d..=d),
            proptest::collection::vec(any::<bool>(), d..=d),
            proptest::collection::vec(proptest::collection::vec(-2i64..3, d..=d), 0..16),
        )
            .prop_map(move |(dims, mut periods, mut offsets)| {
                if periods.iter().all(|&p| !p) {
                    periods[0] = true;
                }
                for off in &mut offsets {
                    for k in 0..d {
                        if !periods[k] {
                            off[k] = 0;
                        }
                    }
                }
                let nb = RelNeighborhood::new(d, offsets).expect("valid neighborhood");
                (dims, periods, nb)
            })
    })
}

/// Per-rank slot state during simulation. `Send` slots are immutable
/// sources (the plans never write them), so only Recv/Temp are stored.
struct SimState {
    recv: Vec<Option<(usize, usize)>>,
    temp: Vec<Option<(usize, usize)>>,
}

/// Simulate `plan` on `topo` for all ranks at once. `send_value(rank, slot)`
/// names the value a rank's send slot holds: `(origin, block)` for
/// alltoall, `(origin, 0)` for allgather. Returns per-rank final states and
/// the per-(origin, block) count of writes into the block's *final* receive
/// slot on its *final* destination rank.
type DeliveryCounts = HashMap<(usize, usize), usize>;

fn simulate(
    topo: &CartTopology,
    plan: &Plan,
    send_value: impl Fn(usize, usize) -> (usize, usize),
    final_dst: impl Fn(usize, usize) -> usize,
) -> Result<(Vec<SimState>, DeliveryCounts), TestCaseError> {
    let p = topo.size();
    let t = plan.t;
    let mut states: Vec<SimState> = (0..p)
        .map(|_| SimState {
            recv: vec![None; t],
            temp: vec![None; plan.temp_slots],
        })
        .collect();
    let mut delivered: HashMap<(usize, usize), usize> = HashMap::new();

    let read = |st: &SimState, rank: usize, loc: Loc, slot: usize| match loc {
        Loc::Send => Some(send_value(rank, slot)),
        Loc::Recv => st.recv[slot],
        Loc::Temp => st.temp[slot],
    };
    let write = |states: &mut Vec<SimState>,
                 delivered: &mut HashMap<(usize, usize), usize>,
                 rank: usize,
                 loc: Loc,
                 slot: usize,
                 val: (usize, usize)|
     -> Result<(), TestCaseError> {
        match loc {
            Loc::Send => return Err(TestCaseError::fail("plan writes the send buffer")),
            Loc::Recv => {
                // A write into Recv[b] where b is the value's own block id,
                // on the block's final destination rank, is a delivery.
                let (origin, block) = val;
                if slot == block && final_dst(origin, block) == rank {
                    *delivered.entry(val).or_insert(0) += 1;
                }
                states[rank].recv[slot] = Some(val);
            }
            Loc::Temp => states[rank].temp[slot] = Some(val),
        }
        Ok(())
    };

    for phase in &plan.phases {
        // Copies first, as in the executor (sequential per rank).
        for copy in &phase.copies {
            for rank in 0..p {
                let v = read(&states[rank], rank, copy.from.loc, copy.from.slot)
                    .ok_or_else(|| TestCaseError::fail("copy from unfilled slot"))?;
                write(
                    &mut states,
                    &mut delivered,
                    rank,
                    copy.to.loc,
                    copy.to.slot,
                    v,
                )?;
            }
        }
        // Then all rounds of the phase: gather every message from the
        // pre-round state of every rank, then scatter all of them.
        let mut in_flight: Vec<(usize, Loc, usize, (usize, usize))> = Vec::new();
        for round in &phase.rounds {
            for rank in 0..p {
                let dst = topo
                    .rank_of_offset(rank, &round.offset)
                    .map_err(|e| TestCaseError::fail(format!("routing: {e}")))?
                    .ok_or_else(|| TestCaseError::fail("offset leaves the topology"))?;
                for j in 0..round.block_ids.len() {
                    let v = read(&states[rank], rank, round.sends[j].loc, round.sends[j].slot)
                        .ok_or_else(|| TestCaseError::fail("send of unfilled slot"))?;
                    in_flight.push((dst, round.recvs[j].loc, round.recvs[j].slot, v));
                }
            }
        }
        for (dst, loc, slot, v) in in_flight {
            write(&mut states, &mut delivered, dst, loc, slot, v)?;
        }
    }
    Ok((states, delivered))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Prop 3.2 end to end: the alltoall plan has C = Σ C_k rounds and
    /// volume Σ z_i, and on a random (partly periodic) topology it delivers
    /// every (origin, block) pair to `Recv[block]` of rank
    /// `origin + N[block]` exactly once.
    #[test]
    fn alltoall_delivers_each_block_exactly_once(u in arb_universe()) {
        let (dims, periods, nb) = u;
        let plan = alltoall_plan(&nb);
        prop_assert_eq!(plan.validate(), Ok(()));
        prop_assert_eq!(plan.rounds, nb.combining_rounds());
        prop_assert_eq!(plan.volume_blocks, nb.alltoall_volume());
        prop_assert_eq!(plan.t, nb.len());

        let topo = CartTopology::new(&dims, &periods).expect("valid topology");
        let p = topo.size();
        let route = |origin: usize, block: usize| -> usize {
            topo.rank_of_offset(origin, nb.offset(block))
                .expect("in range")
                .expect("periodic dims only")
        };
        let (states, delivered) = simulate(&topo, &plan, |rank, slot| (rank, slot), route)?;

        // Exactly-once delivery of all p * t blocks.
        prop_assert_eq!(delivered.len(), p * nb.len());
        for ((origin, block), n) in &delivered {
            prop_assert_eq!(
                *n, 1,
                "block {} of rank {} delivered {} times", block, origin, n
            );
        }
        // Final state: Recv[i] on rank r holds the block its source
        // neighbor addressed to i.
        for r in 0..p {
            for i in 0..nb.len() {
                let neg: Vec<i64> = nb.offset(i).iter().map(|&c| -c).collect();
                let src = topo.rank_of_offset(r, &neg).unwrap().unwrap();
                prop_assert_eq!(states[r].recv[i], Some((src, i)));
            }
        }
    }

    /// Prop 3.3 end to end: the allgather tree plan has C = Σ C_k rounds
    /// and, on a random topology, delivers the *contribution* of rank
    /// `r − N[j]` into `Recv[j]` of every rank `r`, each contribution
    /// arriving at each of its destinations exactly once.
    #[test]
    fn allgather_delivers_each_contribution_exactly_once(u in arb_universe()) {
        let (dims, periods, nb) = u;
        let plan = allgather_plan(&nb);
        prop_assert_eq!(plan.validate(), Ok(()));
        prop_assert_eq!(plan.rounds, nb.combining_rounds());
        prop_assert_eq!(plan.t, nb.len());

        let topo = CartTopology::new(&dims, &periods).expect("valid topology");
        let p = topo.size();
        // In the allgather every rank contributes ONE block that must fan
        // out to Recv[j] of rank origin + N[j] for every j. Deliveries are
        // counted per (origin, final recv slot): tag the in-flight value
        // with its origin only and treat each Recv[j] write of the correct
        // origin as the delivery of pair (origin, j).
        let route = |origin: usize, j: usize| -> usize {
            topo.rank_of_offset(origin, nb.offset(j))
                .expect("in range")
                .expect("periodic dims only")
        };
        let mut delivered: HashMap<(usize, usize), usize> = HashMap::new();
        let (states, _) = simulate(
            &topo,
            &plan,
            |rank, _slot| (rank, usize::MAX), // contribution tagged by origin
            |_, _| usize::MAX, // delivery counting handled below instead
        )?;
        for r in 0..p {
            for j in 0..nb.len() {
                let neg: Vec<i64> = nb.offset(j).iter().map(|&c| -c).collect();
                let src = topo.rank_of_offset(r, &neg).unwrap().unwrap();
                prop_assert_eq!(
                    states[r].recv[j].map(|(o, _)| o), Some(src),
                    "rank {} Recv[{}]", r, j
                );
                prop_assert_eq!(route(src, j), r);
                *delivered.entry((src, j)).or_insert(0) += 1;
            }
        }
        // Every (contributor, slot) pair accounted for exactly once.
        prop_assert_eq!(delivered.len(), p * nb.len());
        prop_assert!(delivered.values().all(|&n| n == 1));
    }
}

/// Random small all-periodic universe for runtime executor comparison:
/// d ∈ 1..=3, 2–3 processes per dimension (≤ 27 threads), 1–5 offsets,
/// 1–4 bytes per block.
fn arb_runtime_universe() -> impl Strategy<Value = (Vec<usize>, RelNeighborhood, usize)> {
    (1usize..=3).prop_flat_map(|d| {
        (
            proptest::collection::vec(2usize..4, d..=d),
            proptest::collection::vec(proptest::collection::vec(-2i64..3, d..=d), 1..6),
            1usize..5,
        )
            .prop_map(move |(dims, offsets, m)| {
                let nb = RelNeighborhood::new(d, offsets).expect("valid neighborhood");
                (dims, nb, m)
            })
    })
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 12,
        max_shrink_iters: 32,
        .. ProptestConfig::default()
    })]

    /// The compiled span-program executor is byte-identical to both
    /// interpreted references on random isomorphic neighborhoods: the
    /// round-by-round interpreted executor (`execute_alltoall_mesh`, which
    /// on a full torus performs exactly the plan's gathers, exchanges, and
    /// scatters) and the trivial t-round algorithm.
    #[test]
    fn compiled_alltoall_matches_interpreted_executors(u in arb_runtime_universe()) {
        let (dims, nb, m) = u;
        let t = nb.len();
        let p: usize = dims.iter().product();
        let periods = vec![true; dims.len()];
        let results = Universe::builder(p).run(|comm| {
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<u8> = (0..t * m)
                .map(|x| (rank.wrapping_mul(37) ^ x.wrapping_mul(11)) as u8)
                .collect();
            // Compiled path (through the communicator's plan cache).
            let mut compiled = vec![0u8; t * m];
            cart.alltoall::<u8>(&send, &mut compiled, Algo::Combining).unwrap();
            // Trivial reference.
            let mut trivial = vec![0u8; t * m];
            cart.alltoall::<u8>(&send, &mut trivial, Algo::Trivial).unwrap();
            // Interpreted plan executor over the same layouts.
            let plan = cart.plans().alltoall();
            let blocks: Vec<BlockLayout> = (0..t)
                .map(|i| BlockLayout::contiguous((i * m) as i64, m))
                .collect();
            let lay = ExecLayouts {
                send: blocks.clone(),
                recv: blocks,
                block_bytes: vec![m; t],
                temp_offsets: Vec::new(),
                temp_sizes: Vec::new(),
            }
            .with_temp_sizes(vec![m; plan.temp_slots]);
            let mut temp = vec![0u8; lay.temp_len()];
            let mut interpreted = vec![0u8; t * m];
            execute_alltoall_mesh(
                cart.comm(),
                cart.topology(),
                cart.neighborhood(),
                &plan,
                &lay,
                &send,
                &mut interpreted,
                &mut temp,
                0x7D00_0000,
            )
            .unwrap();
            (compiled, trivial, interpreted)
        });
        for (rank, (compiled, trivial, interpreted)) in results.into_iter().enumerate() {
            prop_assert_eq!(&compiled, &trivial, "compiled vs trivial at rank {}", rank);
            prop_assert_eq!(&compiled, &interpreted, "compiled vs interpreted at rank {}", rank);
        }
    }
}
