//! Integration tests for the compile stage ([`cartcomm::compile`]):
//!
//! * steady-state persistent execution is allocation-free — every wire
//!   buffer is a pool hit, nothing is dropped (asserted via telemetry);
//! * the communicator's compiled-plan cache shares programs across
//!   persistent handles and repeated one-shot collectives;
//! * compiled programs resolve the same peers, tags, and wire sizes the
//!   interpreted executor would derive round by round;
//! * span programs flatten contiguous layouts into single memcpy ranges.

use cartcomm::exec::{BlockLayout, ExecLayouts};
use cartcomm::halo::HaloExchange;
use cartcomm::ops::Algo;
use cartcomm::schedule::alltoall_plan;
use cartcomm::{CartComm, CompiledPlan, Plan, PlanKind};
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};
use cartcomm_types::Datatype;

/// Contiguous per-block layouts (block `i` at byte `i·m`) with one
/// `m`-byte temp slot per plan slot — the regular-alltoall shape.
fn contiguous_lay(plan: &Plan, t: usize, m: usize) -> ExecLayouts {
    let blocks: Vec<BlockLayout> = (0..t)
        .map(|i| BlockLayout::contiguous((i * m) as i64, m))
        .collect();
    ExecLayouts {
        send: blocks.clone(),
        recv: blocks,
        block_bytes: vec![m; t],
        temp_offsets: Vec::new(),
        temp_sizes: Vec::new(),
    }
    .with_temp_sizes(vec![m; plan.temp_slots])
}

/// The acceptance property of the compile stage: after warm-up, repeated
/// persistent executes perform exactly one pool take per communication
/// round — all hits, zero misses, zero dropped recycles — i.e. the steady
/// state allocates nothing and every received wire is reused.
#[test]
fn persistent_steady_state_is_allocation_free() {
    const ITERS: u64 = 50;
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 8usize;
    let stats = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let mut handle = cart.alltoall_init::<u64>(m, Algo::Combining).unwrap();
        let rounds = handle.compiled().expect("combining compiles").rounds();
        let rank = cart.rank();
        let send: Vec<u64> = (0..t * m).map(|x| (rank * 1000 + x) as u64).collect();
        let mut recv = vec![0u64; t * m];
        // One warm-up execute, then scope the telemetry to the steady
        // state as a metrics delta (no counter reset needed).
        handle.execute_typed(&cart, &send, &mut recv).unwrap();
        let warm = cart.comm().obs().snapshot();
        let warm_dropped = cart.comm().pool_telemetry().dropped;
        for _ in 0..ITERS {
            handle.execute_typed(&cart, &send, &mut recv).unwrap();
        }
        // The last iteration still delivered correct blocks.
        for i in 0..t {
            let src = cart
                .relative_shift(cart.neighborhood().offset(i))
                .unwrap()
                .0
                .unwrap();
            for e in 0..m {
                assert_eq!(recv[i * m + e], (src * 1000 + i * m + e) as u64);
            }
        }
        let d = cart.comm().obs().metrics().delta_since(&warm);
        let dropped = cart.comm().pool_telemetry().dropped - warm_dropped;
        (d.pool_hits, d.pool_misses, dropped, rounds)
    });
    for (rank, (hits, misses, dropped, rounds)) in stats.into_iter().enumerate() {
        assert_eq!(rounds, 4, "moore(2,1) combines into C = 4 rounds");
        assert_eq!(
            misses, 0,
            "rank {rank}: steady state must not allocate wires"
        );
        assert_eq!(
            dropped, 0,
            "rank {rank}: every recycled wire must be retained"
        );
        assert_eq!(
            hits,
            ITERS * rounds as u64,
            "rank {rank}: exactly one pool take per round per execute"
        );
    }
}

/// The same acceptance property for the persistent reductions: after one
/// warm-up execute, repeated `reduce_scatter_init`/`allreduce_init`
/// executes take every wire from the pool — zero misses, zero drops —
/// so the steady-state accumulate path allocates nothing.
#[test]
fn persistent_reductions_steady_state_is_allocation_free() {
    use cartcomm_types::RedOp;
    const ITERS: u64 = 50;
    let dims = [4usize, 4];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let m = 8usize;
    let stats = Universe::builder(16).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone()).unwrap();
        let mut rs = cart
            .reduce_scatter_init::<i32>(RedOp::Sum, m, Algo::Combining)
            .unwrap();
        let mut ar = cart
            .allreduce_init::<i32>(RedOp::Sum, m, Algo::Combining)
            .unwrap();
        let rounds =
            rs.compiled().unwrap().rounds() as u64 + ar.compiled().unwrap().rounds() as u64;
        let rank = cart.rank();
        let rs_send: Vec<i32> = (0..t * m).map(|x| (rank * 100 + x) as i32).collect();
        let ar_send: Vec<i32> = (0..m).map(|e| (rank * 10 + e) as i32).collect();
        let mut rs_recv = vec![0i32; m];
        let mut ar_recv = vec![0i32; m];
        // One warm-up execute per handle, then scope the telemetry to the
        // steady state as a metrics delta.
        rs.execute_typed(&cart, &rs_send, &mut rs_recv).unwrap();
        ar.execute_typed(&cart, &ar_send, &mut ar_recv).unwrap();
        let warm = cart.comm().obs().snapshot();
        let warm_dropped = cart.comm().pool_telemetry().dropped;
        for _ in 0..ITERS {
            rs.execute_typed(&cart, &rs_send, &mut rs_recv).unwrap();
            ar.execute_typed(&cart, &ar_send, &mut ar_recv).unwrap();
        }
        // The last iteration still reduced correctly: the allreduce sum is
        // the own block plus every neighbor's own block.
        for (e, got) in ar_recv.iter().enumerate() {
            let mut want = (rank * 10 + e) as i32;
            for off in nb.offsets() {
                let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
                if let (Some(src), _) = cart.relative_shift(&neg).unwrap() {
                    want += (src * 10 + e) as i32;
                }
            }
            assert_eq!(*got, want, "rank {rank} elem {e}");
        }
        let d = cart.comm().obs().metrics().delta_since(&warm);
        let dropped = cart.comm().pool_telemetry().dropped - warm_dropped;
        (d.pool_hits, d.pool_misses, dropped, rounds)
    });
    for (rank, (hits, misses, dropped, rounds)) in stats.into_iter().enumerate() {
        assert_eq!(rounds, 8, "two moore(2,1) reduce plans, C = 4 each");
        assert_eq!(
            misses, 0,
            "rank {rank}: steady-state reductions must not allocate wires"
        );
        assert_eq!(
            dropped, 0,
            "rank {rank}: every recycled wire must be retained"
        );
        assert_eq!(
            hits,
            ITERS * rounds,
            "rank {rank}: exactly one pool take per round per execute"
        );
    }
}

/// The communicator-level plan cache: identical layouts compile once and
/// are shared by persistent handles and one-shot collectives alike;
/// different block sizes or collective kinds get their own programs.
#[test]
fn plan_cache_shares_compiled_programs() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    // Isolated store: other tests in this binary share the process-wide
    // PlanStore and would perturb the pinned per-step deltas.
    let store = cartcomm::PlanStore::new(4, 16);
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &dims, &[true, true], nb.clone())
            .unwrap()
            .with_plan_store(store.clone());
        // Each step asserts what *that step alone* contributed, via
        // metrics deltas over the plan-cache counters.
        let cache_delta = |since: &cartcomm_comm::obs::MetricsSnapshot| {
            let d = cart.comm().obs().metrics().delta_since(since);
            (d.plan_cache_hits, d.plan_cache_misses)
        };
        let s = cart.comm().obs().snapshot();
        // Trivial handles bypass the compile stage entirely.
        let trivial = cart.alltoall_init::<i32>(4, Algo::Trivial).unwrap();
        assert!(trivial.compiled().is_none());
        assert_eq!(cache_delta(&s), (0, 0));
        // First combining init compiles; a second identical init reuses it.
        let s = cart.comm().obs().snapshot();
        let h1 = cart.alltoall_init::<i32>(4, Algo::Combining).unwrap();
        assert!(h1.compiled().is_some());
        assert_eq!(cache_delta(&s), (0, 1));
        let s = cart.comm().obs().snapshot();
        let _h2 = cart.alltoall_init::<i32>(4, Algo::Combining).unwrap();
        assert_eq!(cache_delta(&s), (1, 0));
        // One-shot collectives with the same shape hit the same entry.
        let s = cart.comm().obs().snapshot();
        let send = vec![7i32; t * 4];
        let mut recv = vec![0i32; t * 4];
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        cart.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        assert_eq!(cache_delta(&s), (2, 0));
        // A different block size is a different program...
        let s = cart.comm().obs().snapshot();
        let send2 = vec![7i32; t * 2];
        let mut recv2 = vec![0i32; t * 2];
        cart.alltoall(&send2, &mut recv2, Algo::Combining).unwrap();
        assert_eq!(cache_delta(&s), (0, 1));
        // ...and so is a different collective kind.
        let s = cart.comm().obs().snapshot();
        let sendg = vec![1i32; 4];
        let mut recvg = vec![0i32; t * 4];
        cart.allgather(&sendg, &mut recvg, Algo::Combining).unwrap();
        assert_eq!(cache_delta(&s), (0, 1));
        // The cache's own lifetime counters cross-check the delta story.
        let s = cart.plans().cache_stats();
        assert_eq!((s.hits, s.misses), (3, 3));
    });
}

/// The process-wide store: a second communicator with the same topology,
/// neighborhood, and layouts never compiles — its first lookup is a store
/// hit on the program the first communicator produced — while hit/miss
/// attribution stays per communicator.
#[test]
fn plan_store_shares_programs_across_communicators() {
    let dims = [3usize, 3];
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let store = cartcomm::PlanStore::new(4, 16);
    Universe::builder(9).run(|comm| {
        let mk = || {
            CartComm::create(comm, &dims, &[true, true], nb.clone())
                .unwrap()
                .with_plan_store(store.clone())
        };
        let send = vec![3i32; t * 4];
        let mut recv = vec![0i32; t * 4];

        // Tenant 1 compiles once, then hits.
        let tenant1 = mk();
        tenant1.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        tenant1.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        let s1 = tenant1.plans().cache_stats();
        assert_eq!((s1.hits, s1.misses), (1, 1), "tenant 1 compiles once");

        // Tenant 2, same identity: never compiles at all.
        let tenant2 = mk();
        tenant2.alltoall(&send, &mut recv, Algo::Combining).unwrap();
        let s2 = tenant2.plans().cache_stats();
        assert_eq!(
            (s2.hits, s2.misses),
            (1, 0),
            "tenant 2's first lookup is a store hit"
        );
        // Both resolve the very same program object. The layouts must be
        // un-temp-sized, exactly as the op path passes them (temp sizing
        // happens inside the store miss path, after keying).
        let m_bytes = 4 * std::mem::size_of::<i32>();
        let blocks: Vec<BlockLayout> = (0..t)
            .map(|i| BlockLayout::contiguous((i * m_bytes) as i64, m_bytes))
            .collect();
        let lay = ExecLayouts {
            send: blocks.clone(),
            recv: blocks,
            block_bytes: vec![m_bytes; t],
            temp_offsets: Vec::new(),
            temp_sizes: Vec::new(),
        };
        let key = tenant1.plans().store_key(PlanKind::Alltoall, &lay);
        assert_eq!(key, tenant2.plans().store_key(PlanKind::Alltoall, &lay));
        let cp1 = tenant1
            .plans()
            .compiled(PlanKind::Alltoall, lay.clone())
            .unwrap();
        let cp2 = tenant2.plans().compiled(PlanKind::Alltoall, lay).unwrap();
        assert!(std::sync::Arc::ptr_eq(&cp1, &cp2), "one shared program");
    });
    // 9 ranks × 1 compile each; every other lookup across both tenants hit.
    let s = store.stats();
    assert_eq!(s.misses, 9, "one compile per rank process-wide");
    assert!(s.hits >= 9 * 4, "all re-lookups served from the store");
}

/// Compiled programs agree with the plan: one compiled round per plan
/// round, peers resolved exactly as `relative_shift` would, and wire
/// capacities equal to the plan's per-round byte totals — for every rank
/// of the torus (no universe needed; compilation is pure).
#[test]
fn compiled_peers_and_wires_match_plan() {
    let topo = CartTopology::new(&[3, 4], &[true, true]).unwrap();
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let plan = alltoall_plan(&nb);
    let m = 12usize;
    let lay = contiguous_lay(&plan, nb.len(), m);
    let expected_wires = plan.round_bytes(&|b| lay.block_bytes[b]);
    let offsets: Vec<&Vec<i64>> = plan
        .phases
        .iter()
        .flat_map(|p| &p.rounds)
        .map(|r| &r.offset)
        .collect();
    for rank in 0..topo.size() {
        let cp = CompiledPlan::compile(&topo, rank, &plan, &lay, 0x100).unwrap();
        assert_eq!(cp.kind(), PlanKind::Alltoall);
        assert_eq!(cp.rounds(), plan.rounds);
        assert_eq!(cp.wire_capacities(), expected_wires);
        let peers = cp.round_peers();
        assert_eq!(peers.len(), offsets.len());
        for (i, off) in offsets.iter().enumerate() {
            let (src, tgt) = topo.relative_shift(rank, off).unwrap();
            assert_eq!(
                peers[i],
                (tgt.unwrap(), src.unwrap()),
                "rank {rank} round {i}"
            );
        }
    }
}

/// Span-program flattening: a 1-D ring round moves one contiguous block —
/// exactly one gather span and one scatter span per round — and adjacent
/// send blocks riding the same round coalesce into a single memcpy range.
#[test]
fn span_programs_flatten_and_coalesce() {
    // 1-D ring, neighborhood {-1, +1}: C = 2 rounds, one block each.
    let topo = CartTopology::new(&[4], &[true]).unwrap();
    let nb = RelNeighborhood::new(1, vec![vec![-1], vec![1]]).unwrap();
    let plan = alltoall_plan(&nb);
    let lay = contiguous_lay(&plan, nb.len(), 8);
    let cp = CompiledPlan::compile(&topo, 0, &plan, &lay, 0).unwrap();
    assert_eq!(cp.rounds(), 2);
    assert_eq!(cp.copy_count(), 0);
    assert_eq!(cp.wire_capacities(), vec![8, 8]);
    assert_eq!(
        cp.span_count(),
        4,
        "one gather + one scatter span per round"
    );

    // Offsets (1,0) and (1,1) share the phase-0 round with shift 1: their
    // send blocks are adjacent in memory, so the round's gather program
    // coalesces them. Three block movements (two in phase 0, one in phase
    // 1) would need 6 spans uncoalesced.
    let topo2 = CartTopology::new(&[3, 3], &[true, true]).unwrap();
    let nb2 = RelNeighborhood::new(2, vec![vec![1, 0], vec![1, 1]]).unwrap();
    let plan2 = alltoall_plan(&nb2);
    let lay2 = contiguous_lay(&plan2, nb2.len(), 8);
    let cp2 = CompiledPlan::compile(&topo2, 0, &plan2, &lay2, 0).unwrap();
    assert!(
        cp2.span_count() < 6,
        "adjacent blocks must coalesce (got {} spans)",
        cp2.span_count()
    );
}

/// The cache key separates plan kinds and layout shapes, and is stable
/// across clones of the same layouts.
#[test]
fn fingerprints_separate_kinds_and_layouts() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let plan = alltoall_plan(&nb);
    let lay = contiguous_lay(&plan, nb.len(), 8);
    let lay_big = contiguous_lay(&plan, nb.len(), 16);
    assert_ne!(
        lay.fingerprint(PlanKind::Alltoall),
        lay.fingerprint(PlanKind::Allgather)
    );
    assert_ne!(
        lay.fingerprint(PlanKind::Alltoall),
        lay_big.fingerprint(PlanKind::Alltoall)
    );
    assert_eq!(
        lay.fingerprint(PlanKind::Alltoall),
        lay.clone().fingerprint(PlanKind::Alltoall)
    );
}

/// Every dimension phase of a halo exchange runs a compiled program: the
/// total compiled round count equals the exchange's 2d messages.
#[test]
fn halo_phases_run_compiled_programs() {
    Universe::builder(4).run(|comm| {
        let elem = Datatype::bytes(4);
        let mut h = HaloExchange::new(comm, &[2, 2], &[2, 2], 1, &elem).unwrap();
        assert_eq!(h.compiled_rounds(), h.messages_per_exchange());
        let mut tile = vec![0u8; 4 * 4 * 4];
        h.exchange(&mut tile).unwrap();
    });
}
