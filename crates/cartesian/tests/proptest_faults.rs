//! Property tests for the reliable-delivery layer under randomized chaos:
//! random Cartesian neighborhoods (d ∈ 1..=3), random fault seeds, and
//! random retry schedules. The invariants pinned on every sampled case:
//!
//! * **exactly-once** — both the trivial and the combining executor
//!   deliver each block to its slot exactly once (the receive buffer is
//!   byte-identical to the fault-free reference despite drops, duplicate
//!   copies, and reordering);
//! * **termination** — every collective returns: the retry budget bounds
//!   waiting, so no drop pattern the spec can produce hangs a rank;
//! * **accounting** — the plane injected faults (the run exercised the
//!   protocol, not a degenerate no-op), retransmissions recovered every
//!   dropped data envelope, and dedup absorbed every surviving duplicate.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::{FaultSpec, LinkSel, RetryPolicy, Tag, Universe};
use cartcomm_topo::{CartTopology, RelNeighborhood};
use proptest::prelude::*;
use std::time::Duration;

/// Cartesian data tags — same range the chaos suite scopes to.
const CART_TAGS_LO: Tag = 0x7A00_0000;
const CART_TAGS_HI: Tag = 0x7F00_0000;

#[derive(Debug, Clone)]
struct ChaosCase {
    dims: Vec<usize>,
    offsets: Vec<Vec<i64>>,
    m: usize,
    seed: u64,
    attempts: u32,
    base_ms: u64,
    drop: f64,
    dup: f64,
    reorder: f64,
}

/// Random torus (d ∈ 1..=3, p ≤ 27), random neighborhood within radius 1,
/// random seed, rates and retry schedule. Rates are capped (drop ≤ 0.15)
/// so the expected retry chains stay short and cases run quickly.
fn arb_chaos_case() -> impl Strategy<Value = ChaosCase> {
    (1usize..=3).prop_flat_map(|d| {
        (
            proptest::collection::vec(2usize..=3, d..=d),
            proptest::collection::vec(proptest::collection::vec(-1i64..=1, d..=d), 1..10),
            1usize..5,
            any::<u64>(),
            8u32..=12,
            20u64..=50,
            0.0f64..0.15,
            0.0f64..0.10,
            0.0f64..0.25,
        )
            .prop_map(
                move |(dims, offsets, m, seed, attempts, base_ms, drop, dup, reorder)| ChaosCase {
                    dims,
                    offsets,
                    m,
                    seed,
                    attempts,
                    base_ms,
                    drop,
                    dup,
                    reorder,
                },
            )
    })
}

fn payload(rank: usize, block: usize, e: usize) -> i32 {
    (rank * 1_000_000 + block * 1_000 + e) as i32
}

fn expected_alltoall(topo: &CartTopology, nb: &RelNeighborhood, rank: usize, m: usize) -> Vec<i32> {
    let mut out = vec![0i32; nb.len() * m];
    for (i, off) in nb.offsets().iter().enumerate() {
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        if let Some(src) = topo.rank_of_offset(rank, &neg).unwrap() {
            for e in 0..m {
                out[i * m + e] = payload(src, i, e);
            }
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 10,
        max_shrink_iters: 16,
        .. ProptestConfig::default()
    })]

    /// Exactly-once delivery and termination on arbitrary chaotic universes.
    #[test]
    fn reliable_exchange_is_exactly_once_under_random_chaos(case in arb_chaos_case()) {
        let ChaosCase { dims, offsets, m, seed, attempts, base_ms, drop, dup, reorder } = case;
        let d = dims.len();
        let nb = RelNeighborhood::new(d, offsets).expect("valid neighborhood");
        let t = nb.len();
        let p: usize = dims.iter().product();
        let periods = vec![true; d];
        let topo = CartTopology::new(&dims, &periods).unwrap();
        let policy = RetryPolicy {
            attempts,
            base: Duration::from_millis(base_ms),
            factor: 2.0,
            max: Duration::from_millis(8 * base_ms),
        };
        let sel = || LinkSel::any().tags(CART_TAGS_LO, CART_TAGS_HI);
        let spec = FaultSpec::new(seed)
            .drop_rate(sel(), drop)
            .dup_rate(sel(), dup, 1)
            .reorder_rate(sel(), reorder);

        let outs = Universe::builder(p).faults(spec).run(|comm| {
            comm.set_default_reliability(Some(policy));
            let cart = CartComm::create(comm, &dims, &periods, nb.clone()).unwrap();
            let rank = cart.rank();
            let send: Vec<i32> = (0..t * m).map(|x| payload(rank, x / m, x % m)).collect();
            let expect = expected_alltoall(&topo, &nb, rank, m);
            let before = cart.comm().metrics();

            // Termination is implied by these returning at all; delivery
            // exactly once by byte equality with the clean reference.
            let mut recv = vec![-7i32; t * m];
            cart.alltoall(&send, &mut recv, Algo::Trivial).unwrap();
            let triv_ok = recv == expect;

            let mut recv2 = vec![-7i32; t * m];
            cart.alltoall(&send, &mut recv2, Algo::Combining).unwrap();
            let comb_ok = recv2 == expect;

            cart.comm().barrier().unwrap();
            let delta = cart.comm().metrics().since(&before);
            let stats = cart.comm().fault_stats().unwrap();
            (triv_ok, comb_ok, delta.retransmits, delta.dup_drops, stats)
        });

        let stats = outs[0].4;
        let retx: u64 = outs.iter().map(|o| o.2).sum();
        let dedup: u64 = outs.iter().map(|o| o.3).sum();
        for (rank, (triv_ok, comb_ok, ..)) in outs.iter().enumerate() {
            prop_assert!(triv_ok, "trivial diverged at rank {} (seed {})", rank, seed);
            prop_assert!(comb_ok, "combining diverged at rank {} (seed {})", rank, seed);
        }
        // Every dropped data envelope was recovered by a retransmission.
        prop_assert!(
            retx >= stats.drops,
            "{} drops but only {} retransmits (seed {})", stats.drops, retx, seed
        );
        // Exactly-once in the face of duplication: every surviving extra
        // copy (plane dups plus any spuriously-retransmitted envelope that
        // was not subsequently dropped) is absorbed by the dedup window,
        // and dedup never absorbs more than those sources can produce.
        prop_assert!(
            dedup <= stats.dups + retx,
            "{} dedups exceeds {} dups + {} retransmits (seed {})",
            dedup, stats.dups, retx, seed
        );
    }
}
