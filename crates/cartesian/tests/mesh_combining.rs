//! Stress tests for the mesh extension: message-combining alltoall with
//! per-rank live-block filtering must match the trivial algorithm on
//! arbitrary non-periodic and mixed-periodicity topologies.

use cartcomm::ops::Algo;
use cartcomm::CartComm;
use cartcomm_comm::Universe;
use cartcomm_topo::{CartTopology, RelNeighborhood};

fn check(dims: &[usize], periods: &[bool], nb: RelNeighborhood, m: usize) {
    let p: usize = dims.iter().product();
    let topo = CartTopology::new(dims, periods).unwrap();
    let t = nb.len();
    let payload = |rank: usize, block: usize, e: usize| (rank * 10_000 + block * 10 + e) as i32;
    Universe::builder(p).run(|comm| {
        let cart = CartComm::create(comm, dims, periods, nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..t * m)
            .map(|x| payload(rank, x / m.max(1), x % m.max(1)))
            .collect();
        let mut combining = vec![-1i32; t * m];
        let mut trivial = vec![-1i32; t * m];
        cart.alltoall(&send, &mut combining, Algo::Combining)
            .unwrap();
        cart.alltoall(&send, &mut trivial, Algo::Trivial).unwrap();
        // trivial leaves missing-neighbor blocks untouched; the mesh
        // combining path must behave identically
        assert_eq!(combining, trivial, "rank {rank}");
        // and both match the direct expectation
        for (i, off) in nb.offsets().iter().enumerate() {
            let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
            match topo.rank_of_offset(rank, &neg).unwrap() {
                Some(src) => {
                    for e in 0..m {
                        assert_eq!(combining[i * m + e], payload(src, i, e));
                    }
                }
                None => {
                    for e in 0..m {
                        assert_eq!(combining[i * m + e], -1, "missing block {i} written");
                    }
                }
            }
        }
    });
}

#[test]
fn moore_2d_full_mesh() {
    check(
        &[3, 3],
        &[false, false],
        RelNeighborhood::moore(2, 1).unwrap(),
        2,
    );
    check(
        &[4, 4],
        &[false, false],
        RelNeighborhood::moore(2, 1).unwrap(),
        1,
    );
}

#[test]
fn moore_3d_mesh() {
    check(
        &[3, 3, 3],
        &[false; 3],
        RelNeighborhood::moore(3, 1).unwrap(),
        1,
    );
}

#[test]
fn asymmetric_family_on_mesh() {
    // offsets up to +2: corner processes miss many neighbors
    check(
        &[4, 4],
        &[false, false],
        RelNeighborhood::stencil_family(2, 4, -1).unwrap(),
        2,
    );
}

#[test]
fn mixed_periodicity_partial_wrap() {
    // dim 0 periodic (wraps), dim 1 mesh (prunes) — blocks must route
    // through the wrap while dying at the dim-1 boundary.
    check(
        &[3, 4],
        &[true, false],
        RelNeighborhood::moore(2, 1).unwrap(),
        2,
    );
    check(
        &[4, 3],
        &[false, true],
        RelNeighborhood::stencil_family(2, 3, -1).unwrap(),
        1,
    );
}

#[test]
fn long_offsets_on_narrow_mesh() {
    // offsets larger than the mesh: many processes have no such neighbor
    // at all; a few in the middle do (|offset| < size).
    let nb = RelNeighborhood::new(2, vec![vec![2, 0], vec![-2, 1], vec![1, -2]]).unwrap();
    check(&[4, 4], &[false, false], nb, 2);
}

#[test]
fn offsets_that_never_fit() {
    // |offset| >= size in a mesh dimension: no process has this neighbor;
    // the operation must still complete (all blocks dead).
    let nb = RelNeighborhood::new(1, vec![vec![5], vec![-5], vec![1]]).unwrap();
    check(&[4], &[false], nb, 3);
}

#[test]
fn with_self_blocks_on_mesh() {
    let nb = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
    check(&[3, 3], &[false, false], nb, 2);
}

#[test]
fn random_neighborhoods_on_random_meshes() {
    use rand::{Rng, SeedableRng};
    let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(4242);
    for _ in 0..10 {
        let d = rng.gen_range(1..4);
        let dims: Vec<usize> = (0..d).map(|_| rng.gen_range(2..5)).collect();
        let periods: Vec<bool> = (0..d).map(|_| rng.gen_bool(0.4)).collect();
        let t = rng.gen_range(1..7);
        let offsets: Vec<Vec<i64>> = (0..t)
            .map(|_| (0..d).map(|_| rng.gen_range(-3i64..4)).collect())
            .collect();
        let nb = RelNeighborhood::new(d, offsets).unwrap();
        let m = rng.gen_range(1..4);
        check(&dims, &periods, nb, m);
    }
}

#[test]
fn irregular_v_on_mesh() {
    let nb = RelNeighborhood::moore(2, 1).unwrap();
    let t = nb.len();
    let counts: Vec<usize> = (0..t).map(|i| i % 3 + 1).collect();
    let displs: Vec<usize> = counts
        .iter()
        .scan(0usize, |a, &c| {
            let v = *a;
            *a += c;
            Some(v)
        })
        .collect();
    let total: usize = counts.iter().sum();
    Universe::builder(9).run(|comm| {
        let cart = CartComm::create(comm, &[3, 3], &[false, false], nb.clone()).unwrap();
        let rank = cart.rank();
        let send: Vec<i32> = (0..total).map(|x| (rank * 100 + x) as i32).collect();
        let mut a = vec![-1i32; total];
        let mut b = vec![-1i32; total];
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut a,
            &counts,
            &displs,
            Algo::Combining,
        )
        .unwrap();
        cart.alltoallv(
            &send,
            &counts,
            &displs,
            &mut b,
            &counts,
            &displs,
            Algo::Trivial,
        )
        .unwrap();
        assert_eq!(a, b, "rank {rank}");
    });
}
