//! Fixed-width histograms with terminal rendering, for regenerating the
//! Figure 7 run-time distributions.

use crate::describe::mean;

/// A fixed-width histogram over `[lo, hi)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<usize>,
    underflow: usize,
    overflow: usize,
    total: usize,
    sum: f64,
}

impl Histogram {
    /// Histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(bins > 0, "need at least one bin");
        assert!(hi > lo, "empty range");
        Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            underflow: 0,
            overflow: 0,
            total: 0,
            sum: 0.0,
        }
    }

    /// Histogram sized from the data: `[min, max]` padded by one bin width.
    pub fn from_samples(xs: &[f64], bins: usize) -> Self {
        assert!(!xs.is_empty(), "no samples");
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let span = (max - min).max(f64::MIN_POSITIVE);
        let mut h = Histogram::new(min, max + span / bins as f64, bins);
        for &x in xs {
            h.add(x);
        }
        h
    }

    /// Record one sample.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        self.sum += x;
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let w = (self.hi - self.lo) / self.counts.len() as f64;
            let idx = (((x - self.lo) / w) as usize).min(self.counts.len() - 1);
            self.counts[idx] += 1;
        }
    }

    /// Fold `other`'s samples into `self` bin-by-bin. Both histograms
    /// must share the exact same binning (`lo`, `hi`, bin count) — merging
    /// is then lossless, unlike re-adding samples to a differently-sized
    /// histogram, so per-rank distributions aggregate into a cluster-wide
    /// one without re-binning drift.
    ///
    /// # Panics
    ///
    /// Panics if the binnings differ.
    pub fn merge(&mut self, other: &Histogram) {
        assert!(
            self.lo == other.lo && self.hi == other.hi && self.counts.len() == other.counts.len(),
            "histogram merge requires identical binning: \
             [{}, {}) x{} vs [{}, {}) x{}",
            self.lo,
            self.hi,
            self.counts.len(),
            other.lo,
            other.hi,
            other.counts.len(),
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.underflow += other.underflow;
        self.overflow += other.overflow;
        self.total += other.total;
        self.sum += other.sum;
    }

    /// Bin counts.
    pub fn counts(&self) -> &[usize] {
        &self.counts
    }

    /// Samples below/above range.
    pub fn out_of_range(&self) -> (usize, usize) {
        (self.underflow, self.overflow)
    }

    /// Total samples recorded.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Mean of all recorded samples (not just in-range ones).
    pub fn sample_mean(&self) -> f64 {
        if self.total == 0 {
            f64::NAN
        } else {
            self.sum / self.total as f64
        }
    }

    /// Centers of the bins.
    pub fn bin_centers(&self) -> Vec<f64> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        (0..self.counts.len())
            .map(|i| self.lo + w * (i as f64 + 0.5))
            .collect()
    }

    /// Count the local maxima of the smoothed histogram — used to decide
    /// whether a distribution is unimodal or bimodal, the Figure 7
    /// distinction. `min_prominence` is the fraction of the tallest bin a
    /// peak must reach.
    pub fn mode_count(&self, min_prominence: f64) -> usize {
        // 3-bin moving average to suppress jitter
        let n = self.counts.len();
        let sm: Vec<f64> = (0..n)
            .map(|i| {
                let lo = i.saturating_sub(1);
                let hi = (i + 1).min(n - 1);
                mean(
                    &self.counts[lo..=hi]
                        .iter()
                        .map(|&c| c as f64)
                        .collect::<Vec<_>>(),
                )
            })
            .collect();
        let peak = sm.iter().copied().fold(0.0, f64::max);
        if peak == 0.0 {
            return 0;
        }
        let thr = peak * min_prominence;
        let mut modes = 0;
        let mut in_peak = false;
        for i in 0..n {
            let is_high = sm[i] >= thr
                && (i == 0 || sm[i] >= sm[i - 1])
                && (i == n - 1 || sm[i] >= sm[i + 1]);
            if is_high && !in_peak {
                modes += 1;
                in_peak = true;
            } else if sm[i] < thr {
                in_peak = false;
            }
        }
        modes
    }

    /// Render an ASCII bar chart like the Figure 7 panels, one row per
    /// bin, with the mean marked.
    pub fn render(&self, width: usize, unit: &str) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        let mean = self.sample_mean();
        let mut out = String::new();
        for (i, &c) in self.counts.iter().enumerate() {
            let lo = self.lo + w * i as f64;
            let bar_len = c * width / max;
            let marker = if mean >= lo && mean < lo + w {
                " <- mean"
            } else {
                ""
            };
            out.push_str(&format!(
                "{:>10.2} {} | {:<width$} {}{}\n",
                lo,
                unit,
                "#".repeat(bar_len),
                c,
                marker,
                width = width
            ));
        }
        if self.underflow + self.overflow > 0 {
            out.push_str(&format!(
                "  (out of range: {} below, {} above)\n",
                self.underflow, self.overflow
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binning_is_correct() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 2.9, 9.9, -1.0, 10.0, 11.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 2, 0, 0, 1]);
        assert_eq!(h.out_of_range(), (1, 2));
        assert_eq!(h.total(), 8);
    }

    #[test]
    fn from_samples_covers_all() {
        let xs: Vec<f64> = (0..1000).map(|i| (i % 97) as f64).collect();
        let h = Histogram::from_samples(&xs, 20);
        assert_eq!(h.total(), 1000);
        assert_eq!(h.out_of_range(), (0, 0));
        assert_eq!(h.counts().iter().sum::<usize>(), 1000);
    }

    #[test]
    fn unimodal_vs_bimodal_detection() {
        // unimodal: concentrated around 50
        let uni: Vec<f64> = (0..500)
            .map(|i| 50.0 + ((i * 7919) % 11) as f64 - 5.0)
            .collect();
        let h1 = Histogram::from_samples(&uni, 30);
        assert_eq!(h1.mode_count(0.25), 1);
        // bimodal: two clusters at 10 and 90
        let mut bi = vec![];
        for i in 0..250 {
            bi.push(10.0 + (i % 5) as f64);
            bi.push(90.0 + (i % 5) as f64);
        }
        let h2 = Histogram::from_samples(&bi, 30);
        assert_eq!(h2.mode_count(0.25), 2);
    }

    #[test]
    fn render_contains_bars_and_mean() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        for _ in 0..10 {
            h.add(1.5);
        }
        h.add(3.5);
        let s = h.render(20, "us");
        assert!(s.contains('#'));
        assert!(s.contains("<- mean"));
        let mean = h.sample_mean();
        assert!(mean > 1.5 && mean < 2.0);
    }

    #[test]
    fn merge_is_lossless_vs_single_histogram() {
        // Two per-rank histograms merged == one histogram fed everything.
        let xs: Vec<f64> = (0..300).map(|i| (i % 13) as f64 - 1.0).collect();
        let (a_xs, b_xs) = xs.split_at(140);
        let mut a = Histogram::new(0.0, 10.0, 5);
        let mut b = Histogram::new(0.0, 10.0, 5);
        let mut whole = Histogram::new(0.0, 10.0, 5);
        for &x in a_xs {
            a.add(x);
            whole.add(x);
        }
        for &x in b_xs {
            b.add(x);
            whole.add(x);
        }
        a.merge(&b);
        assert_eq!(a, whole);
        assert_eq!(a.total(), 300);
    }

    #[test]
    fn merge_of_empty_is_identity() {
        let mut h = Histogram::new(0.0, 4.0, 4);
        h.add(1.0);
        let before = h.clone();
        h.merge(&Histogram::new(0.0, 4.0, 4));
        assert_eq!(h, before);
    }

    #[test]
    #[should_panic(expected = "identical binning")]
    fn merge_rejects_different_binning() {
        let mut a = Histogram::new(0.0, 4.0, 4);
        let b = Histogram::new(0.0, 4.0, 8);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_mean_is_nan() {
        let h = Histogram::new(0.0, 1.0, 2);
        assert!(h.sample_mean().is_nan());
        assert_eq!(h.mode_count(0.5), 0);
    }

    #[test]
    #[should_panic(expected = "at least one bin")]
    fn zero_bins_rejected() {
        Histogram::new(0.0, 1.0, 0);
    }
}
