//! # cartcomm-stats — measurement processing from the paper's Appendix A
//!
//! The paper found raw collective timings unusable directly: huge outliers
//! (1000× the minimum) destabilized the mean, and bimodal distributions
//! made the median jump. Their remedy, which this crate reproduces:
//!
//! * On **Hydra**, report statistics over the first and second quartile of
//!   the measurements only (the smaller half).
//! * On **Titan**, report averages over the *smallest third* of the
//!   measurements.
//! * Report the **mean and 95% confidence interval** over the retained
//!   subset, and normalize each variant to the default blocking
//!   `MPI_Neighbor_*` baseline.
//! * Figure 7 shows raw run-time **histograms**, which [`Histogram`]
//!   regenerates.

pub mod describe;
pub mod filter;
pub mod histogram;

pub use describe::{mean, median, quantile, std_dev, Summary};
pub use filter::{smallest_fraction, FilterPolicy};
pub use histogram::Histogram;
