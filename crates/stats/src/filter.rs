//! Measurement-retention policies (Appendix A).

/// Which subset of the raw measurements a system's reporting retains.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FilterPolicy {
    /// Keep everything.
    All,
    /// Keep the smallest `fraction` of measurements:
    /// `LowerFraction(0.5)` is the paper's Hydra rule (first and second
    /// quartile), `LowerFraction(1.0/3.0)` its Titan rule (smallest third).
    LowerFraction(f64),
}

impl FilterPolicy {
    /// The paper's Hydra rule: first and second quartile.
    pub const HYDRA: FilterPolicy = FilterPolicy::LowerFraction(0.5);
    /// The paper's Titan rule: smallest third.
    pub const TITAN: FilterPolicy = FilterPolicy::LowerFraction(1.0 / 3.0);

    /// Apply the policy, returning the retained measurements in ascending
    /// order.
    pub fn apply(&self, xs: &[f64]) -> Vec<f64> {
        match *self {
            FilterPolicy::All => {
                let mut v = xs.to_vec();
                v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN measurements"));
                v
            }
            FilterPolicy::LowerFraction(f) => smallest_fraction(xs, f),
        }
    }
}

/// The smallest `fraction` (clamped to `[0, 1]`) of the measurements, in
/// ascending order; always keeps at least one measurement when input is
/// non-empty.
pub fn smallest_fraction(xs: &[f64], fraction: f64) -> Vec<f64> {
    if xs.is_empty() {
        return Vec::new();
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN measurements"));
    let keep = ((xs.len() as f64 * fraction.clamp(0.0, 1.0)).round() as usize).clamp(1, xs.len());
    v.truncate(keep);
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hydra_keeps_lower_half() {
        let xs: Vec<f64> = (1..=8).map(|i| i as f64).collect();
        let kept = FilterPolicy::HYDRA.apply(&xs);
        assert_eq!(kept, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn titan_keeps_smallest_third() {
        let xs: Vec<f64> = (1..=9).map(|i| i as f64).collect();
        let kept = FilterPolicy::TITAN.apply(&xs);
        assert_eq!(kept, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn all_just_sorts() {
        let kept = FilterPolicy::All.apply(&[3.0, 1.0, 2.0]);
        assert_eq!(kept, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn outliers_are_dropped() {
        // The Appendix A motivation: one 1000x outlier must not survive.
        let mut xs = vec![1.0; 99];
        xs.push(1000.0);
        let kept = FilterPolicy::HYDRA.apply(&xs);
        assert_eq!(kept.len(), 50);
        assert!(kept.iter().all(|&x| x == 1.0));
    }

    #[test]
    fn keeps_at_least_one() {
        assert_eq!(smallest_fraction(&[5.0, 4.0], 0.0), vec![4.0]);
        assert!(smallest_fraction(&[], 0.5).is_empty());
        assert_eq!(smallest_fraction(&[2.0], 1.0), vec![2.0]);
    }

    #[test]
    fn fraction_clamped() {
        assert_eq!(smallest_fraction(&[1.0, 2.0], 7.0), vec![1.0, 2.0]);
    }
}
