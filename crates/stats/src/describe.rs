//! Descriptive statistics: mean, median, quantiles, and the 95% confidence
//! interval the paper reports with every bar.

/// Arithmetic mean. Returns `NaN` for empty input.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n − 1 denominator). Returns 0 for fewer than
/// two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Median (linear-interpolated). `NaN` for empty input.
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// Quantile with linear interpolation between order statistics
/// (type-7/R default). `q` is clamped to `[0, 1]`. `NaN` for empty input.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN measurements"));
    let q = q.clamp(0.0, 1.0);
    let pos = q * (v.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        v[lo]
    } else {
        let frac = pos - lo as f64;
        v[lo] * (1.0 - frac) + v[hi] * frac
    }
}

/// Two-sided critical value of the Student t distribution at 95%
/// confidence for `df` degrees of freedom (table lookup with asymptotic
/// tail; exact enough for reporting confidence intervals).
pub fn t_critical_95(df: usize) -> f64 {
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    match df {
        0 => f64::NAN,
        1..=30 => TABLE[df - 1],
        31..=40 => 2.021,
        41..=60 => 2.000,
        61..=120 => 1.980,
        _ => 1.960,
    }
}

/// A full description of one measurement series, as reported in the
/// paper's figures: mean with a 95% confidence interval over the retained
/// measurements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of retained measurements.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Sample standard deviation.
    pub std_dev: f64,
    /// Half-width of the 95% confidence interval of the mean.
    pub ci95_half_width: f64,
    /// Smallest retained value.
    pub min: f64,
    /// Largest retained value.
    pub max: f64,
}

impl Summary {
    /// Describe a series. `NaN`-free input required.
    pub fn of(xs: &[f64]) -> Summary {
        let n = xs.len();
        let m = mean(xs);
        let sd = std_dev(xs);
        let ci = if n >= 2 {
            t_critical_95(n - 1) * sd / (n as f64).sqrt()
        } else {
            0.0
        };
        let min = xs.iter().copied().fold(f64::INFINITY, f64::min);
        let max = xs.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Summary {
            n,
            mean: m,
            std_dev: sd,
            ci95_half_width: ci,
            min,
            max,
        }
    }

    /// The interval `(low, high)` of the 95% CI.
    pub fn ci95(&self) -> (f64, f64) {
        (
            self.mean - self.ci95_half_width,
            self.mean + self.ci95_half_width,
        )
    }

    /// This series normalized to a baseline mean (the figures' relative
    /// run-time axis).
    pub fn relative_to(&self, baseline_mean: f64) -> f64 {
        self.mean / baseline_mean
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert!(mean(&[]).is_nan());
        assert!((std_dev(&[2.0, 4.0, 6.0]) - 2.0).abs() < 1e-12);
        assert_eq!(std_dev(&[5.0]), 0.0);
    }

    #[test]
    fn median_and_quantiles() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.0), 1.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 1.0), 4.0);
        assert_eq!(quantile(&[1.0, 2.0, 3.0, 4.0], 0.25), 1.75);
        assert!(quantile(&[], 0.5).is_nan());
        // out-of-range q clamps
        assert_eq!(quantile(&[1.0, 2.0], 2.0), 2.0);
    }

    #[test]
    fn t_table_spot_checks() {
        assert!((t_critical_95(1) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(30) - 2.042).abs() < 1e-9);
        assert!((t_critical_95(1000) - 1.960).abs() < 1e-9);
        assert!(t_critical_95(0).is_nan());
        // monotonically decreasing toward the normal value
        assert!(t_critical_95(5) > t_critical_95(50));
    }

    #[test]
    fn summary_ci_contains_mean_of_tight_series() {
        let xs: Vec<f64> = (0..100).map(|i| 10.0 + (i % 5) as f64 * 0.01).collect();
        let s = Summary::of(&xs);
        assert_eq!(s.n, 100);
        let (lo, hi) = s.ci95();
        assert!(lo < s.mean && s.mean < hi);
        assert!(hi - lo < 0.01, "tight data gives a tight CI");
        assert!(s.min >= 10.0 && s.max <= 10.05);
    }

    #[test]
    fn summary_relative_normalization() {
        let s = Summary::of(&[2.0, 2.0, 2.0]);
        assert_eq!(s.relative_to(4.0), 0.5);
        assert_eq!(s.ci95_half_width, 0.0);
    }

    #[test]
    fn single_sample_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.n, 1);
        assert_eq!(s.mean, 7.0);
        assert_eq!(s.ci95_half_width, 0.0);
    }
}
