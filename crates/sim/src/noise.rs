//! System-noise models for the run-time distribution study (Figure 7 and
//! Appendix A).
//!
//! The paper observed that on Titan the measured times of one collective
//! were well concentrated at 128 × 16 processes but spread into a wide,
//! sometimes bimodal distribution at 1024 × 16 — attributed to system
//! noise, network congestion and cross-cabinet traffic rather than the
//! algorithm ("our algorithm is sensitive to system noise when running on
//! a larger number of compute nodes").
//!
//! We model noise *rate-based and run-coupled*: every rank is hit by
//! preemption events at a fixed rate per second of exposure, and one
//! execution of a schedule is delayed by the largest accumulated per-rank
//! delay (ranks progress independently between their own communication
//! partners, so a preemption delays the dependent chain once — it is *not*
//! multiplied by the number of rounds). Exposure grows with the schedule's
//! base time plus a small per-round synchronization window, so rare
//! per-rank events become near-certain at scale and longer-running
//! schedules absorb proportionally more noise.

use rand::Rng;

/// Fixed per-round exposure window added to the base cost (progress/sync
/// overheads exist even for zero-byte rounds), seconds.
const ROUND_WINDOW: f64 = 2e-6;

/// A per-rank noise source.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum NoiseModel {
    /// No noise: deterministic model times.
    Quiet,
    /// Preemption outliers: each rank suffers events at
    /// `events_per_rank_sec` over the run's exposure, each adding
    /// `Exp(mean = scale)` seconds; the run is delayed by the largest.
    HeavyTail {
        /// Event rate per rank per second of exposure.
        events_per_rank_sec: f64,
        /// Mean outlier magnitude, seconds.
        scale: f64,
    },
    /// Heavy tail plus a second mode: per run, each rank independently
    /// lands on a slow path (cross-cabinet route, congested link) with
    /// probability `mode_per_rank_run`; any hit delays the run by
    /// `extra`. At small `p` this is a rare tail, at large `p` a second
    /// mode — the Figure 7 contrast.
    Bimodal {
        /// Event rate per rank per second of exposure.
        events_per_rank_sec: f64,
        /// Mean outlier magnitude, seconds.
        scale: f64,
        /// Per-rank per-run slow-mode probability.
        mode_per_rank_run: f64,
        /// Slow-mode extra time, seconds.
        extra: f64,
    },
}

impl NoiseModel {
    /// Sample the completion time of one execution of a schedule with the
    /// given per-round base costs over `p` ranks.
    pub fn sample_completion<R: Rng + ?Sized>(
        &self,
        round_costs: &[f64],
        p: usize,
        rng: &mut R,
    ) -> f64 {
        let base: f64 = round_costs.iter().sum();
        let exposure = base + ROUND_WINDOW * round_costs.len() as f64;
        base + self.run_delay(p, exposure, rng)
    }

    /// Draw the delay added to one run of total exposure `exposure`
    /// seconds by the slowest of `p` ranks.
    pub fn run_delay<R: Rng + ?Sized>(&self, p: usize, exposure: f64, rng: &mut R) -> f64 {
        match *self {
            NoiseModel::Quiet => 0.0,
            NoiseModel::HeavyTail {
                events_per_rank_sec,
                scale,
            } => max_outlier(p, events_per_rank_sec, exposure, scale, rng),
            NoiseModel::Bimodal {
                events_per_rank_sec,
                scale,
                mode_per_rank_run,
                extra,
            } => {
                let mut d = max_outlier(p, events_per_rank_sec, exposure, scale, rng);
                let any_slow = 1.0 - (1.0 - mode_per_rank_run.clamp(0.0, 1.0)).powi(p as i32);
                if rng.gen_bool(any_slow.clamp(0.0, 1.0)) {
                    d += extra;
                }
                d
            }
        }
    }
}

/// Maximum of `Poisson(p · rate · exposure)` exponential outliers of the
/// given mean — O(#outliers), not O(p).
fn max_outlier<R: Rng + ?Sized>(
    p: usize,
    rate: f64,
    exposure: f64,
    scale: f64,
    rng: &mut R,
) -> f64 {
    let lambda = p as f64 * rate * exposure;
    let k = poisson(lambda, rng).min(p);
    if k == 0 {
        return 0.0;
    }
    let mut max = 0.0f64;
    for _ in 0..k.min(4096) {
        let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        max = max.max(-u.ln());
    }
    if k > 4096 {
        // asymptotic shift for the truncated tail (absurdly noisy configs)
        max += (k as f64 / 4096.0).ln();
    }
    scale * max
}

/// Knuth/inversion Poisson sampler for small λ with a normal-approximation
/// fallback — adequate for the λ ranges noise models use.
fn poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> usize {
    if lambda <= 0.0 {
        return 0;
    }
    if lambda < 30.0 {
        let l = (-lambda).exp();
        let mut k = 0usize;
        let mut prod: f64 = 1.0;
        loop {
            prod *= rng.gen_range(0.0f64..1.0);
            if prod <= l {
                return k;
            }
            k += 1;
        }
    } else {
        let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = rng.gen_range(0.0f64..1.0);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        (lambda + z * lambda.sqrt()).round().max(0.0) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn quiet_is_deterministic() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let n = NoiseModel::Quiet;
        assert_eq!(n.run_delay(10_000, 1e-3, &mut rng), 0.0);
        let t = n.sample_completion(&[1e-6, 2e-6], 1 << 14, &mut rng);
        assert!((t - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn hit_probability_scales_with_p() {
        let n = NoiseModel::HeavyTail {
            events_per_rank_sec: 2.0,
            scale: 100e-6,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let runs = 2000;
        let exposure = 70e-6;
        let count_hits = |p: usize, rng: &mut ChaCha8Rng| {
            (0..runs)
                .filter(|_| n.run_delay(p, exposure, rng) > 0.0)
                .count()
        };
        let small = count_hits(2048, &mut rng);
        let large = count_hits(16384, &mut rng);
        // lambda: 0.29 at 2048, 2.3 at 16384
        assert!(small < runs / 2, "small system too noisy: {small}");
        assert!(large > runs * 3 / 4, "large system too quiet: {large}");
        assert!(large > small * 2);
    }

    #[test]
    fn hit_probability_scales_with_exposure() {
        let n = NoiseModel::HeavyTail {
            events_per_rank_sec: 2.0,
            scale: 100e-6,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let runs = 2000;
        let p = 4096;
        let short = (0..runs)
            .filter(|_| n.run_delay(p, 10e-6, &mut rng) > 0.0)
            .count();
        let long = (0..runs)
            .filter(|_| n.run_delay(p, 1e-3, &mut rng) > 0.0)
            .count();
        assert!(
            long > short * 2,
            "longer exposure absorbs more noise: {short} vs {long}"
        );
    }

    #[test]
    fn run_coupling_preserves_series_ratios() {
        // Two schedules with the same total base time but different round
        // counts must receive statistically similar noise (the coupling is
        // per run, not per round).
        let n = NoiseModel::HeavyTail {
            events_per_rank_sec: 2.0,
            scale: 100e-6,
        };
        let many_rounds = vec![1e-6; 100]; // 100us in 100 rounds
        let few_rounds = vec![50e-6; 2]; // 100us in 2 rounds
        let p = 16384;
        let mut rng = ChaCha8Rng::seed_from_u64(8);
        let avg = |costs: &[f64], rng: &mut ChaCha8Rng| {
            (0..2000)
                .map(|_| n.sample_completion(costs, p, rng))
                .sum::<f64>()
                / 2000.0
        };
        let a = avg(&many_rounds, &mut rng);
        let b = avg(&few_rounds, &mut rng);
        // the many-round schedule has a larger sync window (100 * 2us vs
        // 2 * 2us) so some extra noise is fine, but not a multiple
        assert!(
            a / b < 2.0,
            "round count must not multiply noise: {a} vs {b}"
        );
        assert!(a >= b * 0.9);
    }

    #[test]
    fn bimodal_adds_second_mode_at_scale() {
        let n = NoiseModel::Bimodal {
            events_per_rank_sec: 0.0,
            scale: 0.0,
            mode_per_rank_run: 3e-5,
            extra: 1.5e-3,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let hits_at = |p: usize, rng: &mut ChaCha8Rng| {
            (0..2000)
                .filter(|_| n.run_delay(p, 10e-6, rng) > 0.5e-3)
                .count()
        };
        let small = hits_at(2048, &mut rng); // ~6% per run
        let large = hits_at(16384, &mut rng); // ~39% per run
        assert!(small < 240, "small: {small}");
        assert!(large > 600 && large < 960, "large: {large}");
    }

    #[test]
    fn poisson_mean_is_lambda() {
        let mut rng = ChaCha8Rng::seed_from_u64(4);
        for lambda in [0.5f64, 5.0, 60.0] {
            let n = 4000;
            let total: usize = (0..n).map(|_| poisson(lambda, &mut rng)).sum();
            let mean = total as f64 / n as f64;
            assert!(
                (mean - lambda).abs() < lambda.max(1.0) * 0.15,
                "lambda {lambda}: mean {mean}"
            );
        }
        assert_eq!(poisson(0.0, &mut rng), 0);
    }

    #[test]
    fn completion_never_below_base_cost() {
        let n = NoiseModel::HeavyTail {
            events_per_rank_sec: 10.0,
            scale: 1e-4,
        };
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let base = [5e-6, 5e-6, 5e-6];
        for _ in 0..500 {
            assert!(n.sample_completion(&base, 1024, &mut rng) >= 15e-6 - 1e-18);
        }
    }
}
