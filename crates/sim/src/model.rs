//! The linear (α-β) communication cost model of §3.1.

/// Which collective a priced schedule implements (used only for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    /// Personalized exchange.
    Alltoall,
    /// Replicated exchange.
    Allgather,
}

/// Linear point-to-point cost: a message of `b` bytes between any two
/// processes costs `α + β·b` seconds, with sends and receives of one
/// process serialized on a single full-duplex port — exactly the model in
/// which the paper derives `t(α+βm)` for the trivial algorithm and
/// `Cα + βVm` for message combining.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearModel {
    /// Start-up latency per message, seconds.
    pub alpha: f64,
    /// Transfer time per byte, seconds (1 / bandwidth).
    pub beta: f64,
}

impl LinearModel {
    /// Cost of a single message of `bytes`.
    #[inline]
    pub fn message(&self, bytes: usize) -> f64 {
        self.alpha + self.beta * bytes as f64
    }

    /// Cost of a schedule given the wire bytes of each send-receive round:
    /// rounds execute one after another (every process sends and receives
    /// one message per round), `Σ (α + β·bytes_r)`.
    pub fn schedule(&self, round_bytes: &[usize]) -> f64 {
        round_bytes.iter().map(|&b| self.message(b)).sum()
    }

    /// Cost of direct delivery of `t` messages of `bytes` each from every
    /// process (the trivial algorithm and the ideal neighborhood-collective
    /// baseline): the single port serializes them, `t·(α + β·bytes)`.
    pub fn direct(&self, t: usize, bytes: usize) -> f64 {
        t as f64 * self.message(bytes)
    }

    /// Direct delivery with per-message sizes (irregular baseline).
    pub fn direct_irregular(&self, sizes: &[usize]) -> f64 {
        sizes.iter().map(|&b| self.message(b)).sum()
    }

    /// The α/β ratio in bytes — the machine constant the paper's cut-off
    /// `m < (α/β)·(t−C)/(V−t)` multiplies.
    pub fn alpha_beta_bytes(&self) -> f64 {
        self.alpha / self.beta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: LinearModel = LinearModel {
        alpha: 2e-6,
        beta: 1e-9,
    };

    #[test]
    fn message_cost_is_affine() {
        assert!((M.message(0) - 2e-6).abs() < 1e-18);
        assert!((M.message(1000) - 3e-6).abs() < 1e-18);
    }

    #[test]
    fn schedule_sums_rounds() {
        let t = M.schedule(&[100, 200, 300]);
        assert!((t - (3.0 * 2e-6 + 600.0 * 1e-9)).abs() < 1e-15);
        assert_eq!(M.schedule(&[]), 0.0);
    }

    #[test]
    fn direct_matches_trivial_formula() {
        // t(α+βm)
        let t = M.direct(26, 40);
        assert!((t - 26.0 * (2e-6 + 40e-9)).abs() < 1e-15);
        let ti = M.direct_irregular(&[40; 26]);
        assert!((t - ti).abs() < 1e-18);
    }

    #[test]
    fn combining_beats_trivial_below_cutoff() {
        // d=3, n=5 family: t=124, C=12, V=300.
        let (t, c, v) = (124usize, 12usize, 300usize);
        let ratio = (t - c) as f64 / (v - t) as f64;
        let cutoff_bytes = M.alpha_beta_bytes() * ratio;
        let below = (cutoff_bytes * 0.5) as usize;
        let above = (cutoff_bytes * 2.0) as usize;
        let trivial_below = M.direct(t, below);
        let comb_below = M.schedule(&vec![below * (v / c); c]); // approx: V spread over C rounds
        assert!(comb_below < trivial_below);
        let trivial_above = M.direct(t, above);
        let comb_above = c as f64 * M.alpha + M.beta * (v * above) as f64;
        assert!(comb_above > trivial_above);
    }

    #[test]
    fn alpha_beta_ratio() {
        assert!((M.alpha_beta_bytes() - 2000.0).abs() < 1e-9);
    }
}
