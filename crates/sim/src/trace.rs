//! Bridge between the discrete-event simulator and `cartcomm-obs`.
//!
//! Real threaded runs stamp trace records with wall-clock time; simulated
//! runs want *model* time, so that a trace of a simulated schedule lines up
//! with the α-β analysis it is validating. [`SimTracer`] bundles an
//! [`Obs`] handle with a [`ManualClock`] and a [`RingBufferSink`];
//! [`crate::EventSim::phase_traced`] drives the clock to each message's
//! scheduled start/completion time before emitting the matching
//! [`TraceEvent::RoundStart`]/[`TraceEvent::RoundEnd`] pair. The result is
//! one trace format for both worlds: the same exporters, the same event
//! taxonomy, timestamps in simulated nanoseconds.

use std::sync::Arc;

use cartcomm_obs::{ManualClock, Obs, RingBufferSink, TraceRecord};

#[allow(unused_imports)] // doc links
use cartcomm_obs::TraceEvent;

/// An [`Obs`] handle wired for simulation: manual clock, ring-buffer sink.
///
/// The tracer's clock is in *simulated* nanoseconds (the DES works in
/// fractional seconds; the bridge multiplies by 1e9). Attach further
/// consumers through [`SimTracer::obs`] if needed — the handle behaves
/// exactly like the one carried by real communicators.
pub struct SimTracer {
    obs: Arc<Obs>,
    clock: Arc<ManualClock>,
    sink: Arc<RingBufferSink>,
}

impl SimTracer {
    /// A tracer whose ring buffer holds up to `capacity` records.
    pub fn new(capacity: usize) -> Self {
        let obs = Arc::new(Obs::new());
        let clock = Arc::new(ManualClock::new());
        let sink = Arc::new(RingBufferSink::new(capacity));
        obs.set_clock(clock.clone());
        obs.attach_sink(sink.clone());
        SimTracer { obs, clock, sink }
    }

    /// The observability handle (manual clock already installed).
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }

    /// The simulation-driven clock.
    pub fn clock(&self) -> &Arc<ManualClock> {
        &self.clock
    }

    /// The captured trace so far, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        self.sink.snapshot()
    }

    /// Set the clock from DES model time (fractional seconds).
    pub fn set_time_secs(&self, t_secs: f64) {
        self.clock.set_secs_f64(t_secs);
    }
}

impl Default for SimTracer {
    fn default() -> Self {
        Self::new(4096)
    }
}

impl std::fmt::Debug for SimTracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimTracer")
            .field("records", &self.sink.len())
            .finish()
    }
}
