//! # cartcomm-sim — network cost simulation for cluster-scale experiments
//!
//! The paper evaluates on 1152-process Hydra (Skylake + OmniPath) and
//! 16384-process Titan (Cray XK7 + Gemini) installations. This crate is the
//! substitute substrate: it prices communication schedules under the same
//! linear cost model the paper's analysis uses — latency `α` plus transfer
//! time `β` per byte, single-port full-duplex — so that the *shape* of
//! every figure (who wins, by what factor, where the cut-over block size
//! falls) is reproduced by construction, at any process count.
//!
//! Components:
//!
//! * [`model`] — the `α`-`β` [`model::LinearModel`] and schedule/direct
//!   pricing.
//! * [`machine`] — calibrated [`machine::MachineProfile`]s for the paper's
//!   systems (Table 2), including per-MPI-library *quirk* models that
//!   emulate the pathological `MPI_Neighbor_*` overheads the paper observed
//!   (Figures 3–4) — disabled by default, because they are implementation
//!   defects rather than algorithmic effects.
//! * [`noise`] — system-noise injection for the run-time distribution study
//!   (Figure 7): per-round maxima over `p` ranks of outlier delays.
//! * [`des`] — a small discrete-event engine with per-rank full-duplex
//!   ports, used to validate the closed-form model and to price irregular
//!   (per-rank asymmetric) traffic.
//! * [`trace`] — the bridge to `cartcomm-obs`: a [`trace::SimTracer`]
//!   bundles an `Obs` handle with a simulation-driven `ManualClock`, so
//!   DES runs emit the same round-level trace events as real threaded
//!   executions, timestamped in *model* time.

pub mod des;
pub mod machine;
pub mod model;
pub mod noise;
pub mod trace;

pub use des::{EventSim, SimFaults};
pub use machine::{BaselineQuirks, MachineProfile};
pub use model::{CollectiveKind, LinearModel};
pub use noise::NoiseModel;
pub use trace::SimTracer;
