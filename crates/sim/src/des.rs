//! A small discrete-event simulator with per-rank full-duplex single
//! ports.
//!
//! The closed-form model in [`crate::model`] assumes perfectly symmetric,
//! bulk-synchronous rounds. This engine relaxes that: arbitrary message
//! sets per phase, per-rank port serialization, and per-rank (not global)
//! phase synchronization. For isomorphic schedules it reproduces the
//! closed form exactly (validated in tests); for asymmetric traffic it
//! exposes the contention the formula hides — e.g. an incast onto one rank.

use cartcomm_comm::fault::FaultAction;
use cartcomm_comm::{FaultSpec, RetryPolicy};
use cartcomm_obs::TraceEvent;

use crate::model::LinearModel;
use crate::trace::SimTracer;

/// One message: source, destination, payload bytes.
pub type Msg = (usize, usize, usize);

/// Model-time fault state for [`EventSim::phase_faulty`]: the same seeded
/// [`FaultSpec`] the threaded fabric consults, plus per-link deposit
/// counters and the model-time equivalents of the reliable layer's
/// knobs (retry schedule, poll tick).
#[derive(Debug, Clone)]
pub struct SimFaults {
    /// The declarative fault scenario (shared verbatim with the fabric).
    pub spec: FaultSpec,
    /// Retry schedule used to price drop recovery.
    pub policy: RetryPolicy,
    /// Model seconds per receiver poll (prices delay-by-N-polls faults).
    pub poll_tick: f64,
    /// Per-directed-link deposit counters (`src * p + dst`), lazily sized.
    link_seq: Vec<u64>,
    /// Messages dropped.
    pub drops: u64,
    /// Duplicate copies delivered.
    pub dups: u64,
    /// Messages delayed.
    pub delays: u64,
    /// Messages reordered.
    pub reorders: u64,
    /// Retransmissions priced.
    pub retransmits: u64,
    /// Messages abandoned after the retry budget.
    pub unreachable: u64,
}

impl SimFaults {
    /// Fault state for `spec` with `policy` and the threaded runtime's
    /// default poll tick (200 µs of model time).
    pub fn new(spec: FaultSpec, policy: RetryPolicy) -> Self {
        SimFaults {
            spec,
            policy,
            poll_tick: 200e-6,
            link_seq: Vec::new(),
            drops: 0,
            dups: 0,
            delays: 0,
            reorders: 0,
            retransmits: 0,
            unreachable: 0,
        }
    }

    /// Override the model-time cost of one receiver poll.
    pub fn with_poll_tick(mut self, secs: f64) -> Self {
        self.poll_tick = secs;
        self
    }

    /// Next deposit index of the directed link `src -> dst`.
    fn next_seq(&mut self, src: usize, dst: usize, p: usize) -> u64 {
        if self.link_seq.len() < p * p {
            self.link_seq.resize(p * p, 0);
        }
        let c = &mut self.link_seq[src * p + dst];
        let seq = *c;
        *c += 1;
        seq
    }
}

/// Discrete-event network state for `p` ranks.
#[derive(Debug, Clone)]
pub struct EventSim {
    model: LinearModel,
    /// Time each rank's send port frees up.
    send_free: Vec<f64>,
    /// Time each rank's receive port frees up.
    recv_free: Vec<f64>,
    /// Per-rank local clock (end of the rank's last completed phase).
    rank_time: Vec<f64>,
}

impl EventSim {
    /// Fresh simulation of `p` ranks at time zero.
    pub fn new(p: usize, model: LinearModel) -> Self {
        EventSim {
            model,
            send_free: vec![0.0; p],
            recv_free: vec![0.0; p],
            rank_time: vec![0.0; p],
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.rank_time.len()
    }

    /// Execute one phase: all `msgs` are posted at their endpoints'
    /// current local times; a rank's sends serialize on its send port and
    /// its receives on its receive port (full duplex: a send and a receive
    /// may overlap). At the end of the phase, every rank that participated
    /// advances its local clock to the completion of its last message —
    /// ranks not involved do not wait (no global barrier).
    pub fn phase(&mut self, msgs: &[Msg]) {
        let mut new_time = self.rank_time.clone();
        for &(src, dst, bytes) in msgs {
            self.post(&mut new_time, src, dst, bytes);
        }
        self.rank_time = new_time;
    }

    /// Schedule one message on the port timelines; returns its model
    /// `(start, end)` times in seconds.
    fn post(&mut self, new_time: &mut [f64], src: usize, dst: usize, bytes: usize) -> (f64, f64) {
        let start = self.send_free[src]
            .max(self.recv_free[dst])
            .max(self.rank_time[src])
            .max(self.rank_time[dst]);
        let end = start + self.model.message(bytes);
        self.send_free[src] = end;
        self.recv_free[dst] = end;
        new_time[src] = new_time[src].max(end);
        new_time[dst] = new_time[dst].max(end);
        (start, end)
    }

    /// Execute one phase exactly like [`EventSim::phase`] while emitting a
    /// [`TraceEvent::RoundStart`]/[`TraceEvent::RoundEnd`] pair per message
    /// through `tracer`, timestamped with the message's *model* start and
    /// completion times (the tracer's [`cartcomm_obs::ManualClock`] is
    /// advanced to each event's time before it is emitted). `phase_idx`
    /// labels the events — for Cartesian schedules, the dimension `k`.
    pub fn phase_traced(&mut self, phase_idx: usize, msgs: &[Msg], tracer: &SimTracer) {
        let mut new_time = self.rank_time.clone();
        for (round, &(src, dst, bytes)) in msgs.iter().enumerate() {
            let (start, end) = self.post(&mut new_time, src, dst, bytes);
            tracer.set_time_secs(start);
            tracer.obs().emit(
                src,
                TraceEvent::RoundStart {
                    phase: phase_idx,
                    round,
                    to: dst,
                    from: src,
                    wire_bytes: bytes,
                    attempt: 0,
                },
            );
            tracer.set_time_secs(end);
            tracer.obs().emit(
                dst,
                TraceEvent::RoundEnd {
                    phase: phase_idx,
                    round,
                    to: dst,
                    from: src,
                    wire_bytes: bytes,
                    attempt: 0,
                },
            );
        }
        self.rank_time = new_time;
    }

    /// Execute a phase and additionally force all ranks to synchronize at
    /// its end (bulk-synchronous round) — the regime of the closed-form
    /// model.
    pub fn phase_synchronized(&mut self, msgs: &[Msg]) {
        self.phase(msgs);
        let t = self.makespan();
        for v in &mut self.rank_time {
            *v = t;
        }
        for v in &mut self.send_free {
            *v = (*v).max(t);
        }
        for v in &mut self.recv_free {
            *v = (*v).max(t);
        }
    }

    /// Execute one phase under a fault plane priced on **model time**: the
    /// same pure [`FaultSpec::decide`] the threaded fabric consults, with
    /// the per-link deposit counters carried by `faults`.
    ///
    /// Pricing of each fault kind:
    /// * **Drop** — the failed transmission still occupies the sender's
    ///   send port for the full message time (the bytes went out; nobody
    ///   received them), then the port sits idle for the retry backoff
    ///   before the retransmission posts. Exhausting
    ///   [`RetryPolicy::attempts`] counts the message as unreachable and
    ///   abandons it.
    /// * **Delay** — delivery at the receiver is deferred by
    ///   `polls x poll_tick` (the model-time analogue of the threaded
    ///   plane's delay-by-N-receiver-polls).
    /// * **Duplicate** — the copy consumes the receiver's port a second
    ///   time (delayed copies also wait out their poll count).
    /// * **Reorder** — priced as a one-poll deferral; ordering itself is
    ///   restored by sequence numbers and costs nothing extra.
    pub fn phase_faulty(&mut self, msgs: &[Msg], faults: &mut SimFaults) {
        let mut new_time = self.rank_time.clone();
        for &(src, dst, bytes) in msgs {
            let mut sent: u32 = 0;
            loop {
                let seq = faults.next_seq(src, dst, self.size());
                let action = faults.spec.decide(src, dst, 0, 0, seq);
                if let Some(FaultAction::Drop) = action {
                    faults.drops += 1;
                    // Failed transmission: send port busy, nothing arrives.
                    let start = self.send_free[src].max(self.rank_time[src]);
                    let end = start + self.model.message(bytes);
                    sent += 1;
                    if sent >= faults.policy.attempts {
                        self.send_free[src] = end;
                        new_time[src] = new_time[src].max(end);
                        faults.unreachable += 1;
                        break;
                    }
                    // The sender only notices at the retransmit deadline.
                    self.send_free[src] = end + faults.policy.backoff(sent - 1).as_secs_f64();
                    faults.retransmits += 1;
                    continue;
                }
                let mut latency = 0.0;
                let mut dup_polls = None;
                match action {
                    Some(FaultAction::Delay { polls }) => {
                        faults.delays += 1;
                        latency = polls as f64 * faults.poll_tick;
                    }
                    Some(FaultAction::Reorder) => {
                        faults.reorders += 1;
                        latency = faults.poll_tick;
                    }
                    Some(FaultAction::Duplicate { delay_copy_polls }) => {
                        faults.dups += 1;
                        dup_polls = Some(delay_copy_polls);
                    }
                    _ => {}
                }
                self.post_latent(&mut new_time, src, dst, bytes, latency);
                if let Some(polls) = dup_polls {
                    // The duplicate burns receiver bandwidth; sequencing
                    // discards its bytes after they arrive.
                    self.post_latent(
                        &mut new_time,
                        src,
                        dst,
                        bytes,
                        polls as f64 * faults.poll_tick,
                    );
                }
                break;
            }
        }
        self.rank_time = new_time;
    }

    /// [`EventSim::post`] with an extra receiver-side latency (model-time
    /// stand-in for envelopes held by the fault plane).
    fn post_latent(
        &mut self,
        new_time: &mut [f64],
        src: usize,
        dst: usize,
        bytes: usize,
        latency: f64,
    ) {
        let start = self.send_free[src]
            .max(self.recv_free[dst])
            .max(self.rank_time[src])
            .max(self.rank_time[dst]);
        let end = start + self.model.message(bytes);
        let arrive = end + latency;
        self.send_free[src] = end;
        self.recv_free[dst] = arrive;
        new_time[src] = new_time[src].max(end);
        new_time[dst] = new_time[dst].max(arrive);
    }

    /// Current makespan: the latest local clock.
    pub fn makespan(&self) -> f64 {
        self.rank_time.iter().copied().fold(0.0, f64::max)
    }

    /// Convenience: simulate a symmetric schedule in which, per round,
    /// every rank `r` sends `bytes` to `(r + shift) mod p` — the traffic a
    /// Cartesian collective round induces. Returns the makespan.
    pub fn run_symmetric_rounds(p: usize, model: LinearModel, rounds: &[(usize, usize)]) -> f64 {
        let mut sim = EventSim::new(p, model);
        for &(shift, bytes) in rounds {
            let msgs: Vec<Msg> = (0..p).map(|r| (r, (r + shift) % p, bytes)).collect();
            sim.phase_synchronized(&msgs);
        }
        sim.makespan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: LinearModel = LinearModel {
        alpha: 1e-6,
        beta: 1e-9,
    };

    #[test]
    fn single_message_costs_alpha_beta() {
        let mut sim = EventSim::new(2, M);
        sim.phase(&[(0, 1, 1000)]);
        assert!((sim.makespan() - 2e-6).abs() < 1e-15);
        assert_eq!(sim.size(), 2);
    }

    #[test]
    fn symmetric_ring_round_is_one_message_time() {
        // Every rank sends and receives one message concurrently (full
        // duplex): the round costs α + βb regardless of p.
        let t = EventSim::run_symmetric_rounds(16, M, &[(1, 500)]);
        assert!((t - (1e-6 + 500e-9)).abs() < 1e-15);
    }

    #[test]
    fn symmetric_rounds_match_linear_schedule() {
        // The DES reproduces Σ(α+βb) for isomorphic schedules.
        let rounds = [(1usize, 100usize), (3, 40), (2, 0), (5, 4000)];
        let des = EventSim::run_symmetric_rounds(12, M, &rounds);
        let bytes: Vec<usize> = rounds.iter().map(|&(_, b)| b).collect();
        let formula = M.schedule(&bytes);
        assert!(
            (des - formula).abs() < 1e-12,
            "DES {des} vs formula {formula}"
        );
    }

    #[test]
    fn sends_from_one_rank_serialize() {
        let mut sim = EventSim::new(4, M);
        sim.phase(&[(0, 1, 0), (0, 2, 0), (0, 3, 0)]);
        // three α-cost messages share rank 0's send port
        assert!((sim.makespan() - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn incast_serializes_on_receive_port() {
        let mut sim = EventSim::new(4, M);
        sim.phase(&[(1, 0, 0), (2, 0, 0), (3, 0, 0)]);
        assert!((sim.makespan() - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn full_duplex_overlaps_send_and_recv() {
        let mut sim = EventSim::new(2, M);
        // 0 -> 1 and 1 -> 0 in one phase: overlap, one message time.
        sim.phase(&[(0, 1, 100), (1, 0, 100)]);
        assert!((sim.makespan() - M.message(100)).abs() < 1e-15);
    }

    #[test]
    fn uninvolved_ranks_do_not_wait_without_barrier() {
        let mut sim = EventSim::new(4, M);
        sim.phase(&[(0, 1, 1_000_000)]);
        // ranks 2, 3 still at time zero
        assert_eq!(sim.rank_time[2], 0.0);
        assert_eq!(sim.rank_time[3], 0.0);
        assert!(sim.rank_time[1] > 0.0);
    }

    #[test]
    fn direct_delivery_matches_trivial_formula() {
        // t messages of m bytes per rank, all posted in one phase, on a
        // ring of distinct shifts: serializes to t rounds on each port.
        let p = 8;
        let t = 5;
        let m = 64;
        let mut sim = EventSim::new(p, M);
        let mut msgs = Vec::new();
        for shift in 1..=t {
            for r in 0..p {
                msgs.push((r, (r + shift) % p, m));
            }
        }
        sim.phase(&msgs);
        let expect = M.direct(t, m);
        assert!(
            (sim.makespan() - expect).abs() < 1e-12,
            "DES {} vs direct {}",
            sim.makespan(),
            expect
        );
    }

    #[test]
    fn phase_order_dependency_chains() {
        let mut sim = EventSim::new(3, M);
        sim.phase_synchronized(&[(0, 1, 0)]);
        sim.phase_synchronized(&[(1, 2, 0)]);
        assert!((sim.makespan() - 2e-6).abs() < 1e-15);
    }

    #[test]
    fn faultless_faulty_phase_matches_plain_phase() {
        use cartcomm_comm::FaultSpec;
        let msgs: Vec<Msg> = (0..8).map(|r| (r, (r + 1) % 8, 512)).collect();
        let mut plain = EventSim::new(8, M);
        plain.phase(&msgs);
        let mut faulty = EventSim::new(8, M);
        let mut faults = SimFaults::new(FaultSpec::new(5), RetryPolicy::default());
        faulty.phase_faulty(&msgs, &mut faults);
        assert_eq!(plain.makespan(), faulty.makespan());
        assert_eq!(faults.drops + faults.dups + faults.delays, 0);
    }

    #[test]
    fn dropped_message_costs_a_transmission_plus_backoff() {
        use cartcomm_comm::fault::FaultAction;
        use cartcomm_comm::{FaultRule, FaultSpec, LinkSel};
        use std::time::Duration;

        let spec = FaultSpec::new(1)
            .with_rule(FaultRule::new(LinkSel::any(), 1.0, FaultAction::Drop).window(0, 1));
        let policy = RetryPolicy {
            attempts: 4,
            base: Duration::from_millis(10),
            factor: 2.0,
            max: Duration::from_millis(100),
        };
        let mut sim = EventSim::new(2, M);
        let mut faults = SimFaults::new(spec, policy);
        sim.phase_faulty(&[(0, 1, 1000)], &mut faults);
        // One failed transmission + backoff(0) + one successful one.
        let expect = M.message(1000) + 0.010 + M.message(1000);
        assert!(
            (sim.makespan() - expect).abs() < 1e-12,
            "got {}, expected {expect}",
            sim.makespan()
        );
        assert_eq!(faults.drops, 1);
        assert_eq!(faults.retransmits, 1);
        assert_eq!(faults.unreachable, 0);
    }

    #[test]
    fn total_loss_abandons_after_retry_budget() {
        use cartcomm_comm::{FaultSpec, LinkSel};
        use std::time::Duration;

        let spec = FaultSpec::new(1).drop_rate(LinkSel::link(0, 1), 1.0);
        let policy = RetryPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            factor: 2.0,
            max: Duration::from_millis(8),
        };
        let mut sim = EventSim::new(2, M);
        let mut faults = SimFaults::new(spec, policy);
        sim.phase_faulty(&[(0, 1, 100)], &mut faults);
        assert_eq!(faults.drops, 3, "attempts bound respected");
        assert_eq!(faults.retransmits, 2);
        assert_eq!(faults.unreachable, 1);
        // Receiver clock untouched: nothing ever arrived.
        assert_eq!(sim.rank_time[1], 0.0);
    }

    #[test]
    fn delayed_message_arrives_polls_times_tick_late() {
        use cartcomm_comm::fault::FaultAction;
        use cartcomm_comm::FaultSpec;
        use cartcomm_comm::{FaultRule, LinkSel};

        let spec = FaultSpec::new(1).with_rule(FaultRule::new(
            LinkSel::any(),
            1.0,
            FaultAction::Delay { polls: 3 },
        ));
        let mut sim = EventSim::new(2, M);
        let mut faults = SimFaults::new(spec, RetryPolicy::default()).with_poll_tick(1e-3);
        sim.phase_faulty(&[(0, 1, 1000)], &mut faults);
        let expect = M.message(1000) + 3e-3;
        assert!((sim.makespan() - expect).abs() < 1e-12);
        assert_eq!(faults.delays, 1);
    }

    #[test]
    fn duplicate_burns_receiver_bandwidth() {
        use cartcomm_comm::{FaultSpec, LinkSel};

        let spec = FaultSpec::new(1).dup_rate(LinkSel::any(), 1.0, 0);
        let mut sim = EventSim::new(2, M);
        let mut faults = SimFaults::new(spec, RetryPolicy::default());
        sim.phase_faulty(&[(0, 1, 1000)], &mut faults);
        // Original + copy serialize on rank 1's receive port.
        let expect = 2.0 * M.message(1000);
        assert!((sim.makespan() - expect).abs() < 1e-12);
        assert_eq!(faults.dups, 1);
    }

    #[test]
    fn same_seed_same_makespan_different_seed_differs() {
        use cartcomm_comm::{FaultSpec, LinkSel};

        let msgs: Vec<Msg> = (0..16)
            .flat_map(|r| (1..4).map(move |s| (r, (r + s) % 16, 256)))
            .collect();
        let run = |seed: u64| {
            let spec = FaultSpec::new(seed).drop_rate(LinkSel::any(), 0.3);
            let mut sim = EventSim::new(16, M);
            let mut faults = SimFaults::new(spec, RetryPolicy::default());
            sim.phase_faulty(&msgs, &mut faults);
            (sim.makespan(), faults.drops)
        };
        assert_eq!(run(77), run(77), "same seed must reproduce exactly");
        assert_ne!(run(77).1, run(78).1, "different seeds, different drops");
    }

    #[test]
    fn traced_phase_stamps_model_time() {
        use cartcomm_obs::TraceEvent;

        let tracer = SimTracer::new(64);
        let mut sim = EventSim::new(2, M);
        sim.phase_traced(0, &[(0, 1, 1000)], &tracer);

        let recs = tracer.records();
        assert_eq!(recs.len(), 2);
        // RoundStart at t=0 on the sender.
        assert_eq!(recs[0].t_ns, 0);
        assert_eq!(recs[0].rank, 0);
        assert!(matches!(
            recs[0].event,
            TraceEvent::RoundStart {
                to: 1,
                wire_bytes: 1000,
                ..
            }
        ));
        // RoundEnd at the model completion time α + β·1000 = 2 µs on the
        // receiver.
        let end_ns = (M.message(1000) * 1e9).round() as u64;
        assert_eq!(recs[1].t_ns, end_ns);
        assert_eq!(recs[1].rank, 1);
        assert!(matches!(
            recs[1].event,
            TraceEvent::RoundEnd { from: 0, .. }
        ));
    }

    #[test]
    fn traced_phase_matches_untraced_makespan() {
        let rounds: Vec<Msg> = (0..8).map(|r| (r, (r + 1) % 8, 256)).collect();
        let mut plain = EventSim::new(8, M);
        plain.phase(&rounds);

        let tracer = SimTracer::new(256);
        let mut traced = EventSim::new(8, M);
        traced.phase_traced(0, &rounds, &tracer);

        assert_eq!(plain.makespan(), traced.makespan());
        // One start + one end per message, and the latest RoundEnd
        // timestamp equals the makespan in nanoseconds.
        let recs = tracer.records();
        assert_eq!(recs.len(), 2 * rounds.len());
        let last_end = recs.iter().map(|r| r.t_ns).max().unwrap();
        assert_eq!(last_end, (traced.makespan() * 1e9) as u64);
    }

    #[test]
    fn serialized_sends_trace_distinct_times() {
        use cartcomm_obs::TraceEvent;

        let tracer = SimTracer::new(64);
        let mut sim = EventSim::new(4, M);
        // Three α-cost messages share rank 0's send port: completions at
        // α, 2α, 3α.
        sim.phase_traced(2, &[(0, 1, 0), (0, 2, 0), (0, 3, 0)], &tracer);
        let ends: Vec<u64> = tracer
            .records()
            .iter()
            .filter(|r| matches!(r.event, TraceEvent::RoundEnd { .. }))
            .map(|r| r.t_ns)
            .collect();
        assert_eq!(ends, vec![1_000, 2_000, 3_000]);
    }
}
