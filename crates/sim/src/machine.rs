//! Machine profiles for the paper's systems (Table 2) and the baseline
//! library quirk models.

use crate::model::LinearModel;

/// Emulation of the `MPI_Neighbor_*` implementation defects the paper
/// measured (Figures 3–4): the baseline neighborhood collectives in Open
/// MPI 3.1.0 and Intel MPI 2018 showed per-neighbor costs orders of
/// magnitude above a plain point-to-point message, growing with both the
/// neighbor count and the block size.
///
/// The quirks apply **only** to the library-baseline series of the
/// benchmark harness, never to this library's own algorithms, and are off
/// by default: with them disabled, the baseline is priced as ideal direct
/// delivery, which is what Cray MPI approximately achieved (Figure 5).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BaselineQuirks {
    /// Neighbor count at which the library's request management falls off a
    /// cliff (between t = 243 and t = 3125 in the paper's data for both
    /// Hydra libraries: d=5, n=5 took ~165 ms at every block size).
    pub count_threshold: usize,
    /// Extra per-posted-request cost past the count cliff, seconds
    /// (~50 µs/request reproduces the 3124 × 53 µs ≈ 165 ms disaster).
    pub per_request_overhead: f64,
    /// Payload size (bytes) beyond which the blocking path enters a
    /// pathological protocol (serialized rendezvous handshakes): d=5, n=3
    /// jumped from 0.3 ms at m=10 to ~125 ms at m=100 on both Hydra
    /// libraries. Only consulted below the count cliff.
    pub rendezvous_threshold: usize,
    /// The rendezvous pathology needs many outstanding peers to bite: in
    /// the paper's data t = 242 fell off the cliff at m = 100 while
    /// t = 26 and t = 124 stayed clean at the same block size.
    pub rendezvous_count_threshold: usize,
    /// Extra per-message cost past the rendezvous threshold, seconds
    /// (~515 µs/message in the paper's data).
    pub rendezvous_overhead: f64,
    /// Whether `MPI_Ineighbor_*` shares the count cliff (true for both
    /// Open MPI and Intel MPI in Figures 3-4).
    pub nonblocking_shares_count_cliff: bool,
    /// Whether `MPI_Ineighbor_*` shares the rendezvous cliff (true for
    /// Intel MPI — 142 ms at d=5 n=3 m=100 — but not for Open MPI, whose
    /// non-blocking path stayed at 0.47 ms there).
    pub nonblocking_shares_rendezvous: bool,
}

impl BaselineQuirks {
    /// No defects: the ideal baseline.
    pub const NONE: BaselineQuirks = BaselineQuirks {
        count_threshold: usize::MAX,
        per_request_overhead: 0.0,
        rendezvous_threshold: usize::MAX,
        rendezvous_count_threshold: usize::MAX,
        rendezvous_overhead: 0.0,
        nonblocking_shares_count_cliff: false,
        nonblocking_shares_rendezvous: false,
    };

    /// Price the blocking library baseline for `t` messages of `bytes`.
    pub fn blocking_penalty(&self, t: usize, bytes: usize) -> f64 {
        if t >= self.count_threshold {
            t as f64 * self.per_request_overhead
        } else if t >= self.rendezvous_count_threshold && bytes >= self.rendezvous_threshold {
            t as f64 * self.rendezvous_overhead
        } else {
            0.0
        }
    }

    /// Price the non-blocking library baseline.
    pub fn nonblocking_penalty(&self, t: usize, bytes: usize) -> f64 {
        if t >= self.count_threshold {
            if self.nonblocking_shares_count_cliff {
                t as f64 * self.per_request_overhead
            } else {
                0.0
            }
        } else if t >= self.rendezvous_count_threshold
            && bytes >= self.rendezvous_threshold
            && self.nonblocking_shares_rendezvous
        {
            t as f64 * self.rendezvous_overhead
        } else {
            0.0
        }
    }
}

/// A named system + MPI library combination of the evaluation (Table 2).
#[derive(Debug, Clone, PartialEq)]
pub struct MachineProfile {
    /// Human-readable name.
    pub name: &'static str,
    /// Hardware line for Table 2.
    pub hardware: &'static str,
    /// MPI library line for Table 2.
    pub library: &'static str,
    /// Compiler line for Table 2.
    pub compiler: &'static str,
    /// Number of processes the paper ran on it (nodes × cores).
    pub processes: usize,
    /// Point-to-point cost model.
    pub net: LinearModel,
    /// Library-baseline quirks (only meaningful with `--quirks`).
    pub quirks: BaselineQuirks,
    /// Per-message injection overhead `o` for *overlapped* non-blocking
    /// batches (the LogP `o`): a library posting `t` requests at once pays
    /// `t·o + α + β·Σbytes`, while blocking round-by-round algorithms pay
    /// the full `α` per round. The `o ≪ α` of OmniPath is why the paper's
    /// blocking sendrecv loop ran 2–3× slower than the library baseline on
    /// Hydra, while on Titan (`o ≈ α`) the two were on par.
    pub injection_overhead: f64,
}

impl MachineProfile {
    /// Hydra with Open MPI 3.1.0: 36 × 32 Skylake cores, OmniPath.
    /// α/β calibrated so small-message combining times land near the
    /// paper's absolute numbers (e.g. d=3 n=3 m=1 combining ≈ 27 µs over
    /// C=6 rounds).
    pub fn hydra_openmpi() -> MachineProfile {
        MachineProfile {
            name: "hydra-openmpi",
            hardware: "36 x Dual Intel Xeon Gold 6130 (16 cores) @ 2.1 GHz, Intel OmniPath",
            library: "Open MPI 3.1.0",
            compiler: "gcc 6.3.0",
            processes: 36 * 32,
            net: LinearModel {
                alpha: 2.5e-6,
                beta: 0.085e-9, // ~11.75 GB/s effective per port
            },
            // Figure 3: Neighbor_alltoall at t=3124 took ~165 ms at every
            // block size (count cliff, shared by the non-blocking path);
            // d=5 n=3 fell off the rendezvous cliff at m=100 (124.75 ms,
            // blocking only).
            quirks: BaselineQuirks {
                count_threshold: 3000,
                per_request_overhead: 50e-6,
                rendezvous_threshold: 400,
                rendezvous_count_threshold: 128,
                rendezvous_overhead: 515e-6,
                nonblocking_shares_count_cliff: true,
                nonblocking_shares_rendezvous: false,
            },
            injection_overhead: 0.7e-6,
        }
    }

    /// Hydra with Intel MPI 2018 (32 × 32 processes in Figure 4).
    pub fn hydra_intelmpi() -> MachineProfile {
        MachineProfile {
            name: "hydra-intelmpi",
            hardware: "36 x Dual Intel Xeon Gold 6130 (16 cores) @ 2.1 GHz, Intel OmniPath",
            library: "Intel MPI 2018",
            compiler: "icc 18.0.5",
            processes: 32 * 32,
            net: LinearModel {
                alpha: 2.5e-6,
                beta: 0.085e-9,
            },
            // Figure 4: the same count cliff at t=3124 (163.98 ms at m=1),
            // and the rendezvous cliff at m=100 — which for Intel MPI also
            // hit the non-blocking path (142.5 ms).
            quirks: BaselineQuirks {
                count_threshold: 3000,
                per_request_overhead: 50e-6,
                rendezvous_threshold: 400,
                rendezvous_count_threshold: 128,
                rendezvous_overhead: 515e-6,
                nonblocking_shares_count_cliff: true,
                nonblocking_shares_rendezvous: true,
            },
            injection_overhead: 0.7e-6,
        }
    }

    /// Titan: 1024 × 16 Opteron cores, Cray Gemini, Cray MPI — the paper's
    /// "more in line with our expectations" system: no baseline defects.
    pub fn titan_cray() -> MachineProfile {
        MachineProfile {
            name: "titan-cray",
            hardware: "Cray XK7, Opteron 6274 (16 cores) @ 2.2 GHz, Cray Gemini",
            library: "cray-mpich/7.6.3",
            compiler: "PGI 18.4.0",
            processes: 1024 * 16,
            net: LinearModel {
                alpha: 10.0e-6,
                // Gemini: higher latency, and one NIC shared by 16 cores —
                // an effective per-process bandwidth share of ~0.5 GB/s,
                // which places the d=5 n=5 combining win at m=100 near the
                // factor 3 the paper's text reports.
                beta: 2.0e-9,
            },
            quirks: BaselineQuirks::NONE,
            injection_overhead: 9.0e-6,
        }
    }

    // ----- series pricing -----------------------------------------------
    //
    // Each method returns the *per-round base costs* of one series; the
    // noise models add per-round delays on top (exposure-proportional), so
    // the round decomposition matters: direct delivery is one overlapped
    // bulk phase, the trivial algorithm is `t` blocking rounds, and the
    // combining schedule is `C` rounds.

    /// Library baseline (`MPI_Neighbor_*`): all `t` messages posted
    /// non-blocking and completed together — one bulk phase costing
    /// `t·o + α + β·Σbytes`, plus the library-defect penalty when quirk
    /// emulation is enabled.
    pub fn baseline_rounds(&self, sizes: &[usize], blocking: bool, quirks: bool) -> Vec<f64> {
        let t = sizes.len();
        if t == 0 {
            return Vec::new();
        }
        let total: usize = sizes.iter().sum();
        let avg = total / t;
        let mut cost =
            t as f64 * self.injection_overhead + self.net.alpha + self.net.beta * total as f64;
        if quirks {
            cost += if blocking {
                self.quirks.blocking_penalty(t, avg)
            } else {
                self.quirks.nonblocking_penalty(t, avg)
            };
        }
        vec![cost]
    }

    /// The trivial Cartesian algorithm (Listing 4): `t` blocking sendrecv
    /// rounds of `α + β·bytes` each.
    pub fn trivial_rounds(&self, sizes: &[usize]) -> Vec<f64> {
        sizes.iter().map(|&b| self.net.message(b)).collect()
    }

    /// The message-combining schedule: its per-round wire sizes priced at
    /// `α + β·bytes` each.
    pub fn combining_rounds(&self, round_bytes: &[usize]) -> Vec<f64> {
        round_bytes.iter().map(|&b| self.net.message(b)).collect()
    }

    /// All profiles used in the evaluation.
    pub fn all() -> Vec<MachineProfile> {
        vec![
            Self::hydra_openmpi(),
            Self::hydra_intelmpi(),
            Self::titan_cray(),
        ]
    }

    /// This profile with quirks stripped (the ideal-baseline view).
    pub fn without_quirks(mut self) -> MachineProfile {
        self.quirks = BaselineQuirks::NONE;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_have_paper_process_counts() {
        assert_eq!(MachineProfile::hydra_openmpi().processes, 1152);
        assert_eq!(MachineProfile::hydra_intelmpi().processes, 1024);
        assert_eq!(MachineProfile::titan_cray().processes, 16384);
        assert_eq!(MachineProfile::all().len(), 3);
    }

    #[test]
    fn openmpi_quirk_magnitude_matches_figure3() {
        // t = 3124 neighbors (d=5, n=5), m=1 int: the paper measured
        // ~165 ms for MPI_Neighbor_alltoall. Our quirk model should land in
        // the same decade.
        let p = MachineProfile::hydra_openmpi();
        let t = 3124usize;
        let base = p.net.direct(t, 4);
        let quirked = base + p.quirks.blocking_penalty(t, 4);
        assert!(quirked > 100e-3 && quirked < 300e-3, "got {quirked}");
        // non-blocking equally bad for Open MPI (count cliff shared)...
        assert!(p.quirks.nonblocking_penalty(t, 4) > 0.0);
        // ...but its rendezvous cliff is blocking-only (0.47 ms at d=5 n=3
        // m=100 in Figure 3).
        assert!(p.quirks.blocking_penalty(242, 400) > 100e-3);
        assert_eq!(p.quirks.nonblocking_penalty(242, 400), 0.0);
        // small neighborhoods are clean, even past the size threshold
        // (Figure 3: d=3 n=3 and d=3 n=5 stayed fast at m=100)
        assert_eq!(p.quirks.blocking_penalty(26, 4), 0.0);
        assert_eq!(p.quirks.blocking_penalty(26, 400), 0.0);
        assert_eq!(p.quirks.blocking_penalty(124, 400), 0.0);
    }

    #[test]
    fn intelmpi_cliff_only_past_threshold() {
        let p = MachineProfile::hydra_intelmpi();
        let t = 242usize; // d=5, n=3
        assert_eq!(p.quirks.blocking_penalty(t, 40), 0.0); // m=10 ints fine
        let at_m100 = p.quirks.blocking_penalty(t, 400); // m=100 ints
        assert!(at_m100 > 100e-3, "cliff should dominate: {at_m100}");
        // Intel MPI's non-blocking path shares the rendezvous cliff
        // (142.5 ms in Figure 4).
        assert!(p.quirks.nonblocking_penalty(t, 400) > 100e-3);
        // and both libraries share the count cliff at t = 3124
        assert!(p.quirks.nonblocking_penalty(3124, 4) > 100e-3);
    }

    #[test]
    fn cray_baseline_is_clean() {
        let p = MachineProfile::titan_cray();
        assert_eq!(p.quirks, BaselineQuirks::NONE);
        assert_eq!(p.quirks.blocking_penalty(3124, 400), 0.0);
    }

    #[test]
    fn without_quirks_strips_defects() {
        let p = MachineProfile::hydra_openmpi().without_quirks();
        assert_eq!(p.quirks, BaselineQuirks::NONE);
        assert_eq!(p.name, "hydra-openmpi");
    }
}

#[cfg(test)]
mod pricing_tests {
    use super::*;

    #[test]
    fn baseline_is_one_overlapped_bulk_phase() {
        let p = MachineProfile::titan_cray();
        let rounds = p.baseline_rounds(&[40; 26], true, false);
        assert_eq!(rounds.len(), 1, "direct delivery is one phase");
        let expect = 26.0 * p.injection_overhead + p.net.alpha + p.net.beta * (26.0 * 40.0);
        assert!((rounds[0] - expect).abs() < 1e-15);
        // empty neighborhood prices to nothing
        assert!(p.baseline_rounds(&[], true, false).is_empty());
    }

    #[test]
    fn trivial_is_t_blocking_rounds() {
        let p = MachineProfile::titan_cray();
        let rounds = p.trivial_rounds(&[40; 26]);
        assert_eq!(rounds.len(), 26);
        for r in &rounds {
            assert!((r - p.net.message(40)).abs() < 1e-18);
        }
    }

    #[test]
    fn combining_prices_round_bytes() {
        let p = MachineProfile::hydra_openmpi();
        let rounds = p.combining_rounds(&[100, 0, 5000]);
        assert_eq!(rounds.len(), 3);
        assert!(
            (rounds[1] - p.net.alpha).abs() < 1e-18,
            "empty round costs alpha"
        );
        assert!(rounds[2] > rounds[0]);
    }

    #[test]
    fn quirks_apply_only_when_enabled() {
        let p = MachineProfile::hydra_openmpi();
        let t = 3124usize;
        let clean = p.baseline_rounds(&vec![4; t], true, false)[0];
        let quirked = p.baseline_rounds(&vec![4; t], true, true)[0];
        assert!(quirked > clean + 0.1, "count cliff adds ~156 ms");
        // nonblocking path with quirks shares the count cliff for Open MPI
        let nb = p.baseline_rounds(&vec![4; t], false, true)[0];
        assert!((nb - quirked).abs() < 1e-12);
    }

    #[test]
    fn hydra_injection_overhead_well_below_alpha() {
        let h = MachineProfile::hydra_openmpi();
        assert!(h.injection_overhead < h.net.alpha / 3.0);
        let t = MachineProfile::titan_cray();
        assert!(t.injection_overhead > t.net.alpha * 0.8);
    }
}
