//! Property-based validation of the discrete-event engine against the
//! closed-form α-β model, and of the noise sampler's basic laws.

use cartcomm_sim::{EventSim, LinearModel, NoiseModel};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// For symmetric (isomorphic) schedules the DES reproduces
    /// Σ(α + β·bytes) exactly, at any process count and shift pattern.
    #[test]
    fn des_matches_formula_on_symmetric_schedules(
        p in 2usize..40,
        rounds in proptest::collection::vec((1usize..8, 0usize..10_000), 1..10),
        alpha_us in 1u32..50,
        beta_ps in 1u32..5000,
    ) {
        let model = LinearModel {
            alpha: alpha_us as f64 * 1e-6,
            beta: beta_ps as f64 * 1e-12,
        };
        let rounds: Vec<(usize, usize)> = rounds
            .into_iter()
            .map(|(s, b)| (s % p.max(1), b))
            .map(|(s, b)| (if s == 0 { 1 } else { s }, b))
            .collect();
        let des = EventSim::run_symmetric_rounds(p, model, &rounds);
        let bytes: Vec<usize> = rounds.iter().map(|&(_, b)| b).collect();
        let formula = model.schedule(&bytes);
        prop_assert!((des - formula).abs() < 1e-9 * formula.max(1e-9),
            "DES {} vs formula {}", des, formula);
    }

    /// Asymmetric traffic can only be *slower* than the per-port lower
    /// bound max(out_bytes-cost, in_bytes-cost) at any single rank.
    #[test]
    fn des_respects_port_lower_bounds(
        msgs in proptest::collection::vec((0usize..6, 0usize..6, 0usize..5000), 1..12),
    ) {
        let p = 6;
        let model = LinearModel { alpha: 1e-6, beta: 1e-9 };
        let msgs: Vec<(usize, usize, usize)> = msgs
            .into_iter()
            .filter(|&(s, d, _)| s != d)
            .collect();
        if msgs.is_empty() { return Ok(()); }
        let mut sim = EventSim::new(p, model);
        sim.phase(&msgs);
        let makespan = sim.makespan();
        for r in 0..p {
            let out: f64 = msgs.iter().filter(|&&(s, _, _)| s == r)
                .map(|&(_, _, b)| model.message(b)).sum();
            let inn: f64 = msgs.iter().filter(|&&(_, d, _)| d == r)
                .map(|&(_, _, b)| model.message(b)).sum();
            prop_assert!(makespan + 1e-15 >= out.max(inn),
                "makespan {} below port bound {}", makespan, out.max(inn));
        }
    }

    /// Noise sampling never goes below the base cost and is deterministic
    /// for a fixed seed.
    #[test]
    fn noise_laws(
        seed in any::<u64>(),
        costs in proptest::collection::vec(0.0f64..1e-3, 1..6),
        p_exp in 5u32..15,
    ) {
        let p = 1usize << p_exp;
        let noise = NoiseModel::HeavyTail { events_per_rank_sec: 2.0, scale: 1e-4 };
        let base: f64 = costs.iter().sum();
        let mut rng1 = ChaCha8Rng::seed_from_u64(seed);
        let mut rng2 = ChaCha8Rng::seed_from_u64(seed);
        let a = noise.sample_completion(&costs, p, &mut rng1);
        let b = noise.sample_completion(&costs, p, &mut rng2);
        prop_assert!(a >= base - 1e-18);
        prop_assert_eq!(a, b, "same seed, same sample");
    }
}
