//! Relative-coordinate neighborhoods (the paper's *t-neighborhoods*) and
//! the stencil families used in the evaluation.

use crate::{TopoError, TopoResult};

/// A relative coordinate offset vector, one entry per dimension.
pub type Offset = Vec<i64>;

/// An ordered list of `t` relative coordinate offset vectors in `d`
/// dimensions — the paper's *t-neighborhood* `N[0..t-1]`.
///
/// Repetitions are allowed; the zero vector makes a process its own
/// neighbor. A neighborhood is *Cartesian* when all processes supply the
/// same one — which is a property of the collective call, not of this value;
/// this type only captures one process's list plus the derived quantities
/// the schedule algorithms need:
///
/// * `z_i` — non-zero coordinate count of neighbor `i` ([`RelNeighborhood::hops`]),
/// * `C_k` — number of distinct non-zero k-th coordinates
///   ([`RelNeighborhood::distinct_nonzero_coords`]),
/// * the bucket sort by k-th coordinate used by Algorithms 1 and 2.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelNeighborhood {
    d: usize,
    offsets: Vec<Offset>,
}

impl RelNeighborhood {
    /// Build from a list of offset vectors, validating dimensions agree.
    pub fn new(d: usize, offsets: Vec<Offset>) -> TopoResult<Self> {
        if d == 0 {
            return Err(TopoError::EmptyNeighborhood);
        }
        for o in &offsets {
            if o.len() != d {
                return Err(TopoError::DimensionMismatch {
                    expected: d,
                    actual: o.len(),
                });
            }
        }
        Ok(RelNeighborhood { d, offsets })
    }

    /// Build from a flattened array of `t * d` coordinates, as the C
    /// interface of Listing 1 does (`targetrelative`).
    pub fn from_flat(d: usize, flat: &[i64]) -> TopoResult<Self> {
        if d == 0 || !flat.len().is_multiple_of(d) {
            return Err(TopoError::DimensionMismatch {
                expected: d,
                actual: flat.len(),
            });
        }
        let offsets = flat.chunks(d).map(|c| c.to_vec()).collect();
        Ok(RelNeighborhood { d, offsets })
    }

    // ----- stencil generators (§4.1.1) -------------------------------------

    /// The paper's benchmark family: `n` neighbors per dimension starting at
    /// offset `f`, i.e. per-dimension coordinates `{f, f+1, …, f+n−1}`,
    /// taken as a full cross product, **excluding** the zero vector (as in
    /// Table 1, where `t = n^d − 1`). With `f = −1, n = 3` this is the Moore
    /// neighborhood; `n = 4, 5` make it asymmetric.
    pub fn stencil_family(d: usize, n: usize, f: i64) -> TopoResult<Self> {
        Self::stencil_family_with_self(d, n, f, false)
    }

    /// Like [`RelNeighborhood::stencil_family`], optionally keeping the zero
    /// vector (making each process its own neighbor, `t = n^d`), as the
    /// 9-point example in §4.1.1 does.
    pub fn stencil_family_with_self(
        d: usize,
        n: usize,
        f: i64,
        include_self: bool,
    ) -> TopoResult<Self> {
        if d == 0 || n == 0 {
            return Err(TopoError::EmptyNeighborhood);
        }
        let coords: Vec<i64> = (0..n as i64).map(|i| f + i).collect();
        let mut offsets = Vec::with_capacity(n.pow(d as u32));
        let mut cur = vec![0usize; d];
        loop {
            let off: Offset = cur.iter().map(|&i| coords[i]).collect();
            if include_self || off.iter().any(|&c| c != 0) {
                offsets.push(off);
            }
            // mixed-radix increment, last dimension fastest
            let mut k = d;
            loop {
                if k == 0 {
                    return RelNeighborhood::new(d, offsets);
                }
                k -= 1;
                cur[k] += 1;
                if cur[k] < n {
                    break;
                }
                cur[k] = 0;
            }
        }
    }

    /// Moore neighborhood of the given radius (all offsets with every
    /// coordinate in `[-radius, radius]`, excluding zero). `radius = 1` is
    /// the 3^d−1-point stencil.
    pub fn moore(d: usize, radius: i64) -> TopoResult<Self> {
        Self::stencil_family(d, (2 * radius + 1) as usize, -radius)
    }

    /// Von Neumann neighborhood: the 2d axis neighbors at distance ≤ radius
    /// in L1 norm with a single non-zero coordinate (`radius = 1` gives the
    /// classic 2d+1-point stencil without the center).
    pub fn von_neumann(d: usize, radius: i64) -> TopoResult<Self> {
        if d == 0 || radius < 1 {
            return Err(TopoError::EmptyNeighborhood);
        }
        let mut offsets = Vec::with_capacity(2 * d * radius as usize);
        for k in 0..d {
            for r in 1..=radius {
                for sign in [-1i64, 1] {
                    let mut off = vec![0i64; d];
                    off[k] = sign * r;
                    offsets.push(off);
                }
            }
        }
        RelNeighborhood::new(d, offsets)
    }

    // ----- accessors --------------------------------------------------------

    /// Number of dimensions, `d`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.d
    }

    /// Number of neighbors, `t`.
    #[inline]
    pub fn len(&self) -> usize {
        self.offsets.len()
    }

    /// True if there are no neighbors.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.offsets.is_empty()
    }

    /// The offset vectors in their given order.
    #[inline]
    pub fn offsets(&self) -> &[Offset] {
        &self.offsets
    }

    /// The i-th offset.
    #[inline]
    pub fn offset(&self, i: usize) -> &[i64] {
        &self.offsets[i]
    }

    /// Flatten to a `t * d` array (the Listing 1 wire format, also used to
    /// compare neighborhoods across processes in the isomorphism check).
    pub fn to_flat(&self) -> Vec<i64> {
        let mut out = Vec::with_capacity(self.len() * self.d);
        for o in &self.offsets {
            out.extend_from_slice(o);
        }
        out
    }

    /// Canonical byte encoding of the *sorted* neighborhood, used by the
    /// §2.2 check: two processes have isomorphic neighborhoods iff these
    /// encodings are equal.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        let mut sorted = self.offsets.clone();
        sorted.sort();
        let mut out = Vec::with_capacity(8 + self.len() * self.d * 8);
        out.extend_from_slice(&(self.d as u64).to_le_bytes());
        for o in &sorted {
            for &c in o {
                out.extend_from_slice(&c.to_le_bytes());
            }
        }
        out
    }

    /// The paper's `z_i`: number of non-zero coordinates (hops under
    /// dimension-wise routing) of each neighbor.
    pub fn hops(&self) -> Vec<usize> {
        self.offsets
            .iter()
            .map(|o| o.iter().filter(|&&c| c != 0).count())
            .collect()
    }

    /// The paper's `C_k`: for each dimension, the number of distinct
    /// *non-zero* k-th coordinates in the neighborhood.
    pub fn distinct_nonzero_coords(&self) -> Vec<usize> {
        (0..self.d)
            .map(|k| {
                let mut vals: Vec<i64> = self
                    .offsets
                    .iter()
                    .map(|o| o[k])
                    .filter(|&c| c != 0)
                    .collect();
                vals.sort_unstable();
                vals.dedup();
                vals.len()
            })
            .collect()
    }

    /// Total message-combining rounds `C = Σ_k C_k` (Props. 3.2 / 3.3).
    pub fn combining_rounds(&self) -> usize {
        self.distinct_nonzero_coords().iter().sum()
    }

    /// Per-process alltoall communication volume in blocks, `V = Σ_i z_i`
    /// (Prop. 3.2).
    pub fn alltoall_volume(&self) -> usize {
        self.hops().iter().sum()
    }

    /// Whether the zero vector is present (needs the extra local-copy
    /// phase).
    pub fn has_self(&self) -> bool {
        self.offsets.iter().any(|o| o.iter().all(|&c| c == 0))
    }

    /// Number of neighbors that are not the zero vector.
    pub fn nonzero_count(&self) -> usize {
        self.offsets.len()
            - self
                .offsets
                .iter()
                .filter(|o| o.iter().all(|&c| c == 0))
                .count()
    }

    /// Stable bucket sort of neighbor indices by their k-th coordinate.
    /// Returns `order` such that `offsets[order[0..]]` is sorted by
    /// coordinate `k` (ascending), ties kept in original order. Runs in
    /// O(t + range) when the coordinate range is small, falling back to a
    /// comparison sort for sparse huge ranges — O(t) for all stencils in the
    /// paper, preserving the O(td) total of Prop. 3.1.
    pub fn bucket_sort_by_coord(&self, k: usize) -> Vec<usize> {
        assert!(k < self.d, "dimension out of range");
        let t = self.len();
        if t == 0 {
            return Vec::new();
        }
        let min = self.offsets.iter().map(|o| o[k]).min().expect("non-empty");
        let max = self.offsets.iter().map(|o| o[k]).max().expect("non-empty");
        let range = (max - min) as usize + 1;
        if range <= 16 * t + 64 {
            // counting sort
            let mut counts = vec![0usize; range];
            for o in &self.offsets {
                counts[(o[k] - min) as usize] += 1;
            }
            let mut starts = vec![0usize; range];
            let mut acc = 0usize;
            for (b, &c) in counts.iter().enumerate() {
                starts[b] = acc;
                acc += c;
            }
            let mut order = vec![0usize; t];
            for (i, o) in self.offsets.iter().enumerate() {
                let b = (o[k] - min) as usize;
                order[starts[b]] = i;
                starts[b] += 1;
            }
            order
        } else {
            let mut order: Vec<usize> = (0..t).collect();
            order.sort_by_key(|&i| self.offsets[i][k]);
            order
        }
    }

    /// Negated neighborhood (the source neighbors: `r − N[i]`).
    pub fn negated(&self) -> RelNeighborhood {
        RelNeighborhood {
            d: self.d,
            offsets: self
                .offsets
                .iter()
                .map(|o| o.iter().map(|&c| -c).collect())
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moore_2d_is_the_9_point_stencil_minus_center() {
        let n = RelNeighborhood::moore(2, 1).unwrap();
        assert_eq!(n.len(), 8);
        assert!(!n.has_self());
        assert!(n.offsets().contains(&vec![-1, -1]));
        assert!(n.offsets().contains(&vec![1, 1]));
        assert!(!n.offsets().contains(&vec![0, 0]));
    }

    #[test]
    fn stencil_family_with_self_has_n_pow_d() {
        let n = RelNeighborhood::stencil_family_with_self(2, 3, -1, true).unwrap();
        assert_eq!(n.len(), 9);
        assert!(n.has_self());
        assert_eq!(n.nonzero_count(), 8);
    }

    #[test]
    fn table1_t_values() {
        // t = n^d − 1 for all Table 1 cells.
        for (d, n, t) in [
            (2, 3, 8),
            (2, 4, 15),
            (2, 5, 24),
            (3, 3, 26),
            (3, 4, 63),
            (3, 5, 124),
            (4, 3, 80),
            (4, 4, 255),
            (4, 5, 624),
            (5, 3, 242),
            (5, 4, 1023),
            (5, 5, 3124),
        ] {
            let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
            assert_eq!(nb.len(), t, "d={d} n={n}");
        }
    }

    #[test]
    fn table1_rounds_c_equals_d_times_n_minus_1() {
        for d in 2..=5usize {
            for n in 3..=5usize {
                let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
                assert_eq!(nb.combining_rounds(), d * (n - 1), "d={d} n={n}");
            }
        }
    }

    #[test]
    fn table1_alltoall_volumes() {
        // V = Σ_j j · C(d,j) · (n−1)^j — closed form from §3.1's example.
        for (d, n, v) in [
            (2, 3, 12),
            (2, 4, 24),
            (2, 5, 40),
            (3, 3, 54),
            (3, 4, 144),
            (3, 5, 300),
            (4, 3, 216),
            (4, 4, 768),
            (4, 5, 2000),
            (5, 3, 810),
            (5, 4, 3840),
            (5, 5, 12500),
        ] {
            let nb = RelNeighborhood::stencil_family(d, n, -1).unwrap();
            assert_eq!(nb.alltoall_volume(), v, "d={d} n={n}");
        }
    }

    #[test]
    fn asymmetric_family_f_minus_one_n_four() {
        // §4.1.1's example: d=2, n=4, f=−1 adds the offset-2 neighbors.
        let nb = RelNeighborhood::stencil_family(2, 4, -1).unwrap();
        assert_eq!(nb.len(), 15);
        assert!(nb.offsets().contains(&vec![2, 2]));
        assert!(nb.offsets().contains(&vec![-1, 2]));
        assert!(!nb.offsets().contains(&vec![-2, 0]));
    }

    #[test]
    fn von_neumann_2d() {
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        assert_eq!(nb.len(), 4);
        assert_eq!(nb.alltoall_volume(), 4); // all 1 hop
        assert_eq!(nb.combining_rounds(), 4); // C_0 = C_1 = 2
        let nb2 = RelNeighborhood::von_neumann(3, 2).unwrap();
        assert_eq!(nb2.len(), 12);
    }

    #[test]
    fn hops_count_nonzeros() {
        let nb = RelNeighborhood::new(
            3,
            vec![vec![0, 0, 0], vec![1, 0, 0], vec![1, -1, 0], vec![2, 3, -4]],
        )
        .unwrap();
        assert_eq!(nb.hops(), vec![0, 1, 2, 3]);
        assert!(nb.has_self());
        assert_eq!(nb.nonzero_count(), 3);
    }

    #[test]
    fn distinct_nonzero_coords_per_dim() {
        let nb = RelNeighborhood::new(
            2,
            vec![vec![-2, 1], vec![-1, 1], vec![1, 1], vec![2, 1], vec![0, 1]],
        )
        .unwrap();
        assert_eq!(nb.distinct_nonzero_coords(), vec![4, 1]);
        assert_eq!(nb.combining_rounds(), 5);
    }

    #[test]
    fn bucket_sort_is_stable_and_ordered() {
        let nb = RelNeighborhood::new(
            1,
            vec![vec![3], vec![-1], vec![3], vec![0], vec![-1], vec![2]],
        )
        .unwrap();
        let order = nb.bucket_sort_by_coord(0);
        let sorted: Vec<i64> = order.iter().map(|&i| nb.offset(i)[0]).collect();
        assert_eq!(sorted, vec![-1, -1, 0, 2, 3, 3]);
        // stability: the two -1s keep original relative order (indices 1, 4)
        assert_eq!(&order[0..2], &[1, 4]);
        // and the two 3s (indices 0, 2)
        assert_eq!(&order[4..6], &[0, 2]);
    }

    #[test]
    fn bucket_sort_falls_back_for_huge_ranges() {
        let nb = RelNeighborhood::new(1, vec![vec![1_000_000_000], vec![-1_000_000_000], vec![0]])
            .unwrap();
        let order = nb.bucket_sort_by_coord(0);
        let sorted: Vec<i64> = order.iter().map(|&i| nb.offset(i)[0]).collect();
        assert_eq!(sorted, vec![-1_000_000_000, 0, 1_000_000_000]);
    }

    #[test]
    fn canonical_bytes_order_insensitive() {
        let a = RelNeighborhood::new(2, vec![vec![1, 0], vec![0, 1]]).unwrap();
        let b = RelNeighborhood::new(2, vec![vec![0, 1], vec![1, 0]]).unwrap();
        assert_eq!(a.canonical_bytes(), b.canonical_bytes());
        let c = RelNeighborhood::new(2, vec![vec![0, 1], vec![1, 1]]).unwrap();
        assert_ne!(a.canonical_bytes(), c.canonical_bytes());
    }

    #[test]
    fn flat_roundtrip() {
        let nb = RelNeighborhood::from_flat(2, &[0, 1, 0, -1, -1, 0, 1, 0]).unwrap();
        assert_eq!(nb.len(), 4);
        assert_eq!(nb.offset(2), &[-1, 0]);
        assert_eq!(nb.to_flat(), vec![0, 1, 0, -1, -1, 0, 1, 0]);
    }

    #[test]
    fn from_flat_validates_length() {
        assert!(RelNeighborhood::from_flat(2, &[1, 2, 3]).is_err());
        assert!(RelNeighborhood::from_flat(0, &[]).is_err());
    }

    #[test]
    fn repetitions_allowed() {
        let nb = RelNeighborhood::new(1, vec![vec![2], vec![2], vec![2]]).unwrap();
        assert_eq!(nb.len(), 3);
        assert_eq!(nb.alltoall_volume(), 3);
        assert_eq!(nb.combining_rounds(), 1);
    }

    #[test]
    fn negated_flips_signs() {
        let nb = RelNeighborhood::new(2, vec![vec![1, -2]]).unwrap();
        assert_eq!(nb.negated().offset(0), &[-1, 2]);
    }

    #[test]
    fn listing3_9point_neighborhood() {
        // The exact flattened target list of Listing 3.
        let nb =
            RelNeighborhood::from_flat(2, &[0, 1, 0, -1, -1, 0, 1, 0, -1, 1, 1, 1, 1, -1, -1, -1])
                .unwrap();
        assert_eq!(nb.len(), 8);
        assert_eq!(nb.combining_rounds(), 4); // C_0 = C_1 = 2 ({−1, 1})
        assert_eq!(nb.alltoall_volume(), 4 + 2 * 4); // 4 edges + 4 corners × 2
    }
}
