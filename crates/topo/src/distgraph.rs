//! Distributed-graph topologies: the general, unstructured neighbor lists
//! of `MPI_Dist_graph_create_adjacent`, and their relationship to Cartesian
//! neighborhoods (§2.2 of the paper).

use crate::cart::CartTopology;
use crate::neighborhood::{Offset, RelNeighborhood};
use crate::{TopoError, TopoResult};

/// One process's view of a distributed graph topology: the ranks it receives
/// from (`sources`) and sends to (`targets`), with optional weights.
///
/// This is the *baseline* topology type: the general neighborhood
/// collectives (the paper's comparison point, `MPI_Neighbor_alltoall` etc.)
/// are defined over it, with no structural assumptions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DistGraphTopology {
    sources: Vec<usize>,
    targets: Vec<usize>,
    source_weights: Option<Vec<u32>>,
    target_weights: Option<Vec<u32>>,
}

impl DistGraphTopology {
    /// Create from explicit adjacency lists (the
    /// `MPI_Dist_graph_create_adjacent` call).
    pub fn adjacent(
        sources: Vec<usize>,
        targets: Vec<usize>,
        source_weights: Option<Vec<u32>>,
        target_weights: Option<Vec<u32>>,
    ) -> TopoResult<Self> {
        if let Some(w) = &source_weights {
            if w.len() != sources.len() {
                return Err(TopoError::WeightMismatch {
                    expected: sources.len(),
                    actual: w.len(),
                });
            }
        }
        if let Some(w) = &target_weights {
            if w.len() != targets.len() {
                return Err(TopoError::WeightMismatch {
                    expected: targets.len(),
                    actual: w.len(),
                });
            }
        }
        Ok(DistGraphTopology {
            sources,
            targets,
            source_weights,
            target_weights,
        })
    }

    /// Build the distributed graph that a Cartesian neighborhood induces for
    /// `rank` (the `Cart_neighbor_get` → `MPI_Dist_graph_create_adjacent`
    /// path the paper describes). Targets are `rank + N[i]`, sources
    /// `rank − N[i]`; on non-periodic meshes, offsets that leave the mesh
    /// are dropped (for that process only).
    pub fn from_cart_neighborhood(
        cart: &CartTopology,
        nb: &RelNeighborhood,
        rank: usize,
    ) -> TopoResult<Self> {
        if nb.ndims() != cart.ndims() {
            return Err(TopoError::DimensionMismatch {
                expected: cart.ndims(),
                actual: nb.ndims(),
            });
        }
        let mut targets = Vec::with_capacity(nb.len());
        let mut sources = Vec::with_capacity(nb.len());
        for off in nb.offsets() {
            if let Some(t) = cart.rank_of_offset(rank, off)? {
                targets.push(t);
            }
            let neg: Offset = off.iter().map(|&c| -c).collect();
            if let Some(s) = cart.rank_of_offset(rank, &neg)? {
                sources.push(s);
            }
        }
        Ok(DistGraphTopology {
            sources,
            targets,
            source_weights: None,
            target_weights: None,
        })
    }

    /// Ranks this process receives from, in neighborhood order.
    #[inline]
    pub fn sources(&self) -> &[usize] {
        &self.sources
    }

    /// Ranks this process sends to, in neighborhood order.
    #[inline]
    pub fn targets(&self) -> &[usize] {
        &self.targets
    }

    /// In-degree (number of source neighbors).
    #[inline]
    pub fn indegree(&self) -> usize {
        self.sources.len()
    }

    /// Out-degree (number of target neighbors).
    #[inline]
    pub fn outdegree(&self) -> usize {
        self.targets.len()
    }

    /// Source weights, if weighted.
    pub fn source_weights(&self) -> Option<&[u32]> {
        self.source_weights.as_deref()
    }

    /// Target weights, if weighted.
    pub fn target_weights(&self) -> Option<&[u32]> {
        self.target_weights.as_deref()
    }

    /// Attempt the §2.2 *local* reconstruction: express each target as a
    /// relative offset of `rank` on the given Cartesian topology (minimal
    /// representative per dimension). Together with an equality check of the
    /// canonical encodings across processes — done with one broadcast — an
    /// MPI library can detect that a distributed graph is Cartesian and
    /// pre-select the specialized algorithms. Returns `None` if in/out
    /// degrees differ (cannot be an isomorphic Cartesian neighborhood).
    pub fn reconstruct_relative(
        &self,
        cart: &CartTopology,
        rank: usize,
    ) -> Option<RelNeighborhood> {
        if self.sources.len() != self.targets.len() {
            return None;
        }
        let offsets: Vec<Offset> = self
            .targets
            .iter()
            .map(|&t| cart.relative_coord(rank, t))
            .collect();
        RelNeighborhood::new(cart.ndims(), offsets).ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adjacency_from_cart_torus() {
        let cart = CartTopology::torus(&[3, 3]).unwrap();
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        let g = DistGraphTopology::from_cart_neighborhood(&cart, &nb, 4).unwrap();
        // rank 4 = (1,1); von_neumann order: (-1,0),(1,0),(0,-1),(0,1)
        assert_eq!(g.targets(), &[1, 7, 3, 5]);
        assert_eq!(g.sources(), &[7, 1, 5, 3]);
        assert_eq!(g.indegree(), 4);
        assert_eq!(g.outdegree(), 4);
    }

    #[test]
    fn mesh_boundary_prunes_neighbors() {
        let cart = CartTopology::mesh(&[3, 3]).unwrap();
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        let g = DistGraphTopology::from_cart_neighborhood(&cart, &nb, 0).unwrap();
        // corner (0,0): only +1 offsets stay inside
        assert_eq!(g.targets(), &[3, 1]);
        assert_eq!(g.sources(), &[3, 1]);
    }

    #[test]
    fn weights_validated() {
        assert!(DistGraphTopology::adjacent(vec![0, 1], vec![2], Some(vec![1]), None).is_err());
        assert!(DistGraphTopology::adjacent(vec![0], vec![2], None, Some(vec![1, 2])).is_err());
        let g =
            DistGraphTopology::adjacent(vec![0], vec![2], Some(vec![5]), Some(vec![7])).unwrap();
        assert_eq!(g.source_weights(), Some(&[5u32][..]));
        assert_eq!(g.target_weights(), Some(&[7u32][..]));
    }

    #[test]
    fn reconstruct_relative_recovers_offsets() {
        let cart = CartTopology::torus(&[5, 5]).unwrap();
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        for rank in [0, 7, 24] {
            let g = DistGraphTopology::from_cart_neighborhood(&cart, &nb, rank).unwrap();
            let rec = g.reconstruct_relative(&cart, rank).unwrap();
            // Canonical encodings agree even if per-index order differs.
            assert_eq!(rec.canonical_bytes(), nb.canonical_bytes());
        }
    }

    #[test]
    fn reconstruct_rejects_degree_mismatch() {
        let cart = CartTopology::torus(&[4]).unwrap();
        let g = DistGraphTopology::adjacent(vec![1], vec![1, 2], None, None).unwrap();
        assert!(g.reconstruct_relative(&cart, 0).is_none());
    }

    #[test]
    fn dimension_mismatch_rejected() {
        let cart = CartTopology::torus(&[4, 4]).unwrap();
        let nb = RelNeighborhood::von_neumann(3, 1).unwrap();
        assert!(DistGraphTopology::from_cart_neighborhood(&cart, &nb, 0).is_err());
    }

    #[test]
    fn duplicate_targets_from_wraparound() {
        // On a 2-wide torus, offsets +1 and -1 hit the same process.
        let cart = CartTopology::torus(&[2]).unwrap();
        let nb = RelNeighborhood::new(1, vec![vec![1], vec![-1]]).unwrap();
        let g = DistGraphTopology::from_cart_neighborhood(&cart, &nb, 0).unwrap();
        assert_eq!(g.targets(), &[1, 1]);
        assert_eq!(g.sources(), &[1, 1]);
    }
}
