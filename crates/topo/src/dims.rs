//! Balanced factorization of a process count into Cartesian dimension
//! sizes — the `MPI_Dims_create` counterpart.

/// Factor `p` into `d` dimension sizes that are as close to each other as
/// possible, in non-increasing order (the `MPI_Dims_create` contract).
///
/// The algorithm repeatedly peels the largest prime factor and assigns it to
/// the currently smallest dimension, then sorts non-increasing; this matches
/// the balanced factorizations produced by common MPI implementations for
/// practical `p`.
pub fn dims_create(p: usize, d: usize) -> Vec<usize> {
    assert!(p > 0, "process count must be positive");
    assert!(d > 0, "dimension count must be positive");
    let mut dims = vec![1usize; d];
    let mut factors = prime_factors(p);
    // Assign large factors first to the smallest current dimension.
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        let (imin, _) = dims
            .iter()
            .enumerate()
            .min_by_key(|&(_, &v)| v)
            .expect("d > 0");
        dims[imin] *= f;
    }
    dims.sort_unstable_by(|a, b| b.cmp(a));
    dims
}

/// Prime factorization with repetition, ascending.
pub fn prime_factors(mut n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut f = 2usize;
    while f * f <= n {
        while n.is_multiple_of(f) {
            out.push(f);
            n /= f;
        }
        f += if f == 2 { 1 } else { 2 };
    }
    if n > 1 {
        out.push(n);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorization_basics() {
        assert_eq!(prime_factors(1), Vec::<usize>::new());
        assert_eq!(prime_factors(2), vec![2]);
        assert_eq!(prime_factors(12), vec![2, 2, 3]);
        assert_eq!(prime_factors(97), vec![97]);
        assert_eq!(prime_factors(1024), vec![2; 10]);
    }

    #[test]
    fn dims_multiply_to_p() {
        for p in [1, 2, 6, 12, 36, 64, 100, 97, 1152, 16384] {
            for d in 1..=4 {
                let dims = dims_create(p, d);
                assert_eq!(dims.len(), d);
                assert_eq!(dims.iter().product::<usize>(), p, "p={p} d={d}");
                // non-increasing
                assert!(dims.windows(2).all(|w| w[0] >= w[1]));
            }
        }
    }

    #[test]
    fn dims_are_balanced() {
        assert_eq!(dims_create(16, 2), vec![4, 4]);
        assert_eq!(dims_create(12, 2), vec![4, 3]);
        assert_eq!(dims_create(64, 3), vec![4, 4, 4]);
        assert_eq!(dims_create(1024, 2), vec![32, 32]);
        // The paper's Hydra setup: 36 nodes × 32 cores = 1152 processes.
        let dims = dims_create(1152, 2);
        assert_eq!(dims.iter().product::<usize>(), 1152);
        assert!(dims[0] as f64 / dims[1] as f64 <= 2.0);
    }

    #[test]
    fn prime_p_goes_to_one_dimension() {
        assert_eq!(dims_create(7, 2), vec![7, 1]);
    }

    #[test]
    fn one_process() {
        assert_eq!(dims_create(1, 3), vec![1, 1, 1]);
    }
}
