//! d-dimensional Cartesian meshes and tori with rank ↔ coordinate mapping
//! and the relative-coordinate helpers of Listing 2.

use std::sync::Arc;

use crate::{TopoError, TopoResult};

/// A d-dimensional Cartesian process topology.
///
/// Ranks are laid out in row-major order: the *last* dimension varies
/// fastest, exactly as `MPI_Cart_create` does. Each dimension is
/// independently periodic (torus) or bounded (mesh).
///
/// A topology may carry a *rank permutation* (see
/// [`CartTopology::with_permutation`]): the paper's `reorder` flag lets an
/// implementation place logical grid positions onto physical ranks to
/// match the machine (e.g. brick-shaped node blocks); all coordinate and
/// neighbor arithmetic then goes through the permutation transparently.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CartTopology {
    dims: Vec<usize>,
    periods: Vec<bool>,
    /// Row-major strides: strides[k] = product of dims[k+1..].
    strides: Vec<usize>,
    size: usize,
    /// Optional grid-position <-> rank permutation.
    perm: Option<Arc<Permutation>>,
}

/// A bijection between row-major grid positions and physical ranks.
#[derive(Debug, PartialEq, Eq)]
struct Permutation {
    /// grid position (row-major index) -> physical rank
    grid_to_rank: Vec<usize>,
    /// physical rank -> grid position
    rank_to_grid: Vec<usize>,
}

impl CartTopology {
    /// Create a topology with the given per-dimension sizes and periodicity.
    pub fn new(dims: &[usize], periods: &[bool]) -> TopoResult<Self> {
        if dims.len() != periods.len() {
            return Err(TopoError::DimensionMismatch {
                expected: dims.len(),
                actual: periods.len(),
            });
        }
        if dims.is_empty() {
            return Err(TopoError::EmptyNeighborhood);
        }
        for (k, &s) in dims.iter().enumerate() {
            if s == 0 {
                return Err(TopoError::ZeroDimension { dim: k });
            }
        }
        let size = dims.iter().product();
        let mut strides = vec![1usize; dims.len()];
        for k in (0..dims.len() - 1).rev() {
            strides[k] = strides[k + 1] * dims[k + 1];
        }
        Ok(CartTopology {
            dims: dims.to_vec(),
            periods: periods.to_vec(),
            strides,
            size,
            perm: None,
        })
    }

    /// Attach a rank permutation: `grid_to_rank[g]` is the physical rank
    /// placed at row-major grid position `g`. Must be a bijection on
    /// `0..size`.
    pub fn with_permutation(mut self, grid_to_rank: Vec<usize>) -> TopoResult<Self> {
        if grid_to_rank.len() != self.size {
            return Err(TopoError::SizeMismatch {
                product: self.size,
                processes: grid_to_rank.len(),
            });
        }
        let mut rank_to_grid = vec![usize::MAX; self.size];
        for (g, &r) in grid_to_rank.iter().enumerate() {
            if r >= self.size || rank_to_grid[r] != usize::MAX {
                return Err(TopoError::SizeMismatch {
                    product: self.size,
                    processes: r,
                });
            }
            rank_to_grid[r] = g;
        }
        self.perm = Some(Arc::new(Permutation {
            grid_to_rank,
            rank_to_grid,
        }));
        Ok(self)
    }

    /// True if a (non-identity-capable) permutation is attached.
    pub fn is_reordered(&self) -> bool {
        self.perm.is_some()
    }

    /// The attached grid-position → physical-rank permutation, if any —
    /// part of the topology's identity (two topologies with the same dims
    /// and periods but different placements compile different plans), so
    /// cache keys over topologies must include it.
    pub fn permutation(&self) -> Option<&[usize]> {
        self.perm.as_ref().map(|p| p.grid_to_rank.as_slice())
    }

    #[inline]
    fn grid_of(&self, rank: usize) -> usize {
        match &self.perm {
            Some(p) => p.rank_to_grid[rank],
            None => rank,
        }
    }

    #[inline]
    fn rank_at(&self, grid: usize) -> usize {
        match &self.perm {
            Some(p) => p.grid_to_rank[grid],
            None => grid,
        }
    }

    /// Fully periodic torus.
    pub fn torus(dims: &[usize]) -> TopoResult<Self> {
        Self::new(dims, &vec![true; dims.len()])
    }

    /// Fully bounded mesh.
    pub fn mesh(dims: &[usize]) -> TopoResult<Self> {
        Self::new(dims, &vec![false; dims.len()])
    }

    /// Number of dimensions, the paper's `d`.
    #[inline]
    pub fn ndims(&self) -> usize {
        self.dims.len()
    }

    /// Per-dimension sizes.
    #[inline]
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Per-dimension periodicity flags.
    #[inline]
    pub fn periods(&self) -> &[bool] {
        &self.periods
    }

    /// Total number of processes, `p`.
    #[inline]
    pub fn size(&self) -> usize {
        self.size
    }

    /// Rank of the process at `coords` (row-major, through the permutation
    /// if one is attached). Coordinates must be in range; use
    /// [`CartTopology::rank_of_offset`] for wrapped arithmetic.
    pub fn rank_of(&self, coords: &[usize]) -> TopoResult<usize> {
        if coords.len() != self.ndims() {
            return Err(TopoError::DimensionMismatch {
                expected: self.ndims(),
                actual: coords.len(),
            });
        }
        let mut grid = 0usize;
        for (k, &c) in coords.iter().enumerate() {
            debug_assert!(c < self.dims[k], "coordinate out of range");
            grid += c * self.strides[k];
        }
        Ok(self.rank_at(grid))
    }

    /// Coordinates of `rank` (row-major, through the permutation if one is
    /// attached).
    pub fn coords_of(&self, rank: usize) -> Vec<usize> {
        debug_assert!(rank < self.size);
        let mut coords = Vec::with_capacity(self.ndims());
        let mut rem = self.grid_of(rank);
        for k in 0..self.ndims() {
            coords.push(rem / self.strides[k]);
            rem %= self.strides[k];
        }
        coords
    }

    /// Apply a relative offset to `coords`. Periodic dimensions wrap; in a
    /// non-periodic dimension an out-of-range result yields `None` (the
    /// neighbor does not exist for this process).
    pub fn offset_coords(
        &self,
        coords: &[usize],
        offset: &[i64],
    ) -> TopoResult<Option<Vec<usize>>> {
        if offset.len() != self.ndims() {
            return Err(TopoError::DimensionMismatch {
                expected: self.ndims(),
                actual: offset.len(),
            });
        }
        let mut out = Vec::with_capacity(self.ndims());
        for k in 0..self.ndims() {
            let s = self.dims[k] as i64;
            let c = coords[k] as i64 + offset[k];
            if self.periods[k] {
                out.push(c.rem_euclid(s) as usize);
            } else if (0..s).contains(&c) {
                out.push(c as usize);
            } else {
                return Ok(None);
            }
        }
        Ok(Some(out))
    }

    /// The rank at `coords + offset` (Listing 2's `Cart_relative_rank` with
    /// the calling process's coordinates supplied explicitly). `None` if the
    /// offset leaves a non-periodic mesh.
    pub fn rank_of_offset(&self, rank: usize, offset: &[i64]) -> TopoResult<Option<usize>> {
        let coords = self.coords_of(rank);
        match self.offset_coords(&coords, offset)? {
            Some(c) => Ok(Some(self.rank_of(&c)?)),
            None => Ok(None),
        }
    }

    /// Listing 2's `Cart_relative_shift`: for a relative offset vector,
    /// return `(source, target)` ranks of the calling process `rank` —
    /// target is `rank + offset`, source is `rank − offset`. Either is
    /// `None` where the mesh boundary cuts the neighbor off.
    pub fn relative_shift(
        &self,
        rank: usize,
        offset: &[i64],
    ) -> TopoResult<(Option<usize>, Option<usize>)> {
        let target = self.rank_of_offset(rank, offset)?;
        let neg: Vec<i64> = offset.iter().map(|&o| -o).collect();
        let source = self.rank_of_offset(rank, &neg)?;
        Ok((source, target))
    }

    /// Listing 2's `Cart_relative_coord`: the coordinates of `other` relative
    /// to `rank`, normalized per dimension. On periodic dimensions the
    /// minimal-magnitude representative is returned (ties resolve to the
    /// positive one).
    pub fn relative_coord(&self, rank: usize, other: usize) -> Vec<i64> {
        let a = self.coords_of(rank);
        let b = self.coords_of(other);
        let mut rel = Vec::with_capacity(self.ndims());
        for k in 0..self.ndims() {
            let s = self.dims[k] as i64;
            let mut diff = b[k] as i64 - a[k] as i64;
            if self.periods[k] {
                diff = diff.rem_euclid(s);
                // minimal-magnitude representative; a tie (diff == s/2 with
                // even s) keeps the positive one
                if diff * 2 > s {
                    diff -= s;
                }
            }
            rel.push(diff);
        }
        rel
    }

    /// Iterate over all ranks.
    pub fn ranks(&self) -> impl Iterator<Item = usize> {
        0..self.size
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn row_major_rank_coord_roundtrip() {
        let t = CartTopology::torus(&[3, 4, 5]).unwrap();
        assert_eq!(t.size(), 60);
        assert_eq!(t.ndims(), 3);
        for r in t.ranks() {
            let c = t.coords_of(r);
            assert_eq!(t.rank_of(&c).unwrap(), r);
        }
        // last dimension fastest
        assert_eq!(t.coords_of(1), vec![0, 0, 1]);
        assert_eq!(t.coords_of(5), vec![0, 1, 0]);
        assert_eq!(t.coords_of(20), vec![1, 0, 0]);
    }

    #[test]
    fn torus_wraps_offsets() {
        let t = CartTopology::torus(&[4, 4]).unwrap();
        // rank 0 = (0,0); offset (-1,-1) wraps to (3,3) = rank 15
        assert_eq!(t.rank_of_offset(0, &[-1, -1]).unwrap(), Some(15));
        // large offsets wrap fully
        assert_eq!(t.rank_of_offset(0, &[4, 8]).unwrap(), Some(0));
        assert_eq!(
            t.rank_of_offset(5, &[-5, 2]).unwrap(),
            Some(t.rank_of(&[0, 3]).unwrap())
        );
    }

    #[test]
    fn mesh_cuts_boundary_neighbors() {
        let t = CartTopology::mesh(&[3, 3]).unwrap();
        // corner (0,0): no neighbor at (-1,0)
        assert_eq!(t.rank_of_offset(0, &[-1, 0]).unwrap(), None);
        assert_eq!(t.rank_of_offset(0, &[1, 1]).unwrap(), Some(4));
        // edge (2,2) = rank 8: +1 in either dim leaves
        assert_eq!(t.rank_of_offset(8, &[0, 1]).unwrap(), None);
        assert_eq!(t.rank_of_offset(8, &[-1, -1]).unwrap(), Some(4));
    }

    #[test]
    fn mixed_periodicity() {
        let t = CartTopology::new(&[3, 3], &[true, false]).unwrap();
        // wrap in dim 0 only
        assert_eq!(t.rank_of_offset(0, &[-1, 0]).unwrap(), Some(6));
        assert_eq!(t.rank_of_offset(0, &[0, -1]).unwrap(), None);
    }

    #[test]
    fn relative_shift_source_and_target() {
        let t = CartTopology::torus(&[5]).unwrap();
        let (src, dst) = t.relative_shift(2, &[1]).unwrap();
        assert_eq!(dst, Some(3));
        assert_eq!(src, Some(1));
        let (src, dst) = t.relative_shift(0, &[2]).unwrap();
        assert_eq!(dst, Some(2));
        assert_eq!(src, Some(3)); // 0 - 2 wraps to 3
    }

    #[test]
    fn shift_antisymmetry_on_torus() {
        // (R + N) - N == R for every rank and offset: the deadlock-freedom
        // property used by the trivial algorithm.
        let t = CartTopology::torus(&[3, 4]).unwrap();
        for r in t.ranks() {
            for off in [[1i64, 2], [-2, 3], [0, -1], [5, 7]] {
                let fwd = t.rank_of_offset(r, &off).unwrap().unwrap();
                let neg: Vec<i64> = off.iter().map(|&o| -o).collect();
                let back = t.rank_of_offset(fwd, &neg).unwrap().unwrap();
                assert_eq!(back, r);
            }
        }
    }

    #[test]
    fn relative_coord_minimal_representative() {
        let t = CartTopology::torus(&[6]).unwrap();
        assert_eq!(t.relative_coord(0, 1), vec![1]);
        assert_eq!(t.relative_coord(0, 5), vec![-1]);
        assert_eq!(t.relative_coord(0, 3), vec![3]); // tie keeps +3
        assert_eq!(t.relative_coord(4, 1), vec![3]);
        let m = CartTopology::mesh(&[6]).unwrap();
        assert_eq!(m.relative_coord(0, 5), vec![5]); // no wrap on mesh
    }

    #[test]
    fn constructor_validations() {
        assert!(matches!(
            CartTopology::new(&[2, 0], &[true, true]),
            Err(TopoError::ZeroDimension { dim: 1 })
        ));
        assert!(CartTopology::new(&[2], &[true, false]).is_err());
        assert!(CartTopology::new(&[], &[]).is_err());
        assert!(CartTopology::torus(&[1]).is_ok());
    }

    #[test]
    fn one_by_one_torus_self_neighbor() {
        let t = CartTopology::torus(&[1, 1]).unwrap();
        assert_eq!(t.rank_of_offset(0, &[1, -1]).unwrap(), Some(0));
        assert_eq!(t.rank_of_offset(0, &[3, 3]).unwrap(), Some(0));
    }

    #[test]
    fn offset_dimension_checked() {
        let t = CartTopology::torus(&[2, 2]).unwrap();
        assert!(matches!(
            t.rank_of_offset(0, &[1]),
            Err(TopoError::DimensionMismatch {
                expected: 2,
                actual: 1
            })
        ));
    }
}
