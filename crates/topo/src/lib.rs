//! # cartcomm-topo — process topologies for Cartesian Collective Communication
//!
//! Implements the topology layer of Träff & Hunold (ICPP 2019):
//!
//! * [`CartTopology`] — a d-dimensional mesh or torus of `p` processes with
//!   per-dimension sizes and periodicity, rank ↔ coordinate conversion, and
//!   the relative-coordinate helper functions of Listing 2
//!   (`Cart_relative_rank`, `Cart_relative_shift`, `Cart_relative_coord`).
//! * [`RelNeighborhood`] — a *t-neighborhood*: an ordered list of relative
//!   coordinate offset vectors, with the per-dimension census (the paper's
//!   `C_k`), non-zero counts (`z_i`), and stencil generators for the
//!   evaluation's neighborhood families (§4.1.1: parameters `d`, `n`, `f`).
//! * [`DistGraphTopology`] — the general, unstructured neighbor lists that
//!   MPI's distributed-graph topologies describe; used by the baseline
//!   neighborhood collectives and by the §2.2 reconstruction check that
//!   detects when a distributed graph is in fact Cartesian.
//! * [`dims_create`] — balanced factorization of `p` into `d` dimension
//!   sizes (the `MPI_Dims_create` counterpart used by examples/benchmarks).

pub mod cart;
pub mod dims;
pub mod distgraph;
pub mod neighborhood;
pub mod remap;

pub use cart::CartTopology;
pub use dims::dims_create;
pub use distgraph::DistGraphTopology;
pub use neighborhood::{Offset, RelNeighborhood};
pub use remap::{brick_permutation, traffic_summary, TrafficSummary};

/// Errors raised during topology construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopoError {
    /// Dimension sizes do not multiply to the number of processes.
    SizeMismatch { product: usize, processes: usize },
    /// A dimension size was zero.
    ZeroDimension { dim: usize },
    /// Offset vector has the wrong number of coordinates.
    DimensionMismatch { expected: usize, actual: usize },
    /// A neighborhood was empty where a non-empty one is required.
    EmptyNeighborhood,
    /// A relative offset steps outside a non-periodic dimension for every
    /// process (i.e. `|offset| >= size` with `periods[k] == false`), so no
    /// process has this neighbor.
    OffsetOutsideMesh { dim: usize, offset: i64 },
    /// Mismatched weights list.
    WeightMismatch { expected: usize, actual: usize },
}

impl std::fmt::Display for TopoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TopoError::SizeMismatch { product, processes } => write!(
                f,
                "dimension sizes multiply to {product}, but there are {processes} processes"
            ),
            TopoError::ZeroDimension { dim } => write!(f, "dimension {dim} has size zero"),
            TopoError::DimensionMismatch { expected, actual } => {
                write!(
                    f,
                    "offset has {actual} coordinates, topology has {expected}"
                )
            }
            TopoError::EmptyNeighborhood => write!(f, "neighborhood is empty"),
            TopoError::OffsetOutsideMesh { dim, offset } => write!(
                f,
                "offset {offset} in non-periodic dimension {dim} leaves the mesh for every process"
            ),
            TopoError::WeightMismatch { expected, actual } => {
                write!(f, "{actual} weights for {expected} neighbors")
            }
        }
    }
}

impl std::error::Error for TopoError {}

/// Result alias for topology operations.
pub type TopoResult<T> = Result<T, TopoError>;
