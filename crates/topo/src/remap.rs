//! Process remapping for hierarchical machines — the `reorder` flag of
//! `Cart_neighborhood_create`, actually implemented.
//!
//! MPI's Cartesian `reorder` flag allows the library to place logical grid
//! positions onto physical ranks to match the machine; the paper notes
//! that "current MPI libraries do not exploit these possibilities" \[6\].
//! This module does the classic thing those libraries should do: on a
//! machine of nodes with `k` cores each (physical ranks `0..k` on node 0,
//! `k..2k` on node 1, …), tile the logical torus into **bricks** of `k`
//! grid positions so that stencil neighbors land on the same node as often
//! as possible — turning expensive inter-node messages into cheap
//! intra-node ones.
//!
//! [`brick_permutation`] builds the grid→rank bijection;
//! [`traffic_summary`] counts (optionally weighted) neighbor pairs that
//! cross node boundaries under any mapping, so the improvement is
//! measurable (see the `remap_ablation` benchmark binary).

use crate::cart::CartTopology;
use crate::dims::prime_factors;
use crate::neighborhood::RelNeighborhood;
use crate::{TopoError, TopoResult};

/// Factor `cores_per_node` into per-dimension brick edge lengths
/// `b[k]` with `Π b[k] = cores_per_node` and `b[k]` dividing `dims[k]`,
/// keeping the brick as cubic as possible (greedy largest-prime-first onto
/// the currently thinnest brick edge that can still absorb the factor).
/// Errors when no such factorization exists.
pub fn brick_dims(dims: &[usize], cores_per_node: usize) -> TopoResult<Vec<usize>> {
    let p: usize = dims.iter().product();
    if cores_per_node == 0 || !p.is_multiple_of(cores_per_node) {
        return Err(TopoError::SizeMismatch {
            product: p,
            processes: cores_per_node,
        });
    }
    let mut brick = vec![1usize; dims.len()];
    let mut factors = prime_factors(cores_per_node);
    factors.sort_unstable_by(|a, b| b.cmp(a));
    for f in factors {
        // thinnest brick edge whose dimension can still absorb this factor
        let candidate = (0..dims.len())
            .filter(|&k| dims[k].is_multiple_of(brick[k] * f))
            .min_by_key(|&k| brick[k]);
        match candidate {
            Some(k) => brick[k] *= f,
            None => {
                return Err(TopoError::SizeMismatch {
                    product: p,
                    processes: cores_per_node,
                })
            }
        }
    }
    Ok(brick)
}

/// Build the grid→rank permutation that packs each brick onto one node:
/// node id = row-major brick index, local id = row-major position within
/// the brick, physical rank = `node * cores_per_node + local`.
pub fn brick_permutation(dims: &[usize], cores_per_node: usize) -> TopoResult<Vec<usize>> {
    let brick = brick_dims(dims, cores_per_node)?;
    let d = dims.len();
    let p: usize = dims.iter().product();
    // per-dimension brick counts
    let nbricks: Vec<usize> = (0..d).map(|k| dims[k] / brick[k]).collect();
    // row-major strides
    let stride_of = |sizes: &[usize]| -> Vec<usize> {
        let mut s = vec![1usize; sizes.len()];
        for k in (0..sizes.len().saturating_sub(1)).rev() {
            s[k] = s[k + 1] * sizes[k + 1];
        }
        s
    };
    let grid_strides = stride_of(dims);
    let brick_strides = stride_of(&nbricks);
    let local_strides = stride_of(&brick);

    let mut grid_to_rank = vec![0usize; p];
    for (g, slot) in grid_to_rank.iter_mut().enumerate() {
        // decode grid coords
        let mut rem = g;
        let mut node = 0usize;
        let mut local = 0usize;
        for k in 0..d {
            let c = rem / grid_strides[k];
            rem %= grid_strides[k];
            node += (c / brick[k]) * brick_strides[k];
            local += (c % brick[k]) * local_strides[k];
        }
        *slot = node * cores_per_node + local;
    }
    Ok(grid_to_rank)
}

/// Communication locality of a neighborhood under a topology (with or
/// without an attached permutation): weighted counts of neighbor pairs
/// that stay on-node vs cross nodes, with physical node =
/// `rank / cores_per_node`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Weighted neighbor pairs with both endpoints on the same node.
    pub intra_node: u64,
    /// Weighted neighbor pairs crossing node boundaries.
    pub inter_node: u64,
}

impl TrafficSummary {
    /// Fraction of traffic crossing nodes.
    pub fn inter_fraction(&self) -> f64 {
        let total = self.intra_node + self.inter_node;
        if total == 0 {
            0.0
        } else {
            self.inter_node as f64 / total as f64
        }
    }
}

/// Count (optionally weighted) neighbor traffic over all processes of a
/// topology for the given neighborhood.
pub fn traffic_summary(
    topo: &CartTopology,
    nb: &RelNeighborhood,
    weights: Option<&[u32]>,
    cores_per_node: usize,
) -> TopoResult<TrafficSummary> {
    if let Some(w) = weights {
        if w.len() != nb.len() {
            return Err(TopoError::WeightMismatch {
                expected: nb.len(),
                actual: w.len(),
            });
        }
    }
    let mut intra = 0u64;
    let mut inter = 0u64;
    for r in topo.ranks() {
        for (i, off) in nb.offsets().iter().enumerate() {
            if let Some(t) = topo.rank_of_offset(r, off)? {
                let w = weights.map_or(1u64, |w| w[i] as u64);
                if r / cores_per_node == t / cores_per_node {
                    intra += w;
                } else {
                    inter += w;
                }
            }
        }
    }
    Ok(TrafficSummary {
        intra_node: intra,
        inter_node: inter,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn brick_dims_prefers_cubes() {
        assert_eq!(brick_dims(&[8, 8], 16).unwrap(), vec![4, 4]);
        assert_eq!(brick_dims(&[8, 8], 4).unwrap(), vec![2, 2]);
        assert_eq!(brick_dims(&[4, 4, 4], 8).unwrap(), vec![2, 2, 2]);
        // odd shapes still factor when divisibility allows
        assert_eq!(brick_dims(&[6, 4], 8).unwrap(), vec![2, 4]);
        assert_eq!(brick_dims(&[12], 4).unwrap(), vec![4]);
    }

    #[test]
    fn brick_dims_rejects_impossible() {
        // 3 does not divide any power of 2 dimension
        assert!(brick_dims(&[8, 8], 3).is_err());
        assert!(brick_dims(&[8, 8], 0).is_err());
        // cores_per_node not dividing p
        assert!(brick_dims(&[3, 3], 2).is_err());
    }

    #[test]
    fn brick_permutation_is_bijective() {
        let perm = brick_permutation(&[8, 8], 16).unwrap();
        let mut seen = [false; 64];
        for &r in &perm {
            assert!(!seen[r]);
            seen[r] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn bricks_are_contiguous_nodes() {
        // 4x4 grid, 4-core nodes -> 2x2 bricks; grid (0,0),(0,1),(1,0),(1,1)
        // must share node 0.
        let perm = brick_permutation(&[4, 4], 4).unwrap();
        let node = |g: usize| perm[g] / 4;
        assert_eq!(node(0), node(1));
        assert_eq!(node(0), node(4));
        assert_eq!(node(0), node(5));
        assert_ne!(node(0), node(2)); // (0,2) in the next brick
    }

    #[test]
    fn brick_mapping_cuts_inter_node_traffic() {
        // 4x16 torus, 16-core nodes, Moore neighborhood. Row-major
        // identity packs one full 1x16 row per node: all 6 vertical and
        // diagonal neighbors of every cell cross nodes (inter fraction
        // 6/8 = 0.75). The 4x4 brick keeps most neighbors on-node
        // (44 crossing pairs per 16-cell brick: fraction 0.34).
        let nb = RelNeighborhood::moore(2, 1).unwrap();
        let identity = CartTopology::torus(&[4, 16]).unwrap();
        let before = traffic_summary(&identity, &nb, None, 16).unwrap();
        assert!((before.inter_fraction() - 0.75).abs() < 1e-12);
        let remapped = CartTopology::torus(&[4, 16])
            .unwrap()
            .with_permutation(brick_permutation(&[4, 16], 16).unwrap())
            .unwrap();
        let after = traffic_summary(&remapped, &nb, None, 16).unwrap();
        assert_eq!(
            before.intra_node + before.inter_node,
            after.intra_node + after.inter_node,
            "total traffic is mapping-invariant"
        );
        assert!(
            after.inter_fraction() < before.inter_fraction() * 0.5,
            "brick must cut the node boundary traffic: {:.3} -> {:.3}",
            before.inter_fraction(),
            after.inter_fraction()
        );
    }

    #[test]
    fn weighted_traffic() {
        let nb = RelNeighborhood::von_neumann(2, 1).unwrap();
        let topo = CartTopology::torus(&[4, 4]).unwrap();
        let unweighted = traffic_summary(&topo, &nb, None, 4).unwrap();
        let weights = vec![3u32; 4];
        let weighted = traffic_summary(&topo, &nb, Some(&weights), 4).unwrap();
        assert_eq!(weighted.inter_node, 3 * unweighted.inter_node);
        assert_eq!(weighted.intra_node, 3 * unweighted.intra_node);
        assert!(traffic_summary(&topo, &nb, Some(&[1, 2]), 4).is_err());
    }

    #[test]
    fn permutation_validation() {
        let t = CartTopology::torus(&[2, 2]).unwrap();
        assert!(t.clone().with_permutation(vec![0, 1, 2]).is_err()); // wrong length
        assert!(t.clone().with_permutation(vec![0, 1, 2, 2]).is_err()); // not bijective
        assert!(t.clone().with_permutation(vec![0, 1, 2, 7]).is_err()); // out of range
        let ok = t.with_permutation(vec![3, 2, 1, 0]).unwrap();
        assert!(ok.is_reordered());
    }

    #[test]
    fn permuted_topology_preserves_neighbor_algebra() {
        // (R + N) - N == R must hold through any permutation.
        let perm = brick_permutation(&[4, 4], 4).unwrap();
        let t = CartTopology::torus(&[4, 4])
            .unwrap()
            .with_permutation(perm)
            .unwrap();
        for r in t.ranks() {
            let c = t.coords_of(r);
            assert_eq!(t.rank_of(&c).unwrap(), r, "coords/rank roundtrip");
            for off in [[1i64, 0], [-1, 2], [3, 3]] {
                let fwd = t.rank_of_offset(r, &off).unwrap().unwrap();
                let neg: Vec<i64> = off.iter().map(|&o| -o).collect();
                assert_eq!(t.rank_of_offset(fwd, &neg).unwrap().unwrap(), r);
            }
        }
    }
}
