//! Property-based tests for topology invariants: rank/coordinate
//! bijections (with and without permutations), shift antisymmetry, and
//! relative-coordinate minimality.

use cartcomm_topo::{brick_permutation, CartTopology, RelNeighborhood};
use proptest::prelude::*;

fn arb_dims() -> impl Strategy<Value = Vec<usize>> {
    proptest::collection::vec(1usize..6, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// rank -> coords -> rank is the identity on tori and meshes.
    #[test]
    fn rank_coord_bijection(dims in arb_dims(), periodic in any::<bool>()) {
        let topo = if periodic {
            CartTopology::torus(&dims).unwrap()
        } else {
            CartTopology::mesh(&dims).unwrap()
        };
        for r in topo.ranks() {
            let c = topo.coords_of(r);
            prop_assert_eq!(topo.rank_of(&c).unwrap(), r);
            for (k, &ck) in c.iter().enumerate() {
                prop_assert!(ck < dims[k]);
            }
        }
    }

    /// (R + N) − N == R for every rank and offset on a torus.
    #[test]
    fn shift_antisymmetry(
        dims in arb_dims(),
        offset_seed in proptest::collection::vec(-7i64..8, 3),
    ) {
        let topo = CartTopology::torus(&dims).unwrap();
        let off: Vec<i64> = (0..dims.len()).map(|k| offset_seed[k % 3]).collect();
        let neg: Vec<i64> = off.iter().map(|&c| -c).collect();
        for r in topo.ranks() {
            let fwd = topo.rank_of_offset(r, &off).unwrap().unwrap();
            prop_assert_eq!(topo.rank_of_offset(fwd, &neg).unwrap().unwrap(), r);
        }
    }

    /// relative_coord returns the minimal-magnitude wrap representative
    /// and is consistent with rank_of_offset.
    #[test]
    fn relative_coord_minimal_and_consistent(dims in arb_dims()) {
        let topo = CartTopology::torus(&dims).unwrap();
        for a in topo.ranks() {
            for b in topo.ranks() {
                let rel = topo.relative_coord(a, b);
                // consistency: a + rel == b
                prop_assert_eq!(topo.rank_of_offset(a, &rel).unwrap().unwrap(), b);
                // minimality: |rel_k| <= dims_k / 2
                for (k, &c) in rel.iter().enumerate() {
                    prop_assert!(
                        c.unsigned_abs() as usize * 2 <= dims[k],
                        "rel {} not minimal for size {}", c, dims[k]
                    );
                }
            }
        }
    }

    /// Brick permutations (when they exist) preserve all topology algebra.
    #[test]
    fn permuted_topology_invariants(exp in 1u32..5, dims_choice in 0usize..3) {
        let cores = 1usize << exp;
        let dims = match dims_choice {
            0 => vec![4usize, 4],
            1 => vec![8, 4],
            _ => vec![4, 2, 4],
        };
        let p: usize = dims.iter().product();
        if !p.is_multiple_of(cores) {
            return Ok(());
        }
        let Ok(perm) = brick_permutation(&dims, cores) else { return Ok(()); };
        let topo = CartTopology::torus(&dims).unwrap().with_permutation(perm).unwrap();
        for r in topo.ranks() {
            let c = topo.coords_of(r);
            prop_assert_eq!(topo.rank_of(&c).unwrap(), r);
        }
        // every grid position occupied exactly once
        let mut seen = vec![false; p];
        let mut idx = vec![0usize; dims.len()];
        'outer: loop {
            let r = topo.rank_of(&idx).unwrap();
            prop_assert!(!seen[r]);
            seen[r] = true;
            // increment mixed radix
            let mut k = dims.len();
            loop {
                if k == 0 { break 'outer; }
                k -= 1;
                idx[k] += 1;
                if idx[k] < dims[k] { break; }
                idx[k] = 0;
            }
        }
        prop_assert!(seen.iter().all(|&s| s));
    }

    /// Stencil-family generators: t, C, and V always match the closed
    /// forms for any (d, n, f) with 0 in the offset range.
    #[test]
    fn stencil_family_closed_forms(d in 1usize..5, n in 2usize..5) {
        let f = -1i64; // keeps 0 in range for n >= 2
        let nb = RelNeighborhood::stencil_family(d, n, f).unwrap();
        prop_assert_eq!(nb.len(), n.pow(d as u32) - 1);
        prop_assert_eq!(nb.combining_rounds(), d * (n - 1));
        let v: usize = nb.hops().iter().sum();
        prop_assert_eq!(v, nb.alltoall_volume());
    }
}
