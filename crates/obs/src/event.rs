//! The typed trace-event taxonomy.
//!
//! Events mirror the paper's accounting units: one
//! [`TraceEvent::RoundStart`]/[`TraceEvent::RoundEnd`] pair per
//! communication round (so a schedule's observed round count can be
//! checked against `C = Σ_k C_k`, Prop. 3.2), with `wire_bytes` carrying
//! the exact packed message size (so observed volume can be checked
//! against `V·m`, Prop. 3.3). The remaining events expose the machinery
//! around the rounds: datatype packing, buffer-pool traffic, plan-cache
//! traffic, and receive-slot matching.

/// One structured observability event.
///
/// All ranks and sizes are in the units the executors use internally:
/// ranks are communicator ranks, bytes are payload bytes on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A communication round is about to issue: the wire message for
    /// `to` has been packed. `phase` is the schedule phase (the dimension
    /// `k` for Cartesian schedules), `round` the round index within the
    /// whole schedule.
    RoundStart {
        /// Schedule phase (dimension `k`).
        phase: usize,
        /// Round index within the schedule.
        round: usize,
        /// Destination rank of this round's send.
        to: usize,
        /// Source rank of this round's receive.
        from: usize,
        /// Packed wire-message size in bytes.
        wire_bytes: usize,
        /// Delivery attempt of this round's wire message. Executors emit
        /// `0`; the reliable layer re-emits with `attempt > 0` when a
        /// round's payload is retransmitted, so cross-rank event pairing
        /// stays unambiguous (the profiler treats `attempt > 0` as overlay
        /// edges of the round, never as new rounds).
        attempt: u32,
    },
    /// The matching round completed: the inbound message from `from` has
    /// been received and scattered.
    RoundEnd {
        /// Schedule phase (dimension `k`).
        phase: usize,
        /// Round index within the schedule.
        round: usize,
        /// Destination rank of this round's send.
        to: usize,
        /// Source rank of this round's receive.
        from: usize,
        /// Received wire-message size in bytes.
        wire_bytes: usize,
        /// Delivery attempt that completed the round (see
        /// [`TraceEvent::RoundStart::attempt`]). `0` for first deliveries.
        attempt: u32,
    },
    /// A wire message was packed (gathered) from `spans` source ranges
    /// totalling `bytes` bytes.
    PackSpan {
        /// Round index the pack belongs to.
        round: usize,
        /// Number of contiguous memory spans gathered.
        spans: usize,
        /// Total bytes packed.
        bytes: usize,
    },
    /// A reduction round's incoming wire message was unpacked through the
    /// accumulate kernels: `spans` destination ranges combined (or
    /// first-touch assigned) from `bytes` wire bytes. The reduce-side
    /// mirror of [`TraceEvent::PackSpan`].
    AccumSpan {
        /// Round index the accumulation belongs to.
        round: usize,
        /// Number of contiguous destination spans touched.
        spans: usize,
        /// Total wire bytes folded in.
        bytes: usize,
    },
    /// A wire-buffer acquisition was served from the pool's free list.
    PoolHit {
        /// Requested capacity in bytes.
        bytes: usize,
    },
    /// A wire-buffer acquisition had to allocate.
    PoolMiss {
        /// Requested capacity in bytes.
        bytes: usize,
    },
    /// A compiled-plan lookup hit the communicator's plan cache.
    PlanCacheHit {
        /// Low 64 bits of the layout fingerprint.
        fingerprint: u64,
    },
    /// A compiled-plan lookup missed and compiled.
    PlanCacheMiss {
        /// Low 64 bits of the layout fingerprint.
        fingerprint: u64,
    },
    /// An inbound message was matched to a posted receive slot of a phase
    /// exchange.
    ExchangeMatched {
        /// Sender rank.
        src: usize,
        /// Message tag.
        tag: u32,
        /// Payload bytes.
        bytes: usize,
        /// Receive-slot index the message matched.
        slot: usize,
    },
    /// The fault plane tampered with a deposited envelope. Emitted on the
    /// *sending* rank (the side that owns the link decision). `action` is
    /// a [`FaultActionKind`] code.
    FaultInjected {
        /// Sender rank of the afflicted envelope.
        src: usize,
        /// Destination rank of the afflicted envelope.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// What the plane did ([`FaultActionKind`] as `u64`).
        action: FaultActionKind,
    },
    /// The reliable-delivery layer re-deposited an unacknowledged
    /// sequenced envelope after its retransmit deadline passed.
    Retransmit {
        /// Destination rank of the retransmitted envelope.
        dst: usize,
        /// Message tag.
        tag: u32,
        /// Stream sequence number.
        seq: u64,
        /// Retransmit attempt index (1 = first retransmission).
        attempt: u32,
    },
    /// The receiver's dedup window absorbed an already-delivered
    /// sequenced envelope (a fault-plane duplicate or a spurious
    /// retransmission).
    DupDropped {
        /// Sender rank of the duplicate.
        src: usize,
        /// Message tag.
        tag: u32,
        /// Stream sequence number that had already been delivered.
        seq: u64,
    },
    /// A serving-layer job crossed a lifecycle stage. Emitted by the
    /// daemon's own `Obs` (rank 0 by convention — the daemon is a single
    /// control plane, not a rank), so request-lifecycle traces share the
    /// sink/exporter machinery with executor traces.
    ServeStage {
        /// Daemon-assigned job id, monotonically increasing per process.
        job: u64,
        /// Which stage boundary was crossed.
        stage: ServeStageKind,
        /// Stage-specific detail: queue depth at accept, batch size at
        /// coalesce/dispatch, result bytes at execute/reply.
        detail: u64,
    },
}

/// A serving-layer job-lifecycle stage — the `stage` payload of
/// [`TraceEvent::ServeStage`]. The daemon stamps each job at every
/// boundary on its own clock, so per-stage durations (queue wait,
/// coalesce delay, execute, reply) are differences of consecutive stamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeStageKind {
    /// The job passed admission and entered the bounded queue.
    Accepted,
    /// The dispatcher drained the job from the queue into a batch.
    Coalesced,
    /// The batch (including this job) was handed to a resident universe.
    Dispatched,
    /// All ranks finished executing the job's collective.
    Executed,
    /// The result frame was written back to the client.
    Replied,
}

impl ServeStageKind {
    /// Stable numeric code (drives the exporters' `u64` field encoding).
    pub fn code(self) -> u64 {
        match self {
            ServeStageKind::Accepted => 0,
            ServeStageKind::Coalesced => 1,
            ServeStageKind::Dispatched => 2,
            ServeStageKind::Executed => 3,
            ServeStageKind::Replied => 4,
        }
    }

    /// Short name for human-readable exporters and metric labels.
    pub fn name(self) -> &'static str {
        match self {
            ServeStageKind::Accepted => "accepted",
            ServeStageKind::Coalesced => "coalesced",
            ServeStageKind::Dispatched => "dispatched",
            ServeStageKind::Executed => "executed",
            ServeStageKind::Replied => "replied",
        }
    }
}

/// The kind of tampering a fault plane applied to an envelope — the
/// `action` payload of [`TraceEvent::FaultInjected`], kept in `cartcomm-obs`
/// so trace consumers can decode it without depending on the comm crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultActionKind {
    /// The envelope was silently discarded.
    Drop,
    /// A copy of the envelope was enqueued (possibly delayed).
    Duplicate,
    /// Delivery was deferred for N receiver polls.
    Delay,
    /// The envelope was held back so later traffic overtakes it.
    Reorder,
}

impl FaultActionKind {
    /// Stable numeric code (drives the exporters' `u64` field encoding).
    pub fn code(self) -> u64 {
        match self {
            FaultActionKind::Drop => 0,
            FaultActionKind::Duplicate => 1,
            FaultActionKind::Delay => 2,
            FaultActionKind::Reorder => 3,
        }
    }

    /// Short name for human-readable exporters.
    pub fn name(self) -> &'static str {
        match self {
            FaultActionKind::Drop => "drop",
            FaultActionKind::Duplicate => "duplicate",
            FaultActionKind::Delay => "delay",
            FaultActionKind::Reorder => "reorder",
        }
    }
}

impl TraceEvent {
    /// Short event-kind name, used by the exporters.
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RoundStart { .. } => "round_start",
            TraceEvent::RoundEnd { .. } => "round_end",
            TraceEvent::PackSpan { .. } => "pack_span",
            TraceEvent::AccumSpan { .. } => "accum_span",
            TraceEvent::PoolHit { .. } => "pool_hit",
            TraceEvent::PoolMiss { .. } => "pool_miss",
            TraceEvent::PlanCacheHit { .. } => "plan_cache_hit",
            TraceEvent::PlanCacheMiss { .. } => "plan_cache_miss",
            TraceEvent::ExchangeMatched { .. } => "exchange_matched",
            TraceEvent::FaultInjected { .. } => "fault_injected",
            TraceEvent::Retransmit { .. } => "retransmit",
            TraceEvent::DupDropped { .. } => "dup_dropped",
            TraceEvent::ServeStage { .. } => "serve_stage",
        }
    }

    /// The event's payload as `(field, value)` pairs, in a stable order.
    /// Drives both exporters so JSON and table output cannot drift apart.
    pub fn fields(&self) -> Vec<(&'static str, u64)> {
        match *self {
            TraceEvent::RoundStart {
                phase,
                round,
                to,
                from,
                wire_bytes,
                attempt,
            }
            | TraceEvent::RoundEnd {
                phase,
                round,
                to,
                from,
                wire_bytes,
                attempt,
            } => vec![
                ("phase", phase as u64),
                ("round", round as u64),
                ("to", to as u64),
                ("from", from as u64),
                ("wire_bytes", wire_bytes as u64),
                ("attempt", attempt as u64),
            ],
            TraceEvent::PackSpan {
                round,
                spans,
                bytes,
            }
            | TraceEvent::AccumSpan {
                round,
                spans,
                bytes,
            } => vec![
                ("round", round as u64),
                ("spans", spans as u64),
                ("bytes", bytes as u64),
            ],
            TraceEvent::PoolHit { bytes } | TraceEvent::PoolMiss { bytes } => {
                vec![("bytes", bytes as u64)]
            }
            TraceEvent::PlanCacheHit { fingerprint }
            | TraceEvent::PlanCacheMiss { fingerprint } => {
                vec![("fingerprint", fingerprint)]
            }
            TraceEvent::ExchangeMatched {
                src,
                tag,
                bytes,
                slot,
            } => vec![
                ("src", src as u64),
                ("tag", tag as u64),
                ("bytes", bytes as u64),
                ("slot", slot as u64),
            ],
            TraceEvent::FaultInjected {
                src,
                dst,
                tag,
                action,
            } => vec![
                ("src", src as u64),
                ("dst", dst as u64),
                ("tag", tag as u64),
                ("action", action.code()),
            ],
            TraceEvent::Retransmit {
                dst,
                tag,
                seq,
                attempt,
            } => vec![
                ("dst", dst as u64),
                ("tag", tag as u64),
                ("seq", seq),
                ("attempt", attempt as u64),
            ],
            TraceEvent::DupDropped { src, tag, seq } => {
                vec![("src", src as u64), ("tag", tag as u64), ("seq", seq)]
            }
            TraceEvent::ServeStage { job, stage, detail } => {
                vec![("job", job), ("stage", stage.code()), ("detail", detail)]
            }
        }
    }
}

/// A timestamped, rank-attributed [`TraceEvent`] as delivered to sinks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Timestamp from the communicator's [`crate::Clock`], nanoseconds.
    pub t_ns: u64,
    /// Rank that emitted the event.
    pub rank: usize,
    /// The event payload.
    pub event: TraceEvent,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_and_fields_are_stable() {
        let e = TraceEvent::RoundStart {
            phase: 1,
            round: 3,
            to: 5,
            from: 7,
            wire_bytes: 4096,
            attempt: 2,
        };
        assert_eq!(e.kind(), "round_start");
        assert_eq!(
            e.fields(),
            vec![
                ("phase", 1),
                ("round", 3),
                ("to", 5),
                ("from", 7),
                ("wire_bytes", 4096),
                ("attempt", 2)
            ]
        );
        assert_eq!(
            TraceEvent::PoolHit { bytes: 64 }.fields(),
            vec![("bytes", 64)]
        );
        let a = TraceEvent::AccumSpan {
            round: 2,
            spans: 4,
            bytes: 96,
        };
        assert_eq!(a.kind(), "accum_span");
        assert_eq!(a.fields(), vec![("round", 2), ("spans", 4), ("bytes", 96)]);
        assert_eq!(
            TraceEvent::PlanCacheMiss { fingerprint: 9 }.kind(),
            "plan_cache_miss"
        );
        let s = TraceEvent::ServeStage {
            job: 11,
            stage: ServeStageKind::Coalesced,
            detail: 3,
        };
        assert_eq!(s.kind(), "serve_stage");
        assert_eq!(s.fields(), vec![("job", 11), ("stage", 1), ("detail", 3)]);
        assert_eq!(ServeStageKind::Replied.code(), 4);
        assert_eq!(ServeStageKind::Accepted.name(), "accepted");
    }
}
