//! The per-rank observability handle.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::clock::{Clock, MonotonicClock};
use crate::event::{TraceEvent, TraceRecord};
use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::sink::TraceSink;

/// One rank's observability state: a metrics registry (always on), an
/// optional trace sink, and a pluggable clock.
///
/// Shared behind an `Arc` by all communicator handles of a rank
/// (duplicated contexts observe into the same registry/sink). Tracing is
/// disabled until [`Obs::attach_sink`]; with tracing disabled,
/// [`Obs::emit_with`] costs one relaxed atomic load and a branch — the
/// event closure is never run, no clock is read, no lock is taken.
pub struct Obs {
    enabled: AtomicBool,
    clock: RwLock<Arc<dyn Clock>>,
    sink: RwLock<Option<Arc<dyn TraceSink>>>,
    metrics: MetricsRegistry,
}

impl Obs {
    /// A fresh handle: tracing disabled, monotonic clock, zeroed metrics.
    pub fn new() -> Self {
        Obs {
            enabled: AtomicBool::new(false),
            clock: RwLock::new(Arc::new(MonotonicClock::new())),
            sink: RwLock::new(None),
            metrics: MetricsRegistry::new(),
        }
    }

    /// Whether tracing is enabled (a sink is attached).
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Attach a trace sink and enable tracing. Replaces any prior sink.
    pub fn attach_sink(&self, sink: Arc<dyn TraceSink>) {
        *self.sink.write() = Some(sink);
        self.enabled.store(true, Ordering::Release);
    }

    /// Detach the sink and disable tracing.
    pub fn detach_sink(&self) {
        self.enabled.store(false, Ordering::Release);
        *self.sink.write() = None;
    }

    /// Replace the timestamp source (e.g. with a
    /// [`crate::ManualClock`] driven by a discrete-event simulation).
    pub fn set_clock(&self, clock: Arc<dyn Clock>) {
        *self.clock.write() = clock;
    }

    /// Current time from the attached clock, nanoseconds.
    pub fn now_ns(&self) -> u64 {
        self.clock.read().now_ns()
    }

    /// The always-on metrics registry.
    #[inline]
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Shorthand for `metrics().snapshot()`.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Emit an event lazily: the closure runs only while tracing is
    /// enabled, so the disabled path never constructs the event.
    #[inline]
    pub fn emit_with(&self, rank: usize, make: impl FnOnce() -> TraceEvent) {
        if self.enabled() {
            self.deliver(rank, make());
        }
    }

    /// Emit an already-built event (tracing-gated like
    /// [`Obs::emit_with`]).
    #[inline]
    pub fn emit(&self, rank: usize, event: TraceEvent) {
        if self.enabled() {
            self.deliver(rank, event);
        }
    }

    #[cold]
    fn deliver(&self, rank: usize, event: TraceEvent) {
        // Matched-message sizes feed the size distribution as a side
        // effect of tracing, keeping the counter-only path lock-free.
        if let TraceEvent::ExchangeMatched { bytes, .. } = event {
            self.metrics.record_msg_bytes(bytes);
        }
        let rec = TraceRecord {
            t_ns: self.now_ns(),
            rank,
            event,
        };
        if let Some(sink) = self.sink.read().as_ref() {
            sink.record(&rec);
        }
    }
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("enabled", &self.enabled())
            .field("metrics", &self.metrics.snapshot())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::sink::RingBufferSink;

    #[test]
    fn disabled_emits_nothing_and_skips_closure() {
        let obs = Obs::new();
        let mut ran = false;
        obs.emit_with(0, || {
            ran = true;
            TraceEvent::PoolHit { bytes: 1 }
        });
        assert!(!ran, "closure must not run while disabled");
    }

    #[test]
    fn attached_sink_receives_records() {
        let obs = Obs::new();
        let sink = Arc::new(RingBufferSink::new(16));
        obs.attach_sink(sink.clone());
        assert!(obs.enabled());
        obs.emit(3, TraceEvent::PoolMiss { bytes: 64 });
        let recs = sink.snapshot();
        assert_eq!(recs.len(), 1);
        assert_eq!(recs[0].rank, 3);
        assert_eq!(recs[0].event, TraceEvent::PoolMiss { bytes: 64 });

        obs.detach_sink();
        obs.emit(3, TraceEvent::PoolMiss { bytes: 64 });
        assert_eq!(sink.len(), 1, "no records after detach");
    }

    #[test]
    fn manual_clock_drives_timestamps() {
        let obs = Obs::new();
        let clock = Arc::new(ManualClock::new());
        obs.set_clock(clock.clone());
        let sink = Arc::new(RingBufferSink::new(16));
        obs.attach_sink(sink.clone());
        clock.set_ns(42);
        obs.emit(0, TraceEvent::PoolHit { bytes: 1 });
        assert_eq!(sink.snapshot()[0].t_ns, 42);
    }

    #[test]
    fn matched_event_feeds_size_distribution() {
        let obs = Obs::new();
        obs.attach_sink(Arc::new(RingBufferSink::new(4)));
        obs.emit(
            0,
            TraceEvent::ExchangeMatched {
                src: 1,
                tag: 7,
                bytes: 127,
                slot: 0,
            },
        );
        assert_eq!(obs.metrics().size_histogram().total(), 1);
    }
}
