//! OpenMetrics / Prometheus text-exposition primitives.
//!
//! The serving layer exports its counters, gauges, and per-tenant stage
//! histograms in the [OpenMetrics text format] so standard scrapers can
//! consume a live `cartserve` without bespoke tooling. This module is the
//! format layer only — metric *names* and *composition* live with the
//! exporter in `cartcomm-serve`; here we guarantee the syntactic
//! invariants the golden-file tests pin: stable `# TYPE` headers, label
//! escaping, deterministic number formatting, cumulative histogram
//! buckets ending in `+Inf`, and a trailing `# EOF`.
//!
//! [OpenMetrics text format]: https://prometheus.io/docs/instrumenting/exposition_formats/

use std::fmt::Write as _;

/// Escape a label value per the exposition format: backslash, double
/// quote, and newline are backslash-escaped.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Deterministic number rendering: integers print without a fraction,
/// `+Inf` prints as the exposition format spells it, everything else
/// prints in fixed-precision scientific notation so output never depends
/// on platform float-formatting quirks.
pub fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        return if v > 0.0 {
            "+Inf".into()
        } else {
            "-Inf".into()
        };
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        return format!("{}", v as i64);
    }
    format!("{v:.9e}")
}

/// An append-only OpenMetrics text document.
///
/// The caller emits metric families in a fixed order; `finish()` seals
/// the document with `# EOF`. Every family helper writes its own
/// `# HELP`/`# TYPE` header, so a family appears exactly once.
#[derive(Debug, Default)]
pub struct OpenMetricsWriter {
    out: String,
}

impl OpenMetricsWriter {
    /// An empty document.
    pub fn new() -> Self {
        Self::default()
    }

    fn header(&mut self, name: &str, kind: &str, help: &str) {
        let _ = writeln!(self.out, "# HELP {name} {help}");
        let _ = writeln!(self.out, "# TYPE {name} {kind}");
    }

    fn sample(&mut self, name: &str, labels: &[(&str, &str)], value: f64) {
        self.out.push_str(name);
        if !labels.is_empty() {
            self.out.push('{');
            for (i, (k, v)) in labels.iter().enumerate() {
                if i > 0 {
                    self.out.push(',');
                }
                let _ = write!(self.out, "{k}=\"{}\"", escape_label(v));
            }
            self.out.push('}');
        }
        let _ = writeln!(self.out, " {}", fmt_value(value));
    }

    /// A counter family with one sample per `(labels, value)` row. Rows
    /// render in the given order; the `_total` suffix is the caller's
    /// responsibility (it is part of the stable name).
    pub fn counter(&mut self, name: &str, help: &str, rows: &[(&[(&str, &str)], f64)]) {
        self.header(name, "counter", help);
        for (labels, value) in rows {
            self.sample(name, labels, *value);
        }
    }

    /// A gauge family with one sample per `(labels, value)` row.
    pub fn gauge(&mut self, name: &str, help: &str, rows: &[(&[(&str, &str)], f64)]) {
        self.header(name, "gauge", help);
        for (labels, value) in rows {
            self.sample(name, labels, *value);
        }
    }

    /// One histogram series under an already-written `histogram` header:
    /// cumulative `_bucket` samples from `(le, cumulative_count)` pairs
    /// (ascending `le`), a closing `+Inf` bucket at `count`, then `_sum`
    /// and `_count`. Call [`OpenMetricsWriter::histogram_header`] once per
    /// family, then this once per label set.
    pub fn histogram_series(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        buckets: &[(f64, u64)],
        sum: f64,
        count: u64,
    ) {
        let bucket_name = format!("{name}_bucket");
        let les: Vec<String> = buckets.iter().map(|(le, _)| fmt_value(*le)).collect();
        for ((_, cum), le_s) in buckets.iter().zip(&les) {
            let mut with_le = labels.to_vec();
            with_le.push(("le", le_s.as_str()));
            self.sample(&bucket_name, &with_le, *cum as f64);
        }
        let mut with_inf = labels.to_vec();
        with_inf.push(("le", "+Inf"));
        self.sample(&bucket_name, &with_inf, count as f64);
        self.sample(&format!("{name}_sum"), labels, sum);
        self.sample(&format!("{name}_count"), labels, count as f64);
    }

    /// The `# HELP`/`# TYPE histogram` header of a histogram family.
    pub fn histogram_header(&mut self, name: &str, help: &str) {
        self.header(name, "histogram", help);
    }

    /// Seal and return the document (`# EOF` terminated).
    pub fn finish(mut self) -> String {
        self.out.push_str("# EOF\n");
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_escape_and_values_format() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(fmt_value(42.0), "42");
        assert_eq!(fmt_value(0.0), "0");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(3.5e-7), "3.500000000e-7");
    }

    #[test]
    fn families_render_in_exposition_format() {
        let mut w = OpenMetricsWriter::new();
        w.counter(
            "jobs_total",
            "Jobs seen.",
            &[(&[("tenant", "a")], 3.0), (&[("tenant", "b")], 5.0)],
        );
        w.gauge("queue_depth", "Queued jobs.", &[(&[], 2.0)]);
        w.histogram_header("stage_seconds", "Per-stage latency.");
        w.histogram_series(
            "stage_seconds",
            &[("stage", "queue")],
            &[(0.001, 1), (0.01, 4)],
            0.025,
            5,
        );
        let text = w.finish();

        assert!(text.contains("# TYPE jobs_total counter\n"));
        assert!(text.contains("jobs_total{tenant=\"a\"} 3\n"));
        assert!(text.contains("queue_depth 2\n"));
        assert!(text.contains("# TYPE stage_seconds histogram\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"queue\",le=\"1.000000000e-3\"} 1\n"));
        assert!(text.contains("stage_seconds_bucket{stage=\"queue\",le=\"+Inf\"} 5\n"));
        assert!(text.contains("stage_seconds_sum{stage=\"queue\"} 2.500000000e-2\n"));
        assert!(text.contains("stage_seconds_count{stage=\"queue\"} 5\n"));
        assert!(text.ends_with("# EOF\n"));
    }
}
