//! Trace sinks: where emitted events go.
//!
//! A [`TraceSink`] receives every [`TraceRecord`] a communicator emits
//! while tracing is enabled. The shipped [`RingBufferSink`] keeps the
//! most recent records in a bounded ring (old records are dropped, and
//! counted) and renders snapshots as a text table or JSON — enough for
//! the `cartprof` tool and for integration tests that pin observed
//! rounds/bytes against the paper's predictions.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::event::TraceRecord;

/// A destination for trace records. Implementations must be cheap and
/// thread-safe: all ranks of a universe may share one sink.
pub trait TraceSink: Send + Sync {
    /// Deliver one record. Called only while tracing is enabled.
    fn record(&self, rec: &TraceRecord);
}

/// A bounded in-memory ring of the most recent trace records.
pub struct RingBufferSink {
    cap: usize,
    buf: Mutex<VecDeque<TraceRecord>>,
    dropped: AtomicU64,
}

impl RingBufferSink {
    /// A ring retaining at most `cap` records (`cap >= 1`).
    pub fn new(cap: usize) -> Self {
        RingBufferSink {
            cap: cap.max(1),
            buf: Mutex::new(VecDeque::with_capacity(cap.clamp(1, 4096))),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }

    /// Records evicted because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Copy of the retained records, oldest first.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        self.buf.lock().iter().copied().collect()
    }

    /// Drain the retained records, oldest first, leaving the ring empty.
    pub fn take(&self) -> Vec<TraceRecord> {
        self.buf.lock().drain(..).collect()
    }

    /// Render the retained records as a JSON array (one object per
    /// record). Self-contained: no serializer dependency.
    pub fn to_json(&self) -> String {
        records_to_json(&self.snapshot())
    }

    /// Render the retained records as an aligned text table.
    pub fn to_table(&self) -> String {
        records_to_table(&self.snapshot())
    }
}

impl TraceSink for RingBufferSink {
    fn record(&self, rec: &TraceRecord) {
        let mut buf = self.buf.lock();
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(*rec);
    }
}

impl std::fmt::Debug for RingBufferSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RingBufferSink")
            .field("cap", &self.cap)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// Render records as a JSON array of flat objects:
/// `{"t_ns":…,"rank":…,"event":"round_start","phase":…,…}`.
pub fn records_to_json(records: &[TraceRecord]) -> String {
    let mut out = String::from("[");
    for (i, rec) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"t_ns\":{},\"rank\":{},\"event\":\"{}\"",
            rec.t_ns,
            rec.rank,
            rec.event.kind()
        );
        for (name, value) in rec.event.fields() {
            let _ = write!(out, ",\"{name}\":{value}");
        }
        out.push('}');
    }
    out.push(']');
    out
}

/// Render records as an aligned text table, one row per record.
pub fn records_to_table(records: &[TraceRecord]) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:>14}  {:>4}  {:<16}  details",
        "t_ns", "rank", "event"
    );
    for rec in records {
        let details = rec
            .event
            .fields()
            .into_iter()
            .map(|(name, value)| format!("{name}={value}"))
            .collect::<Vec<_>>()
            .join(" ");
        let _ = writeln!(
            out,
            "{:>14}  {:>4}  {:<16}  {}",
            rec.t_ns,
            rec.rank,
            rec.event.kind(),
            details
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::TraceEvent;

    fn rec(t_ns: u64, rank: usize) -> TraceRecord {
        TraceRecord {
            t_ns,
            rank,
            event: TraceEvent::PoolHit { bytes: 64 },
        }
    }

    #[test]
    fn ring_bounds_and_drops() {
        let sink = RingBufferSink::new(3);
        for i in 0..5 {
            sink.record(&rec(i, 0));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let snap = sink.snapshot();
        assert_eq!(
            snap.iter().map(|r| r.t_ns).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "oldest records evicted first"
        );
    }

    #[test]
    fn take_drains() {
        let sink = RingBufferSink::new(8);
        sink.record(&rec(1, 0));
        sink.record(&rec(2, 1));
        assert_eq!(sink.take().len(), 2);
        assert!(sink.is_empty());
    }

    #[test]
    fn json_is_well_formed() {
        let sink = RingBufferSink::new(8);
        sink.record(&TraceRecord {
            t_ns: 5,
            rank: 1,
            event: TraceEvent::RoundEnd {
                phase: 0,
                round: 2,
                to: 3,
                from: 4,
                wire_bytes: 128,
                attempt: 0,
            },
        });
        let json = sink.to_json();
        assert_eq!(
            json,
            "[{\"t_ns\":5,\"rank\":1,\"event\":\"round_end\",\
             \"phase\":0,\"round\":2,\"to\":3,\"from\":4,\"wire_bytes\":128,\
             \"attempt\":0}]"
        );
    }

    #[test]
    fn table_has_one_row_per_record() {
        let sink = RingBufferSink::new(8);
        sink.record(&rec(1, 0));
        sink.record(&rec(2, 1));
        let table = sink.to_table();
        assert_eq!(table.lines().count(), 3, "header + 2 rows");
        assert!(table.contains("pool_hit"));
        assert!(table.contains("bytes=64"));
    }
}
