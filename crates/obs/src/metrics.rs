//! The per-communicator metrics registry.
//!
//! One [`MetricsRegistry`] per rank absorbs the formerly scattered
//! telemetry (`pool_telemetry`, `plan_cache_stats`, fabric counters)
//! into a single place, counted in the paper's units: *rounds* (what
//! Prop. 3.2 predicts as `C`), *wire bytes* (what Prop. 3.3 predicts as
//! `V·m`), plus the machinery around them (matched messages, pack spans,
//! pool and plan-cache traffic).
//!
//! Counters are relaxed atomics and always on — the same cost class as
//! the pre-existing pool telemetry. The latency/size distributions are
//! `stats::histogram`s behind a mutex and are only recorded while
//! tracing is enabled, keeping the disabled path lock-free.

use std::sync::atomic::{AtomicU64, Ordering};

use cartcomm_stats::Histogram;
use parking_lot::Mutex;

/// Bins of the round-latency distribution: `log10(nanoseconds)` over
/// `[0, 10)` — 1 ns to ~10 s.
const LATENCY_LOG10_BINS: usize = 40;
/// Bins of the message-size distribution: `log2(bytes + 1)` over
/// `[0, 32)` — empty to 4 GiB.
const SIZE_LOG2_BINS: usize = 32;

/// Always-on counters plus tracing-gated distributions for one rank.
pub struct MetricsRegistry {
    rounds_started: AtomicU64,
    rounds_completed: AtomicU64,
    wire_bytes_sent: AtomicU64,
    wire_bytes_recv: AtomicU64,
    exchanges: AtomicU64,
    msgs_matched: AtomicU64,
    pack_spans: AtomicU64,
    pack_bytes: AtomicU64,
    pool_hits: AtomicU64,
    pool_misses: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    faults_injected: AtomicU64,
    retransmits: AtomicU64,
    dup_drops: AtomicU64,
    /// Round latency, recorded as `log10(ns)`. Tracing-gated.
    round_latency_log10_ns: Mutex<Histogram>,
    /// Matched-message size, recorded as `log2(bytes + 1)`. Tracing-gated.
    msg_size_log2_bytes: Mutex<Histogram>,
}

impl MetricsRegistry {
    /// A zeroed registry.
    pub fn new() -> Self {
        MetricsRegistry {
            rounds_started: AtomicU64::new(0),
            rounds_completed: AtomicU64::new(0),
            wire_bytes_sent: AtomicU64::new(0),
            wire_bytes_recv: AtomicU64::new(0),
            exchanges: AtomicU64::new(0),
            msgs_matched: AtomicU64::new(0),
            pack_spans: AtomicU64::new(0),
            pack_bytes: AtomicU64::new(0),
            pool_hits: AtomicU64::new(0),
            pool_misses: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            faults_injected: AtomicU64::new(0),
            retransmits: AtomicU64::new(0),
            dup_drops: AtomicU64::new(0),
            round_latency_log10_ns: Mutex::new(Histogram::new(0.0, 10.0, LATENCY_LOG10_BINS)),
            msg_size_log2_bytes: Mutex::new(Histogram::new(0.0, 32.0, SIZE_LOG2_BINS)),
        }
    }

    // ----- hot-path counter updates (always on, relaxed) -------------------

    /// A communication round was issued.
    #[inline]
    pub fn round_started(&self) {
        self.rounds_started.fetch_add(1, Ordering::Relaxed);
    }

    /// A communication round completed (send issued, receive scattered).
    #[inline]
    pub fn round_completed(&self) {
        self.rounds_completed.fetch_add(1, Ordering::Relaxed);
    }

    /// `bytes` were deposited on the wire by this rank.
    #[inline]
    pub fn add_wire_sent(&self, bytes: usize) {
        self.wire_bytes_sent
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A phase exchange was started.
    #[inline]
    pub fn exchange_started(&self) {
        self.exchanges.fetch_add(1, Ordering::Relaxed);
    }

    /// An inbound message of `bytes` was matched to a receive slot.
    #[inline]
    pub fn message_matched(&self, bytes: usize) {
        self.msgs_matched.fetch_add(1, Ordering::Relaxed);
        self.wire_bytes_recv
            .fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A wire message was packed from `spans` ranges totalling `bytes`.
    #[inline]
    pub fn pack(&self, spans: usize, bytes: usize) {
        self.pack_spans.fetch_add(spans as u64, Ordering::Relaxed);
        self.pack_bytes.fetch_add(bytes as u64, Ordering::Relaxed);
    }

    /// A pooled wire-buffer acquisition hit a free list.
    #[inline]
    pub fn pool_hit(&self) {
        self.pool_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A pooled wire-buffer acquisition allocated.
    #[inline]
    pub fn pool_miss(&self) {
        self.pool_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// A compiled-plan lookup hit the plan cache.
    #[inline]
    pub fn plan_cache_hit(&self) {
        self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// A compiled-plan lookup compiled fresh.
    #[inline]
    pub fn plan_cache_miss(&self) {
        self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// The fault plane tampered with one of this rank's deposits.
    #[inline]
    pub fn fault_injected(&self) {
        self.faults_injected.fetch_add(1, Ordering::Relaxed);
    }

    /// An unacknowledged sequenced envelope was retransmitted.
    #[inline]
    pub fn retransmit(&self) {
        self.retransmits.fetch_add(1, Ordering::Relaxed);
    }

    /// The dedup window absorbed an already-delivered sequenced envelope.
    #[inline]
    pub fn dup_drop(&self) {
        self.dup_drops.fetch_add(1, Ordering::Relaxed);
    }

    // ----- tracing-gated distributions -------------------------------------

    /// Record one round latency (callers gate on tracing being enabled).
    pub fn record_round_ns(&self, ns: u64) {
        self.round_latency_log10_ns
            .lock()
            .add((ns.max(1) as f64).log10());
    }

    /// Record one matched-message size (callers gate on tracing enabled).
    pub fn record_msg_bytes(&self, bytes: usize) {
        self.msg_size_log2_bytes
            .lock()
            .add((bytes as f64 + 1.0).log2());
    }

    /// Copy of the round-latency distribution (`log10(ns)` domain).
    pub fn latency_histogram(&self) -> Histogram {
        self.round_latency_log10_ns.lock().clone()
    }

    /// Copy of the message-size distribution (`log2(bytes + 1)` domain).
    pub fn size_histogram(&self) -> Histogram {
        self.msg_size_log2_bytes.lock().clone()
    }

    // ----- snapshots -------------------------------------------------------

    /// Plain-data copy of every counter.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            rounds_started: self.rounds_started.load(Ordering::Relaxed),
            rounds_completed: self.rounds_completed.load(Ordering::Relaxed),
            wire_bytes_sent: self.wire_bytes_sent.load(Ordering::Relaxed),
            wire_bytes_recv: self.wire_bytes_recv.load(Ordering::Relaxed),
            exchanges: self.exchanges.load(Ordering::Relaxed),
            msgs_matched: self.msgs_matched.load(Ordering::Relaxed),
            pack_spans: self.pack_spans.load(Ordering::Relaxed),
            pack_bytes: self.pack_bytes.load(Ordering::Relaxed),
            pool_hits: self.pool_hits.load(Ordering::Relaxed),
            pool_misses: self.pool_misses.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            faults_injected: self.faults_injected.load(Ordering::Relaxed),
            retransmits: self.retransmits.load(Ordering::Relaxed),
            dup_drops: self.dup_drops.load(Ordering::Relaxed),
        }
    }

    /// The counter traffic since `earlier`, as a [`MetricsDelta`].
    /// Equivalent to `snapshot() - earlier` — the idiomatic way to scope
    /// assertions to a region of interest without resetting the registry.
    pub fn delta_since(&self, earlier: &MetricsSnapshot) -> MetricsDelta {
        MetricsDelta(self.snapshot().since(earlier))
    }

    /// Zero every counter (distributions are kept). Lets a measurement
    /// scope counters to a region of interest.
    pub fn reset(&self) {
        self.rounds_started.store(0, Ordering::Relaxed);
        self.rounds_completed.store(0, Ordering::Relaxed);
        self.wire_bytes_sent.store(0, Ordering::Relaxed);
        self.wire_bytes_recv.store(0, Ordering::Relaxed);
        self.exchanges.store(0, Ordering::Relaxed);
        self.msgs_matched.store(0, Ordering::Relaxed);
        self.pack_spans.store(0, Ordering::Relaxed);
        self.pack_bytes.store(0, Ordering::Relaxed);
        self.pool_hits.store(0, Ordering::Relaxed);
        self.pool_misses.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
        self.faults_injected.store(0, Ordering::Relaxed);
        self.retransmits.store(0, Ordering::Relaxed);
        self.dup_drops.store(0, Ordering::Relaxed);
    }
}

impl Default for MetricsRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsRegistry")
            .field("snapshot", &self.snapshot())
            .finish()
    }
}

/// A plain-data copy of a [`MetricsRegistry`]'s counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Communication rounds issued.
    pub rounds_started: u64,
    /// Communication rounds completed.
    pub rounds_completed: u64,
    /// Payload bytes this rank deposited on the wire.
    pub wire_bytes_sent: u64,
    /// Payload bytes matched into this rank's receive slots.
    pub wire_bytes_recv: u64,
    /// Phase exchanges started.
    pub exchanges: u64,
    /// Messages matched to receive slots.
    pub msgs_matched: u64,
    /// Contiguous spans gathered while packing wire messages.
    pub pack_spans: u64,
    /// Bytes gathered while packing wire messages.
    pub pack_bytes: u64,
    /// Wire-buffer acquisitions served from a free list.
    pub pool_hits: u64,
    /// Wire-buffer acquisitions that allocated.
    pub pool_misses: u64,
    /// Compiled-plan cache hits.
    pub plan_cache_hits: u64,
    /// Compiled-plan cache misses (compilations).
    pub plan_cache_misses: u64,
    /// Envelopes the fault plane tampered with on this rank's deposits.
    pub faults_injected: u64,
    /// Sequenced envelopes retransmitted after a missed acknowledgement.
    pub retransmits: u64,
    /// Duplicate sequenced envelopes absorbed by the dedup window.
    pub dup_drops: u64,
}

impl MetricsSnapshot {
    /// Field-wise saturating difference `self − earlier`: the traffic
    /// between two snapshots.
    pub fn since(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            rounds_started: self.rounds_started.saturating_sub(earlier.rounds_started),
            rounds_completed: self
                .rounds_completed
                .saturating_sub(earlier.rounds_completed),
            wire_bytes_sent: self.wire_bytes_sent.saturating_sub(earlier.wire_bytes_sent),
            wire_bytes_recv: self.wire_bytes_recv.saturating_sub(earlier.wire_bytes_recv),
            exchanges: self.exchanges.saturating_sub(earlier.exchanges),
            msgs_matched: self.msgs_matched.saturating_sub(earlier.msgs_matched),
            pack_spans: self.pack_spans.saturating_sub(earlier.pack_spans),
            pack_bytes: self.pack_bytes.saturating_sub(earlier.pack_bytes),
            pool_hits: self.pool_hits.saturating_sub(earlier.pool_hits),
            pool_misses: self.pool_misses.saturating_sub(earlier.pool_misses),
            plan_cache_hits: self.plan_cache_hits.saturating_sub(earlier.plan_cache_hits),
            plan_cache_misses: self
                .plan_cache_misses
                .saturating_sub(earlier.plan_cache_misses),
            faults_injected: self.faults_injected.saturating_sub(earlier.faults_injected),
            retransmits: self.retransmits.saturating_sub(earlier.retransmits),
            dup_drops: self.dup_drops.saturating_sub(earlier.dup_drops),
        }
    }

    /// The counters as `(name, value)` pairs in a stable order (drives
    /// the exporters).
    pub fn fields(&self) -> [(&'static str, u64); 15] {
        [
            ("rounds_started", self.rounds_started),
            ("rounds_completed", self.rounds_completed),
            ("wire_bytes_sent", self.wire_bytes_sent),
            ("wire_bytes_recv", self.wire_bytes_recv),
            ("exchanges", self.exchanges),
            ("msgs_matched", self.msgs_matched),
            ("pack_spans", self.pack_spans),
            ("pack_bytes", self.pack_bytes),
            ("pool_hits", self.pool_hits),
            ("pool_misses", self.pool_misses),
            ("plan_cache_hits", self.plan_cache_hits),
            ("plan_cache_misses", self.plan_cache_misses),
            ("faults_injected", self.faults_injected),
            ("retransmits", self.retransmits),
            ("dup_drops", self.dup_drops),
        ]
    }

    /// Render as a flat JSON object.
    pub fn to_json(&self) -> String {
        let body = self
            .fields()
            .iter()
            .map(|(name, value)| format!("\"{name}\":{value}"))
            .collect::<Vec<_>>()
            .join(",");
        format!("{{{body}}}")
    }
}

impl std::ops::AddAssign for MetricsSnapshot {
    /// Field-wise accumulation — folding per-job [`MetricsDelta`]s into a
    /// per-tenant running total (saturating, like [`MetricsSnapshot::since`]).
    fn add_assign(&mut self, rhs: MetricsSnapshot) {
        self.rounds_started = self.rounds_started.saturating_add(rhs.rounds_started);
        self.rounds_completed = self.rounds_completed.saturating_add(rhs.rounds_completed);
        self.wire_bytes_sent = self.wire_bytes_sent.saturating_add(rhs.wire_bytes_sent);
        self.wire_bytes_recv = self.wire_bytes_recv.saturating_add(rhs.wire_bytes_recv);
        self.exchanges = self.exchanges.saturating_add(rhs.exchanges);
        self.msgs_matched = self.msgs_matched.saturating_add(rhs.msgs_matched);
        self.pack_spans = self.pack_spans.saturating_add(rhs.pack_spans);
        self.pack_bytes = self.pack_bytes.saturating_add(rhs.pack_bytes);
        self.pool_hits = self.pool_hits.saturating_add(rhs.pool_hits);
        self.pool_misses = self.pool_misses.saturating_add(rhs.pool_misses);
        self.plan_cache_hits = self.plan_cache_hits.saturating_add(rhs.plan_cache_hits);
        self.plan_cache_misses = self.plan_cache_misses.saturating_add(rhs.plan_cache_misses);
        self.faults_injected = self.faults_injected.saturating_add(rhs.faults_injected);
        self.retransmits = self.retransmits.saturating_add(rhs.retransmits);
        self.dup_drops = self.dup_drops.saturating_add(rhs.dup_drops);
    }
}

impl std::ops::Sub for MetricsSnapshot {
    type Output = MetricsDelta;

    /// `later - earlier`: the counter traffic between two snapshots.
    /// Saturating per field, so a reset in between yields zeros instead
    /// of wrapping.
    fn sub(self, earlier: MetricsSnapshot) -> MetricsDelta {
        MetricsDelta(self.since(&earlier))
    }
}

/// The field-wise difference of two [`MetricsSnapshot`]s — counter
/// traffic scoped to a region of interest. Produced by
/// `later_snapshot - earlier_snapshot` or
/// [`MetricsRegistry::delta_since`]; derefs to [`MetricsSnapshot`], so
/// fields, `fields()`, and `to_json()` are all available on the delta.
///
/// Tests should assert on deltas instead of absolute counter values:
/// absolute values are brittle (any setup traffic before the section
/// under test shifts them), a delta pins exactly the section's traffic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MetricsDelta(pub MetricsSnapshot);

impl std::ops::Deref for MetricsDelta {
    type Target = MetricsSnapshot;

    fn deref(&self) -> &MetricsSnapshot {
        &self.0
    }
}

impl std::fmt::Display for MetricsDelta {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::fmt::Display for MetricsSnapshot {
    /// Aligned `name  value` table, one counter per line.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        for (name, value) in self.fields() {
            writeln!(f, "{name:<20} {value:>12}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let m = MetricsRegistry::new();
        m.round_started();
        m.round_completed();
        m.add_wire_sent(100);
        m.exchange_started();
        m.message_matched(40);
        m.pack(3, 24);
        m.pool_hit();
        m.pool_miss();
        m.plan_cache_hit();
        m.plan_cache_miss();
        let s = m.snapshot();
        assert_eq!(s.rounds_started, 1);
        assert_eq!(s.rounds_completed, 1);
        assert_eq!(s.wire_bytes_sent, 100);
        assert_eq!(s.wire_bytes_recv, 40);
        assert_eq!(s.msgs_matched, 1);
        assert_eq!(s.pack_spans, 3);
        assert_eq!(s.pack_bytes, 24);
        assert_eq!(s.pool_hits, 1);
        assert_eq!(s.plan_cache_misses, 1);
    }

    #[test]
    fn since_scopes_counters() {
        let m = MetricsRegistry::new();
        m.round_completed();
        let s0 = m.snapshot();
        m.round_completed();
        m.round_completed();
        let d = m.snapshot().since(&s0);
        assert_eq!(d.rounds_completed, 2);
        assert_eq!(d.rounds_started, 0);
    }

    #[test]
    fn subtraction_yields_delta() {
        let m = MetricsRegistry::new();
        m.add_wire_sent(100);
        let s0 = m.snapshot();
        m.add_wire_sent(23);
        m.pool_hit();
        let d = m.snapshot() - s0;
        assert_eq!(d.wire_bytes_sent, 23);
        assert_eq!(d.pool_hits, 1);
        assert_eq!(d.rounds_started, 0);
        assert_eq!(m.delta_since(&s0), d);
        // Saturating: subtracting a later snapshot clamps at zero.
        let earlier = MetricsSnapshot::default() - m.snapshot();
        assert_eq!(earlier.wire_bytes_sent, 0);
    }

    #[test]
    fn reset_zeroes_counters() {
        let m = MetricsRegistry::new();
        m.message_matched(64);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn distributions_record_in_log_domain() {
        let m = MetricsRegistry::new();
        m.record_round_ns(1_000); // log10 = 3
        m.record_msg_bytes(1023); // log2(1024) = 10
        let lat = m.latency_histogram();
        assert_eq!(lat.total(), 1);
        assert!((lat.sample_mean() - 3.0).abs() < 1e-9);
        let size = m.size_histogram();
        assert_eq!(size.total(), 1);
        assert!((size.sample_mean() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn snapshot_renders_table_and_json() {
        let m = MetricsRegistry::new();
        m.round_completed();
        let s = m.snapshot();
        let table = format!("{s}");
        assert_eq!(table.lines().count(), 15);
        assert!(table.contains("rounds_completed"));
        let json = s.to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"rounds_completed\":1"));
    }
}
