//! Pluggable timestamp sources.
//!
//! Real threaded runs stamp events with a [`MonotonicClock`]; simulated
//! runs stamp them with a [`ManualClock`] that the discrete-event
//! simulator advances to each event's model time, so one trace format
//! serves both worlds.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A timestamp source for trace records, in nanoseconds since an
/// arbitrary per-clock origin.
pub trait Clock: Send + Sync {
    /// Current time in nanoseconds.
    fn now_ns(&self) -> u64;
}

/// Wall-clock monotonic time since the clock's creation — the default for
/// real threaded runs.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_ns(&self) -> u64 {
        self.origin.elapsed().as_nanos() as u64
    }
}

/// An externally-driven clock: whoever owns the model time (the DES in
/// `cartcomm-sim`) sets it before emitting events, so trace timestamps
/// are *simulated* time rather than host time.
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ns: AtomicU64,
}

impl ManualClock {
    /// A manual clock starting at zero.
    pub fn new() -> Self {
        ManualClock {
            now_ns: AtomicU64::new(0),
        }
    }

    /// Set the current time in nanoseconds.
    pub fn set_ns(&self, t_ns: u64) {
        self.now_ns.store(t_ns, Ordering::Relaxed);
    }

    /// Set the current time from fractional seconds (the DES unit).
    /// Negative or non-finite values clamp to zero.
    pub fn set_secs_f64(&self, t_secs: f64) {
        let ns = if t_secs.is_finite() && t_secs > 0.0 {
            (t_secs * 1e9) as u64
        } else {
            0
        };
        self.set_ns(ns);
    }

    /// Advance the current time by `dt_ns` nanoseconds.
    pub fn advance_ns(&self, dt_ns: u64) {
        self.now_ns.fetch_add(dt_ns, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_ns(&self) -> u64 {
        self.now_ns.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_advances() {
        let c = MonotonicClock::new();
        let a = c.now_ns();
        let b = c.now_ns();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_is_driven() {
        let c = ManualClock::new();
        assert_eq!(c.now_ns(), 0);
        c.set_ns(1_000);
        assert_eq!(c.now_ns(), 1_000);
        c.advance_ns(500);
        assert_eq!(c.now_ns(), 1_500);
        c.set_secs_f64(2.5);
        assert_eq!(c.now_ns(), 2_500_000_000);
        c.set_secs_f64(-1.0);
        assert_eq!(c.now_ns(), 0);
    }
}
