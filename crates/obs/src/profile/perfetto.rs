//! Chrome trace-event JSON export of the round DAG.
//!
//! The output loads in `ui.perfetto.dev` (or `chrome://tracing`): one
//! thread track per rank, an `X` complete-event slice per wire message on
//! the sender's track, `s`/`f` flow arrows connecting each slice to its
//! arrival on the receiver's track, and cumulative `C` counter tracks for
//! pool and plan-cache traffic. Event ordering is fully deterministic
//! (metadata in rank order, slices in DAG node order, counters in record
//! order per rank), so the export is golden-testable.

use crate::event::{TraceEvent, TraceRecord};

use super::collect::RoundDag;

/// Writer of Chrome trace-event JSON for a [`RoundDag`].
pub struct PerfettoExport<'a> {
    dag: &'a RoundDag,
    records: Option<&'a [Vec<TraceRecord>]>,
    process: &'a str,
}

/// Trace-event timestamps are microseconds; render ns losslessly as a
/// fixed-point decimal so output is deterministic (no float formatting).
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

impl<'a> PerfettoExport<'a> {
    /// An export of `dag` with no counter tracks.
    pub fn new(dag: &'a RoundDag) -> Self {
        PerfettoExport {
            dag,
            records: None,
            process: "cartcomm",
        }
    }

    /// Also render cumulative pool / plan-cache counter tracks from the
    /// raw per-rank record streams (index = rank), e.g.
    /// [`super::TraceCollector::records`].
    pub fn with_counters(mut self, records: &'a [Vec<TraceRecord>]) -> Self {
        self.records = Some(records);
        self
    }

    /// Process name shown in the UI (default `"cartcomm"`).
    pub fn with_process_name(mut self, name: &'a str) -> Self {
        self.process = name;
        self
    }

    /// Render the trace as a JSON object (`traceEvents` array plus
    /// `displayTimeUnit`), one event per line.
    pub fn to_json(&self) -> String {
        let mut ev: Vec<String> = Vec::new();

        // Metadata: process name, then one thread per rank in rank order.
        ev.push(format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"args\":{{\"name\":\"{}\"}}}}",
            escape(self.process)
        ));
        let ranks = self.dag.ranks().max(self.records.map_or(0, |r| r.len()));
        for rank in 0..ranks {
            ev.push(format!(
                "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{rank},\
                 \"args\":{{\"name\":\"rank {rank}\"}}}}"
            ));
        }

        // One slice per wire on the sender's track, plus the flow arrow
        // to the receiver, in deterministic DAG node order.
        for n in self.dag.nodes() {
            let dur = n.latency_ns();
            ev.push(format!(
                "{{\"name\":\"p{} r{} \\u2192 {}\",\"cat\":\"round\",\"ph\":\"X\",\
                 \"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\
                 \"args\":{{\"phase\":{},\"round\":{},\"to\":{},\"wire_bytes\":{},\"attempts\":{}}}}}",
                n.phase,
                n.round,
                n.dst,
                us(n.depart_ns),
                us(dur),
                n.src,
                n.phase,
                n.round,
                n.dst,
                n.wire_bytes,
                n.attempts,
            ));
            if n.arrive_ns > 0 {
                ev.push(format!(
                    "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"s\",\"id\":{},\
                     \"ts\":{},\"pid\":1,\"tid\":{}}}",
                    n.id,
                    us(n.depart_ns),
                    n.src,
                ));
                ev.push(format!(
                    "{{\"name\":\"wire\",\"cat\":\"wire\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{},\
                     \"ts\":{},\"pid\":1,\"tid\":{}}}",
                    n.id,
                    us(n.arrive_ns),
                    n.dst,
                ));
            }
        }

        // Cumulative counter tracks, one pool and one plan-cache series
        // per rank that has such traffic.
        if let Some(records) = self.records {
            for (rank, recs) in records.iter().enumerate() {
                let (mut ph, mut pm, mut ch, mut cm) = (0u64, 0u64, 0u64, 0u64);
                for rec in recs {
                    match rec.event {
                        TraceEvent::PoolHit { .. } => ph += 1,
                        TraceEvent::PoolMiss { .. } => pm += 1,
                        TraceEvent::PlanCacheHit { .. } => ch += 1,
                        TraceEvent::PlanCacheMiss { .. } => cm += 1,
                        _ => continue,
                    }
                    let (name, args) = match rec.event {
                        TraceEvent::PoolHit { .. } | TraceEvent::PoolMiss { .. } => (
                            format!("rank{rank}/pool"),
                            format!("{{\"hits\":{ph},\"misses\":{pm}}}"),
                        ),
                        _ => (
                            format!("rank{rank}/plan_cache"),
                            format!("{{\"hits\":{ch},\"misses\":{cm}}}"),
                        ),
                    };
                    ev.push(format!(
                        "{{\"name\":\"{name}\",\"ph\":\"C\",\"ts\":{},\"pid\":1,\"args\":{args}}}",
                        us(rec.t_ns),
                    ));
                }
            }
        }

        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
        out.push_str(&ev.join(",\n"));
        out.push_str("\n]}\n");
        out
    }
}

/// Minimal JSON string escaping for the few free-form strings we emit.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::TraceCollector;

    fn sample_records() -> Vec<Vec<TraceRecord>> {
        vec![
            vec![
                TraceRecord {
                    t_ns: 1_000,
                    rank: 0,
                    event: TraceEvent::RoundStart {
                        phase: 0,
                        round: 0,
                        to: 1,
                        from: 1,
                        wire_bytes: 256,
                        attempt: 0,
                    },
                },
                TraceRecord {
                    t_ns: 1_100,
                    rank: 0,
                    event: TraceEvent::PoolHit { bytes: 256 },
                },
            ],
            vec![TraceRecord {
                t_ns: 3_500,
                rank: 1,
                event: TraceEvent::RoundEnd {
                    phase: 0,
                    round: 0,
                    to: 1,
                    from: 0,
                    wire_bytes: 256,
                    attempt: 0,
                },
            }],
        ]
    }

    #[test]
    fn export_contains_tracks_slices_flows_and_counters() {
        let records = sample_records();
        let dag = TraceCollector::from_ranks(records.clone()).build();
        let json = PerfettoExport::new(&dag).with_counters(&records).to_json();

        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
        assert!(json.ends_with("\n]}\n"));
        assert!(json.contains("\"thread_name\""));
        assert!(json.contains("\"name\":\"rank 0\""));
        assert!(json.contains("\"name\":\"rank 1\""));
        // The slice: departs at 1 µs, lasts 2.5 µs, on rank 0's track.
        assert!(json.contains("\"ph\":\"X\",\"ts\":1.000,\"dur\":2.500,\"pid\":1,\"tid\":0"));
        // Flow start and end share the node id.
        assert!(json.contains("\"ph\":\"s\",\"id\":0"));
        assert!(json.contains("\"ph\":\"f\",\"bp\":\"e\",\"id\":0"));
        // Pool counter at 1.1 µs with one cumulative hit.
        assert!(json.contains("\"name\":\"rank0/pool\",\"ph\":\"C\",\"ts\":1.100"));
        assert!(json.contains("{\"hits\":1,\"misses\":0}"));
    }

    #[test]
    fn export_is_deterministic() {
        let records = sample_records();
        let dag = TraceCollector::from_ranks(records.clone()).build();
        let a = PerfettoExport::new(&dag).with_counters(&records).to_json();
        let b = PerfettoExport::new(&dag).with_counters(&records).to_json();
        assert_eq!(a, b);
    }

    #[test]
    fn timestamps_render_as_fixed_point_microseconds() {
        assert_eq!(us(0), "0.000");
        assert_eq!(us(1), "0.001");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(1_000), "1.000");
        assert_eq!(us(1_234_567), "1234.567");
    }

    #[test]
    fn process_name_is_escaped() {
        assert_eq!(escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(escape("tab\tx"), "tab\\u0009x");
    }
}
