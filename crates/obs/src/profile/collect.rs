//! Pairing per-rank event streams into the global round DAG.

use std::collections::HashMap;

use crate::event::{TraceEvent, TraceRecord};

/// One directed wire message of the global round DAG: rank `src` packed
/// and sent `wire_bytes` to rank `dst` in round `round` of phase `phase`.
///
/// `depart_ns` is the sender's `RoundStart` timestamp (wire packed, send
/// issued), `arrive_ns` the receiver's `RoundEnd` timestamp (message
/// matched and scattered). Both are meaningful as a latency only when all
/// ranks share one clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MsgNode {
    /// Dense node id, stable under the DAG's deterministic ordering
    /// (phase, round, src, dst).
    pub id: usize,
    /// Sending rank.
    pub src: usize,
    /// Receiving rank.
    pub dst: usize,
    /// Schedule phase (dimension `k`).
    pub phase: usize,
    /// Round index within the schedule.
    pub round: usize,
    /// Packed wire-message size in bytes.
    pub wire_bytes: usize,
    /// Sender-side `RoundStart` timestamp, ns.
    pub depart_ns: u64,
    /// Receiver-side `RoundEnd` timestamp, ns. Zero until the end event
    /// is paired; retransmit overlays only ever extend it.
    pub arrive_ns: u64,
    /// Delivery attempts observed for this round: `1` for clean runs,
    /// more when `attempt > 0` overlay events landed on the node.
    pub attempts: u32,
}

impl MsgNode {
    /// Observed wire latency `arrive − depart`, ns (saturating: an
    /// unpaired or clock-skewed node reads as zero, never wraps).
    pub fn latency_ns(&self) -> u64 {
        self.arrive_ns.saturating_sub(self.depart_ns)
    }
}

/// The global round dependency DAG of one profiled run: every directed
/// wire message as a [`MsgNode`], in deterministic (phase, round, src,
/// dst) order, plus the pairing residue.
#[derive(Debug, Clone, Default)]
pub struct RoundDag {
    nodes: Vec<MsgNode>,
    ranks: usize,
    /// `RoundStart` events with no matching `RoundEnd` (e.g. a message a
    /// fault plane dropped for good).
    pub unpaired_starts: usize,
    /// `RoundEnd` events with no matching `RoundStart` (should not happen
    /// with symmetric emit sites; kept as a diagnostics counter).
    pub unpaired_ends: usize,
    /// `attempt > 0` overlay events whose base round was never seen.
    pub orphan_overlays: usize,
    /// Records the capture sinks dropped before the collector ever saw
    /// them (ring-buffer overflow, [`crate::RingBufferSink::dropped`]).
    /// A non-zero value means the DAG is an honest *truncation* of the
    /// run, not its entirety.
    pub dropped_records: u64,
}

impl RoundDag {
    /// All wire nodes in (phase, round, src, dst) order.
    pub fn nodes(&self) -> &[MsgNode] {
        &self.nodes
    }

    /// Number of ranks that emitted events (max rank + 1).
    pub fn ranks(&self) -> usize {
        self.ranks
    }

    /// Number of schedule phases seen (max phase + 1).
    pub fn phases(&self) -> usize {
        self.nodes.iter().map(|n| n.phase + 1).max().unwrap_or(0)
    }

    /// Earliest departure timestamp, ns (0 if empty).
    pub fn earliest_depart_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.depart_ns).min().unwrap_or(0)
    }

    /// Latest arrival timestamp, ns (0 if empty).
    pub fn latest_arrive_ns(&self) -> u64 {
        self.nodes.iter().map(|n| n.arrive_ns).max().unwrap_or(0)
    }

    /// Observed makespan: latest arrival − earliest departure, ns.
    pub fn makespan_ns(&self) -> u64 {
        self.latest_arrive_ns()
            .saturating_sub(self.earliest_depart_ns())
    }

    /// Rounds each rank *sent* — the per-rank observable that Prop. 3.2
    /// predicts as `C = Σ_k C_k` for combining schedules.
    pub fn sends_per_rank(&self) -> Vec<usize> {
        let mut out = vec![0; self.ranks];
        for n in &self.nodes {
            out[n.src] += 1;
        }
        out
    }

    /// Wire bytes each rank sent — Prop. 3.3's `V·m` for alltoall.
    pub fn sent_bytes_per_rank(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.ranks];
        for n in &self.nodes {
            out[n.src] += n.wire_bytes as u64;
        }
        out
    }

    /// Rounds `rank` sent in each phase — the per-phase `C_k` breakdown.
    pub fn phase_rounds(&self, rank: usize) -> Vec<usize> {
        let mut out = vec![0; self.phases()];
        for n in &self.nodes {
            if n.src == rank {
                out[n.phase] += 1;
            }
        }
        out
    }

    /// Total wire bytes on the DAG.
    pub fn total_wire_bytes(&self) -> u64 {
        self.nodes.iter().map(|n| n.wire_bytes as u64).sum()
    }

    /// `(wire_bytes, latency_ns)` samples of every paired node — the raw
    /// material for [`crate::AlphaBetaFit`].
    pub fn latency_samples(&self) -> Vec<(u64, u64)> {
        self.nodes
            .iter()
            .filter(|n| n.arrive_ns > 0)
            .map(|n| (n.wire_bytes as u64, n.latency_ns()))
            .collect()
    }
}

/// Accumulates the drained per-rank [`TraceRecord`] streams of one run
/// and pairs them into a [`RoundDag`].
///
/// Pairing key: `(phase, round, src, dst)`, where a sender-side
/// `RoundStart` contributes `(rec.rank → event.to)` and a receiver-side
/// `RoundEnd` contributes `(event.from → rec.rank)`. Because isomorphic
/// schedules give every rank the same round sequence, the key is unique
/// per wire message within a run. Events with `attempt > 0` are overlay
/// edges of an existing round: they bump the node's attempt count and
/// extend its arrival, but never create nodes.
#[derive(Debug, Default)]
pub struct TraceCollector {
    per_rank: Vec<Vec<TraceRecord>>,
    dropped: u64,
}

impl TraceCollector {
    /// An empty collector.
    pub fn new() -> Self {
        TraceCollector::default()
    }

    /// A collector over already-drained per-rank record vectors (index =
    /// rank).
    pub fn from_ranks(per_rank: Vec<Vec<TraceRecord>>) -> Self {
        TraceCollector {
            per_rank,
            dropped: 0,
        }
    }

    /// A collector over one interleaved record stream (e.g. a
    /// `SimTracer`'s single sink, where all simulated ranks share one
    /// ring): records are bucketed by their `rank` field.
    pub fn from_records(records: Vec<TraceRecord>) -> Self {
        let mut c = TraceCollector::new();
        for rec in records {
            c.add_rank(rec.rank, vec![rec]);
        }
        c
    }

    /// Add (or extend) rank `rank`'s drained records.
    pub fn add_rank(&mut self, rank: usize, records: Vec<TraceRecord>) {
        if self.per_rank.len() <= rank {
            self.per_rank.resize_with(rank + 1, Vec::new);
        }
        self.per_rank[rank].extend(records);
    }

    /// The collected per-rank streams (index = rank), e.g. for counter
    /// tracks in [`crate::PerfettoExport`].
    pub fn records(&self) -> &[Vec<TraceRecord>] {
        &self.per_rank
    }

    /// Note `n` records lost before collection (drained from a capture
    /// sink's [`crate::RingBufferSink::dropped`] counter). Accumulates
    /// across calls and is surfaced as [`RoundDag::dropped_records`], so
    /// overflowed live captures report honest truncation.
    pub fn note_dropped(&mut self, n: u64) {
        self.dropped += n;
    }

    /// Total records noted as dropped before collection.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Pair the collected streams into the global round DAG.
    pub fn build(&self) -> RoundDag {
        // (phase, round, src, dst) → index into `nodes`.
        let mut index: HashMap<(usize, usize, usize, usize), usize> = HashMap::new();
        let mut nodes: Vec<MsgNode> = Vec::new();
        let mut unpaired_ends = 0usize;
        let mut orphan_overlays = 0usize;
        let mut ranks = self.per_rank.len();

        // First pass: base RoundStart events mint the nodes.
        for recs in &self.per_rank {
            for rec in recs {
                if let TraceEvent::RoundStart {
                    phase,
                    round,
                    to,
                    wire_bytes,
                    attempt: 0,
                    ..
                } = rec.event
                {
                    let key = (phase, round, rec.rank, to);
                    let idx = *index.entry(key).or_insert_with(|| {
                        nodes.push(MsgNode {
                            id: 0, // assigned after sorting
                            src: rec.rank,
                            dst: to,
                            phase,
                            round,
                            wire_bytes,
                            depart_ns: rec.t_ns,
                            arrive_ns: 0,
                            attempts: 0,
                        });
                        nodes.len() - 1
                    });
                    // Duplicate base starts (can't happen with the shipped
                    // executors) keep the earliest departure.
                    nodes[idx].depart_ns = nodes[idx].depart_ns.min(rec.t_ns);
                    nodes[idx].attempts = nodes[idx].attempts.max(1);
                    ranks = ranks.max(rec.rank + 1).max(to + 1);
                }
            }
        }

        // Second pass: RoundEnd events complete nodes; attempt > 0 events
        // of either kind overlay onto their base node.
        for recs in &self.per_rank {
            for rec in recs {
                match rec.event {
                    TraceEvent::RoundEnd {
                        phase,
                        round,
                        from,
                        attempt,
                        ..
                    } => {
                        let key = (phase, round, from, rec.rank);
                        match index.get(&key) {
                            Some(&idx) => {
                                let n = &mut nodes[idx];
                                n.arrive_ns = n.arrive_ns.max(rec.t_ns);
                                n.attempts = n.attempts.max(attempt + 1);
                            }
                            None if attempt > 0 => orphan_overlays += 1,
                            None => unpaired_ends += 1,
                        }
                    }
                    TraceEvent::RoundStart {
                        phase,
                        round,
                        to,
                        attempt,
                        ..
                    } if attempt > 0 => {
                        let key = (phase, round, rec.rank, to);
                        match index.get(&key) {
                            Some(&idx) => {
                                nodes[idx].attempts = nodes[idx].attempts.max(attempt + 1)
                            }
                            None => orphan_overlays += 1,
                        }
                    }
                    _ => {}
                }
            }
        }

        let unpaired_starts = nodes.iter().filter(|n| n.arrive_ns == 0).count();

        nodes.sort_by_key(|n| (n.phase, n.round, n.src, n.dst));
        for (id, n) in nodes.iter_mut().enumerate() {
            n.id = id;
        }

        RoundDag {
            nodes,
            ranks,
            unpaired_starts,
            unpaired_ends,
            orphan_overlays,
            dropped_records: self.dropped,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn start(
        t_ns: u64,
        rank: usize,
        phase: usize,
        round: usize,
        to: usize,
        bytes: usize,
    ) -> TraceRecord {
        TraceRecord {
            t_ns,
            rank,
            event: TraceEvent::RoundStart {
                phase,
                round,
                to,
                from: usize::MAX,
                wire_bytes: bytes,
                attempt: 0,
            },
        }
    }

    fn end(
        t_ns: u64,
        rank: usize,
        phase: usize,
        round: usize,
        from: usize,
        bytes: usize,
    ) -> TraceRecord {
        TraceRecord {
            t_ns,
            rank,
            event: TraceEvent::RoundEnd {
                phase,
                round,
                to: rank,
                from,
                wire_bytes: bytes,
                attempt: 0,
            },
        }
    }

    #[test]
    fn pairs_start_and_end_across_ranks() {
        // 0 → 1 in round 0, 1 → 0 in round 1 (a 2-rank exchange).
        let dag = TraceCollector::from_ranks(vec![
            vec![start(10, 0, 0, 0, 1, 64), end(95, 0, 0, 1, 1, 64)],
            vec![start(12, 1, 0, 1, 0, 64), end(80, 1, 0, 0, 0, 64)],
        ])
        .build();

        assert_eq!(dag.nodes().len(), 2);
        assert_eq!(dag.unpaired_starts, 0);
        assert_eq!(dag.unpaired_ends, 0);
        let a = dag.nodes()[0]; // round 0: 0 → 1
        assert_eq!((a.src, a.dst, a.depart_ns, a.arrive_ns), (0, 1, 10, 80));
        assert_eq!(a.latency_ns(), 70);
        assert_eq!(a.attempts, 1);
        let b = dag.nodes()[1]; // round 1: 1 → 0
        assert_eq!((b.src, b.dst, b.depart_ns, b.arrive_ns), (1, 0, 12, 95));
        assert_eq!(dag.makespan_ns(), 95 - 10);
        assert_eq!(dag.ranks(), 2);
        assert_eq!(dag.sends_per_rank(), vec![1, 1]);
        assert_eq!(dag.sent_bytes_per_rank(), vec![64, 64]);
        assert_eq!(dag.phase_rounds(0), vec![1]);
    }

    #[test]
    fn node_ids_are_deterministic() {
        // Same events in scrambled per-rank order yield identical DAGs.
        let r0 = vec![start(10, 0, 0, 0, 1, 8), start(20, 0, 1, 1, 1, 8)];
        let r1 = vec![end(15, 1, 0, 0, 0, 8), end(25, 1, 1, 1, 0, 8)];
        let fwd = TraceCollector::from_ranks(vec![r0.clone(), r1.clone()]).build();
        let rev = TraceCollector::from_ranks(vec![
            r0.into_iter().rev().collect(),
            r1.into_iter().rev().collect(),
        ])
        .build();
        assert_eq!(fwd.nodes(), rev.nodes());
        assert_eq!(fwd.nodes()[0].id, 0);
        assert_eq!(fwd.nodes()[1].id, 1);
        assert_eq!(fwd.phases(), 2);
    }

    #[test]
    fn unmatched_start_is_counted_not_paired() {
        let dag = TraceCollector::from_ranks(vec![vec![start(5, 0, 0, 0, 1, 32)], vec![]]).build();
        assert_eq!(dag.nodes().len(), 1);
        assert_eq!(dag.unpaired_starts, 1);
        assert_eq!(dag.nodes()[0].arrive_ns, 0);
        assert!(dag.latency_samples().is_empty());
    }

    #[test]
    fn retransmits_overlay_instead_of_minting_rounds() {
        let mut retx_start = start(50, 0, 0, 0, 1, 64);
        if let TraceEvent::RoundStart { attempt, .. } = &mut retx_start.event {
            *attempt = 1;
        }
        let mut retx_end = end(90, 1, 0, 0, 0, 64);
        if let TraceEvent::RoundEnd { attempt, .. } = &mut retx_end.event {
            *attempt = 1;
        }
        let dag = TraceCollector::from_ranks(vec![
            vec![start(10, 0, 0, 0, 1, 64), retx_start],
            vec![end(40, 1, 0, 0, 0, 64), retx_end],
        ])
        .build();

        // One node: the retransmit extended it rather than adding edges.
        assert_eq!(dag.nodes().len(), 1);
        let n = dag.nodes()[0];
        assert_eq!(n.attempts, 2);
        assert_eq!(n.depart_ns, 10);
        assert_eq!(n.arrive_ns, 90, "overlay end extends the arrival");
        assert_eq!(dag.orphan_overlays, 0);
    }

    #[test]
    fn orphan_overlay_is_counted() {
        let mut retx = start(50, 0, 0, 7, 1, 64);
        if let TraceEvent::RoundStart { attempt, .. } = &mut retx.event {
            *attempt = 3;
        }
        let dag = TraceCollector::from_ranks(vec![vec![retx]]).build();
        assert_eq!(dag.nodes().len(), 0);
        assert_eq!(dag.orphan_overlays, 1);
    }

    #[test]
    fn dropped_records_flow_into_the_dag() {
        let mut c = TraceCollector::from_ranks(vec![
            vec![start(10, 0, 0, 0, 1, 64)],
            vec![end(80, 1, 0, 0, 0, 64)],
        ]);
        assert_eq!(c.dropped(), 0);
        c.note_dropped(3);
        c.note_dropped(4);
        let dag = c.build();
        assert_eq!(dag.dropped_records, 7);
        assert_eq!(dag.nodes().len(), 1, "truncation does not affect pairing");
    }

    #[test]
    fn add_rank_extends_sparse_streams() {
        let mut c = TraceCollector::new();
        c.add_rank(2, vec![start(1, 2, 0, 0, 0, 16)]);
        c.add_rank(0, vec![end(9, 0, 0, 0, 2, 16)]);
        let dag = c.build();
        assert_eq!(dag.nodes().len(), 1);
        assert_eq!(dag.ranks(), 3);
        assert_eq!(dag.nodes()[0].latency_ns(), 8);
    }
}
