//! Least-squares α-β fitting of observed round latencies.

use super::collect::RoundDag;

/// A linear-cost-model fit `latency ≈ α̂ + β̂·bytes` over observed
/// `(wire_bytes, latency_ns)` samples — the empirical counterpart of the
/// α-β model the paper's cut-off analysis (Prop. 3.2 discussion) assumes.
///
/// `degenerate` flags fits that carry no information: fewer than two
/// distinct message sizes (the slope is unconstrained) or a non-positive
/// slope (noise swamped the size dependence). Degenerate fits still
/// report the raw coefficients but refuse to produce a cut-off.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AlphaBetaFit {
    /// Fitted latency intercept α̂, ns.
    pub alpha_ns: f64,
    /// Fitted per-byte cost β̂, ns/byte.
    pub beta_ns_per_byte: f64,
    /// Coefficient of determination of the fit.
    pub r2: f64,
    /// Number of samples fitted.
    pub samples: usize,
    /// Number of distinct message sizes among the samples.
    pub distinct_sizes: usize,
    /// Whether the fit is unusable for cut-off analysis.
    pub degenerate: bool,
}

impl AlphaBetaFit {
    /// Ordinary least squares over `(bytes, latency_ns)` samples.
    pub fn fit(samples: &[(u64, u64)]) -> AlphaBetaFit {
        let n = samples.len();
        let mut sizes: Vec<u64> = samples.iter().map(|&(b, _)| b).collect();
        sizes.sort_unstable();
        sizes.dedup();
        let distinct = sizes.len();

        if n < 2 || distinct < 2 {
            return AlphaBetaFit {
                alpha_ns: samples.first().map(|&(_, y)| y as f64).unwrap_or(0.0),
                beta_ns_per_byte: 0.0,
                r2: 0.0,
                samples: n,
                distinct_sizes: distinct,
                degenerate: true,
            };
        }

        let nf = n as f64;
        let mean_x = samples.iter().map(|&(x, _)| x as f64).sum::<f64>() / nf;
        let mean_y = samples.iter().map(|&(_, y)| y as f64).sum::<f64>() / nf;
        let mut sxx = 0.0;
        let mut sxy = 0.0;
        let mut syy = 0.0;
        for &(x, y) in samples {
            let dx = x as f64 - mean_x;
            let dy = y as f64 - mean_y;
            sxx += dx * dx;
            sxy += dx * dy;
            syy += dy * dy;
        }

        let beta = sxy / sxx; // sxx > 0: distinct >= 2
        let alpha = mean_y - beta * mean_x;
        let r2 = if syy > 0.0 {
            (sxy * sxy) / (sxx * syy)
        } else {
            1.0
        };

        AlphaBetaFit {
            alpha_ns: alpha,
            beta_ns_per_byte: beta,
            r2,
            samples: n,
            distinct_sizes: distinct,
            degenerate: !(beta > 0.0 && beta.is_finite() && alpha.is_finite()),
        }
    }

    /// Fit over every paired node of `dag`.
    pub fn from_dag(dag: &RoundDag) -> AlphaBetaFit {
        Self::fit(&dag.latency_samples())
    }

    /// Fit over the *per-size mean* latencies of `samples` — collapses
    /// repeated measurements of each message size into one point first,
    /// which weights every size equally regardless of how many rounds
    /// used it (threaded m-sweeps measure small sizes far more often).
    pub fn fit_size_means(samples: &[(u64, u64)]) -> AlphaBetaFit {
        let mut sorted: Vec<(u64, u64)> = samples.to_vec();
        sorted.sort_unstable();
        let mut means: Vec<(u64, u64)> = Vec::new();
        let mut i = 0;
        while i < sorted.len() {
            let size = sorted[i].0;
            let mut sum = 0u128;
            let mut cnt = 0u128;
            while i < sorted.len() && sorted[i].0 == size {
                sum += sorted[i].1 as u128;
                cnt += 1;
                i += 1;
            }
            means.push((size, (sum / cnt) as u64));
        }
        let mut fit = Self::fit(&means);
        fit.samples = samples.len();
        fit
    }

    /// Predicted latency for a `bytes`-sized message, ns.
    pub fn predict_ns(&self, bytes: u64) -> f64 {
        self.alpha_ns + self.beta_ns_per_byte * bytes as f64
    }

    /// The measured cut-off block size `m* = (α̂/β̂)·ratio`, where `ratio`
    /// is the schedule's `(t−C)/(V−t)` (Prop. 3.2 discussion): below `m*`
    /// message combining wins, above it the trivial algorithm does.
    /// `None` for degenerate fits or non-finite/non-positive ratios.
    pub fn cutoff_m_bytes(&self, ratio: f64) -> Option<f64> {
        if self.degenerate || !ratio.is_finite() || ratio <= 0.0 {
            return None;
        }
        let m = self.alpha_ns.max(0.0) / self.beta_ns_per_byte * ratio;
        m.is_finite().then_some(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_linear_data_is_recovered() {
        // y = 500 + 2x, exactly.
        let samples: Vec<(u64, u64)> = (1..=10).map(|i| (i * 100, 500 + 2 * i * 100)).collect();
        let fit = AlphaBetaFit::fit(&samples);
        assert!(!fit.degenerate);
        assert!(
            (fit.alpha_ns - 500.0).abs() < 1e-6,
            "alpha {}",
            fit.alpha_ns
        );
        assert!((fit.beta_ns_per_byte - 2.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-12);
        assert!((fit.predict_ns(1000) - 2500.0).abs() < 1e-6);
    }

    #[test]
    fn cutoff_scales_with_ratio() {
        let samples: Vec<(u64, u64)> = (1..=4).map(|i| (i * 10, 1000 + i * 10)).collect();
        let fit = AlphaBetaFit::fit(&samples);
        // α = 1000, β = 1 → m* = 1000·ratio.
        let m = fit.cutoff_m_bytes(0.5).unwrap();
        assert!((m - 500.0).abs() < 1e-6, "m* {m}");
        assert_eq!(fit.cutoff_m_bytes(0.0), None);
        assert_eq!(fit.cutoff_m_bytes(f64::NAN), None);
    }

    #[test]
    fn single_size_is_degenerate() {
        let fit = AlphaBetaFit::fit(&[(64, 100), (64, 120), (64, 110)]);
        assert!(fit.degenerate);
        assert_eq!(fit.distinct_sizes, 1);
        assert_eq!(fit.cutoff_m_bytes(1.0), None);
    }

    #[test]
    fn negative_slope_is_degenerate() {
        let fit = AlphaBetaFit::fit(&[(10, 1000), (1000, 100)]);
        assert!(fit.degenerate);
        assert!(fit.beta_ns_per_byte < 0.0);
    }

    #[test]
    fn empty_and_singleton_are_degenerate() {
        assert!(AlphaBetaFit::fit(&[]).degenerate);
        assert!(AlphaBetaFit::fit(&[(8, 42)]).degenerate);
    }

    #[test]
    fn size_means_weight_sizes_equally() {
        // 100 noisy samples at x=10 and a single sample at x=1000, on the
        // exact line y = 100 + x. Plain OLS is dominated by the x=10
        // cluster's noise; per-size means recover the line exactly.
        let mut samples: Vec<(u64, u64)> = Vec::new();
        for i in 0..100 {
            // mean-preserving jitter: pairs (−5, +5) around y=110
            let y = if i % 2 == 0 { 105 } else { 115 };
            samples.push((10, y));
        }
        samples.push((1000, 1100));
        let fit = AlphaBetaFit::fit_size_means(&samples);
        assert!(!fit.degenerate);
        assert!((fit.beta_ns_per_byte - 1.0).abs() < 1e-9);
        assert!((fit.alpha_ns - 100.0).abs() < 1e-6);
        assert_eq!(fit.samples, 101);
        assert_eq!(fit.distinct_sizes, 2);
    }
}
