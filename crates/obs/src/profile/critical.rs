//! Critical-path extraction, per-phase skew, and straggler ranking.

use super::collect::{MsgNode, RoundDag};

/// Per-phase completion spread: when each rank last finished a round of
/// the phase, reduced to the earliest and latest finisher.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PhaseSkew {
    /// Schedule phase (dimension `k`).
    pub phase: usize,
    /// Earliest per-rank last arrival in this phase, ns.
    pub first_done_ns: u64,
    /// Latest per-rank last arrival in this phase, ns.
    pub last_done_ns: u64,
}

impl PhaseSkew {
    /// The spread `last − first`, ns: how long the fastest rank idles
    /// before the slowest rank clears the phase.
    pub fn skew_ns(&self) -> u64 {
        self.last_done_ns.saturating_sub(self.first_done_ns)
    }
}

/// One rank's last observed activity, for straggler ranking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankActivity {
    /// The rank.
    pub rank: usize,
    /// Timestamp of its last departure or arrival, ns.
    pub last_ns: u64,
}

/// The chain of wire messages bounding a run's makespan, with the skew
/// and straggler diagnostics that explain *why* it is the bound.
///
/// The walk is timestamp-driven rather than model-driven, so it works
/// identically on DES traces (exact model times) and threaded traces
/// (monotonic shared-clock times): starting from the globally last
/// arrival, each step moves to the latest-finishing constraint of the
/// current node's sender — either the wire that arrived *into* the sender
/// before it departed (a cross-rank dependency) or the sender's previous
/// departure (send-port serialization).
#[derive(Debug, Clone)]
pub struct CriticalPath {
    /// The chain, in chronological order. Each element is a [`MsgNode`]
    /// copied out of the DAG.
    pub steps: Vec<MsgNode>,
    /// Observed makespan of the whole DAG, ns.
    pub makespan_ns: u64,
    /// Per-phase completion spread, one entry per phase in phase order.
    pub skew: Vec<PhaseSkew>,
    /// Ranks ordered by last activity, latest (the stragglers) first.
    pub stragglers: Vec<RankActivity>,
}

impl CriticalPath {
    /// Extract the critical path of `dag`. Empty DAGs yield an empty
    /// path with zero makespan.
    pub fn of(dag: &RoundDag) -> CriticalPath {
        let nodes = dag.nodes();
        let mut steps: Vec<MsgNode> = Vec::new();

        // Seed: the globally last arrival (ties: lowest id, so the result
        // is deterministic).
        let mut cur = nodes
            .iter()
            .filter(|n| n.arrive_ns > 0)
            .max_by(|a, b| a.arrive_ns.cmp(&b.arrive_ns).then(b.id.cmp(&a.id)));

        let mut visited = vec![false; nodes.len()];
        while let Some(n) = cur {
            if visited[n.id] {
                break; // equal-timestamp cycle guard
            }
            visited[n.id] = true;
            steps.push(*n);

            // What kept `n.src` busy until `n.depart_ns`? The latest
            // constraint wins; a wire arrival beats a same-time local
            // departure (the cross-rank edge is the interesting one).
            let mut best: Option<(&MsgNode, u64, bool)> = None;
            for c in nodes {
                let (t, is_wire) =
                    if c.dst == n.src && c.arrive_ns > 0 && c.arrive_ns <= n.depart_ns {
                        (c.arrive_ns, true)
                    } else if c.src == n.src && c.depart_ns < n.depart_ns {
                        (c.depart_ns, false)
                    } else {
                        continue;
                    };
                if visited[c.id] {
                    continue;
                }
                let better = match best {
                    None => true,
                    Some((b, bt, bw)) => {
                        (t, is_wire, std::cmp::Reverse(c.id)) > (bt, bw, std::cmp::Reverse(b.id))
                    }
                };
                if better {
                    best = Some((c, t, is_wire));
                }
            }
            cur = best.map(|(c, _, _)| c);
        }
        steps.reverse();

        CriticalPath {
            steps,
            makespan_ns: dag.makespan_ns(),
            skew: phase_skew(dag),
            stragglers: stragglers(dag),
        }
    }

    /// The ranks the path passes through, in chronological order
    /// (`src` of the first step, then each step's `dst`).
    pub fn rank_chain(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.steps.len() + 1);
        if let Some(first) = self.steps.first() {
            out.push(first.src);
        }
        out.extend(self.steps.iter().map(|s| s.dst));
        out
    }

    /// Sum of the path's wire latencies, ns — the lower bound the chain
    /// itself imposes on the makespan.
    pub fn path_latency_ns(&self) -> u64 {
        self.steps.iter().map(|s| s.latency_ns()).sum()
    }
}

fn phase_skew(dag: &RoundDag) -> Vec<PhaseSkew> {
    let phases = dag.phases();
    let ranks = dag.ranks();
    let mut out = Vec::with_capacity(phases);
    for phase in 0..phases {
        // Per-rank last arrival within the phase.
        let mut last = vec![0u64; ranks];
        for n in dag.nodes() {
            if n.phase == phase && n.arrive_ns > 0 {
                last[n.dst] = last[n.dst].max(n.arrive_ns);
            }
        }
        let done: Vec<u64> = last.into_iter().filter(|&t| t > 0).collect();
        let (first, lastt) = match (done.iter().min(), done.iter().max()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0, 0),
        };
        out.push(PhaseSkew {
            phase,
            first_done_ns: first,
            last_done_ns: lastt,
        });
    }
    out
}

fn stragglers(dag: &RoundDag) -> Vec<RankActivity> {
    let mut last = vec![0u64; dag.ranks()];
    for n in dag.nodes() {
        last[n.src] = last[n.src].max(n.depart_ns);
        if n.arrive_ns > 0 {
            last[n.dst] = last[n.dst].max(n.arrive_ns);
        }
    }
    let mut out: Vec<RankActivity> = last
        .into_iter()
        .enumerate()
        .map(|(rank, last_ns)| RankActivity { rank, last_ns })
        .collect();
    // Latest activity first; ties broken by rank for determinism.
    out.sort_by(|a, b| b.last_ns.cmp(&a.last_ns).then(a.rank.cmp(&b.rank)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{TraceEvent, TraceRecord};
    use crate::profile::TraceCollector;

    fn wire(
        phase: usize,
        round: usize,
        src: usize,
        dst: usize,
        depart: u64,
        arrive: u64,
        bytes: usize,
    ) -> [TraceRecord; 2] {
        [
            TraceRecord {
                t_ns: depart,
                rank: src,
                event: TraceEvent::RoundStart {
                    phase,
                    round,
                    to: dst,
                    from: usize::MAX,
                    wire_bytes: bytes,
                    attempt: 0,
                },
            },
            TraceRecord {
                t_ns: arrive,
                rank: dst,
                event: TraceEvent::RoundEnd {
                    phase,
                    round,
                    to: dst,
                    from: src,
                    wire_bytes: bytes,
                    attempt: 0,
                },
            },
        ]
    }

    fn dag_of(wires: &[[TraceRecord; 2]]) -> RoundDag {
        let mut c = TraceCollector::new();
        for [s, e] in wires {
            c.add_rank(s.rank, vec![*s]);
            c.add_rank(e.rank, vec![*e]);
        }
        c.build()
    }

    #[test]
    fn chain_of_dependent_wires_is_the_path() {
        // 0 →(0..10) 1 →(10..25) 2 →(25..45) 3, plus an early unrelated
        // wire 3 → 0 that finishes long before the chain.
        let dag = dag_of(&[
            wire(0, 0, 0, 1, 0, 10, 100),
            wire(1, 1, 1, 2, 10, 25, 100),
            wire(2, 2, 2, 3, 25, 45, 100),
            wire(0, 3, 3, 0, 0, 5, 100),
        ]);
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.makespan_ns, 45);
        assert_eq!(cp.rank_chain(), vec![0, 1, 2, 3]);
        assert_eq!(cp.steps.len(), 3);
        assert_eq!(cp.path_latency_ns(), 10 + 15 + 20);
    }

    #[test]
    fn send_port_serialization_joins_the_path() {
        // Rank 0 sends twice back-to-back; the second send's constraint
        // is the first departure (no wire ever arrives into rank 0).
        let dag = dag_of(&[wire(0, 0, 0, 1, 0, 10, 64), wire(0, 1, 0, 2, 10, 30, 64)]);
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.makespan_ns, 30);
        assert_eq!(cp.steps.len(), 2);
        assert_eq!(cp.rank_chain(), vec![0, 1, 2]);
    }

    #[test]
    fn skew_and_stragglers_are_ranked() {
        // Phase 0: rank 1 done at 10, rank 2 done at 40 → skew 30.
        let dag = dag_of(&[wire(0, 0, 0, 1, 0, 10, 8), wire(0, 1, 0, 2, 0, 40, 8)]);
        let cp = CriticalPath::of(&dag);
        assert_eq!(cp.skew.len(), 1);
        assert_eq!(cp.skew[0].skew_ns(), 30);
        assert_eq!(cp.skew[0].first_done_ns, 10);
        assert_eq!(cp.skew[0].last_done_ns, 40);
        // Straggler order: rank 2 (t=40), then 1 (t=10), then 0 (t=0).
        let order: Vec<usize> = cp.stragglers.iter().map(|s| s.rank).collect();
        assert_eq!(order, vec![2, 1, 0]);
    }

    #[test]
    fn empty_dag_yields_empty_path() {
        let dag = TraceCollector::new().build();
        let cp = CriticalPath::of(&dag);
        assert!(cp.steps.is_empty());
        assert_eq!(cp.makespan_ns, 0);
        assert!(cp.skew.is_empty());
        assert!(cp.stragglers.is_empty());
    }
}
