//! Cross-rank profiling: the global round DAG and its analyses.
//!
//! The executors' per-rank [`crate::TraceEvent`] streams already carry
//! everything the paper's evaluation (§4) asks about — each
//! `RoundStart`/`RoundEnd` pair names the phase, the round index within
//! the schedule, both peer ranks, and the exact wire bytes. What no
//! single rank can answer is the *cross-rank* questions: which rank/round
//! chain bounds the makespan, how observed round latency scales with
//! message size, and whether the measured cut-off block size matches
//! Prop. 3.2's `m < (α/β)·(t−C)/(V−t)`.
//!
//! This module answers them after the run, from the drained sinks:
//!
//! * [`TraceCollector`] pairs sender-side `RoundStart` events with
//!   receiver-side `RoundEnd` events across ranks (key: phase, round,
//!   src, dst) into directed wire nodes and assembles the global
//!   [`RoundDag`]. Retransmitted rounds (`attempt > 0`, PR 4's reliable
//!   mode) overlay onto their base node — they extend its completion and
//!   bump its attempt count, they never mint new rounds.
//! * [`CriticalPath`] walks the DAG backwards from the last arrival,
//!   alternating wire hops and same-rank serialization hops, yielding the
//!   chain that bounds the makespan, plus per-phase skew ([`PhaseSkew`])
//!   and a straggler ranking.
//! * [`AlphaBetaFit`] least-squares-fits observed round latency against
//!   wire bytes into `α̂ + β̂·bytes`, the linear cost model the paper's
//!   cut-off analysis assumes, and converts the fit into a measured
//!   cut-off `m*` given a schedule's `(t−C)/(V−t)` ratio.
//! * [`PerfettoExport`] renders the DAG as Chrome trace-event JSON — one
//!   track per rank, flow arrows for wires, counter tracks for pool and
//!   plan-cache traffic — loadable in `ui.perfetto.dev`.
//!
//! Timestamps are only cross-rank comparable if every rank's [`crate::Obs`]
//! shares one [`crate::Clock`] — the DES tracer does this by construction,
//! threaded runs get it from `Universe::builder(p).profiled(c)`.

mod collect;
mod critical;
mod fit;
mod perfetto;

pub use collect::{MsgNode, RoundDag, TraceCollector};
pub use critical::{CriticalPath, PhaseSkew, RankActivity};
pub use fit::AlphaBetaFit;
pub use perfetto::PerfettoExport;
