//! Structured observability for the cartesian-collectives stack.
//!
//! The paper's analytical quantities — the round count `C = Σ_k C_k`
//! (Prop. 3.2), the communication volume `V = Σ_i z_i` (Prop. 3.3), and
//! the cut-off block size `m < (α/β)·(t−C)/(V−t)` — are exactly what a
//! communication stack must *observe* to pick algorithms at runtime. This
//! crate is the substrate for that: every communicator carries an [`Obs`]
//! handle through which the executors report what actually happened, in
//! the same units the schedule constructions predict.
//!
//! Three layers, each usable on its own:
//!
//! * **[`MetricsRegistry`]** — always-on relaxed atomic counters (rounds,
//!   wire bytes, matched messages, pack spans, pool and plan-cache
//!   traffic) plus `stats::histogram` latency/size distributions that are
//!   only touched while tracing is enabled. A [`MetricsSnapshot`] is a
//!   plain-data copy with text-table and JSON renderings.
//! * **[`TraceEvent`]/[`TraceSink`]** — typed round-level events
//!   ([`TraceEvent::RoundStart`]/[`TraceEvent::RoundEnd`] with the phase
//!   dimension, peer ranks, and wire bytes; [`TraceEvent::PackSpan`];
//!   pool and plan-cache hits/misses; [`TraceEvent::ExchangeMatched`])
//!   delivered to a pluggable sink. [`RingBufferSink`] is the shipped
//!   implementation: a bounded in-memory ring with JSON and text-table
//!   exporters.
//! * **[`Clock`]** — pluggable timestamps: [`MonotonicClock`] for real
//!   threaded runs, [`ManualClock`] for simulated runs where the DES
//!   drives time (`cartcomm-sim` sets it to each event's model time).
//! * **[`profile`]** — post-run cross-rank analysis: [`TraceCollector`]
//!   pairs every rank's `RoundStart`/`RoundEnd` stream into a global
//!   [`RoundDag`] of send→recv wires; [`CriticalPath`] extracts the
//!   rank/round chain bounding the makespan plus per-phase skew and
//!   straggler ranking; [`AlphaBetaFit`] least-squares-fits round latency
//!   against wire bytes into α̂/β̂ and the paper's cut-off `m*`;
//!   [`PerfettoExport`] renders the DAG as Chrome trace-event JSON.
//!
//! # Disabled-path guarantees
//!
//! Tracing is off until a sink is attached. With tracing disabled, the
//! per-event cost on the hot path is **one relaxed atomic load and a
//! predictable branch** — no clock read, no event construction, no lock.
//! The registry's plain counters stay on unconditionally; they are the
//! same cost class as the pre-existing pool/fabric telemetry (a relaxed
//! `fetch_add`), which the compiled-execute criterion bench
//! (`obs_overhead`) pins at well under the 2 % regression budget.

mod clock;
mod event;
mod metrics;
mod obs;
pub mod openmetrics;
pub mod profile;
mod sink;
pub mod tenant;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use event::{FaultActionKind, ServeStageKind, TraceEvent, TraceRecord};
pub use metrics::{MetricsDelta, MetricsRegistry, MetricsSnapshot};
pub use obs::Obs;
pub use openmetrics::OpenMetricsWriter;
pub use profile::{
    AlphaBetaFit, CriticalPath, MsgNode, PerfettoExport, PhaseSkew, RoundDag, TraceCollector,
};
pub use sink::{RingBufferSink, TraceSink};
pub use tenant::{StageDist, TenantRegistry, TenantStats};
