//! Per-tenant attribution of collective traffic — the observability side
//! of serving many clients from one resident process.
//!
//! A serving layer (`cartserve`) executes jobs from independent tenants
//! on shared rank threads. Each rank's [`MetricsRegistry`](crate::MetricsRegistry)
//! keeps counting globally; what serving adds is *attribution*: scope the
//! counters of each job execution as a [`MetricsDelta`] and fold it into
//! that tenant's [`TenantStats`] here, together with the schedule's
//! analytical predictions (`C` rounds per rank, Prop. 3.2; `V·m` wire
//! bytes per rank, Prop. 3.3). The registry then renders the
//! observed-vs-predicted C/V table per tenant — the same accounting the
//! profiler reports per run, aggregated per client instead.
//!
//! The registry is shared across rank threads and the server's control
//! plane, so it is internally synchronized; tenants are kept in first-seen
//! order for stable rendering.

use cartcomm_stats::Histogram;
use parking_lot::Mutex;

use crate::metrics::{MetricsDelta, MetricsSnapshot};

/// Number of serving-layer lifecycle stages with per-tenant latency
/// distributions: queue wait, coalesce delay, execute, reply.
pub const STAGE_COUNT: usize = 4;

/// Stable stage names, in stamp order — drives exporter labels.
pub const STAGE_NAMES: [&str; STAGE_COUNT] = ["queue", "coalesce", "execute", "reply"];

/// Bins of each stage histogram (log10 of nanoseconds over `[0, 10)`,
/// i.e. 1 ns .. 10 s in half-decade steps).
pub const STAGE_HIST_BINS: usize = 20;

/// One lifecycle stage's latency distribution for one tenant: a log10-ns
/// histogram (shared binning, so registries merge losslessly) plus the
/// exact nanosecond sum for mean/rate math.
#[derive(Debug, Clone, PartialEq)]
pub struct StageDist {
    /// `log10(duration_ns)` histogram over `[0, 10)` with
    /// [`STAGE_HIST_BINS`] bins.
    pub hist: Histogram,
    /// Exact sum of recorded durations, ns.
    pub sum_ns: u64,
}

impl StageDist {
    fn new() -> Self {
        StageDist {
            hist: Histogram::new(0.0, 10.0, STAGE_HIST_BINS),
            sum_ns: 0,
        }
    }

    fn record(&mut self, ns: u64) {
        self.hist.add((ns.max(1) as f64).log10());
        self.sum_ns += ns;
    }
}

impl Default for StageDist {
    fn default() -> Self {
        Self::new()
    }
}

#[derive(Debug, Default)]
struct TenantEntry {
    stats: TenantStats,
    stages: [StageDist; STAGE_COUNT],
}

/// Accumulated traffic and predictions for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Job executions recorded (rank-jobs: one collective on one rank).
    pub jobs: u64,
    /// Analytical round count summed over recorded jobs (`Σ C`).
    pub predicted_rounds: u64,
    /// Analytical wire volume summed over recorded jobs (`Σ V·m` bytes).
    pub predicted_wire_bytes: u64,
    /// Field-wise sum of the recorded per-job metric deltas.
    pub totals: MetricsSnapshot,
}

impl TenantStats {
    /// Observed rounds (`C`): completed communication rounds.
    pub fn observed_rounds(&self) -> u64 {
        self.totals.rounds_completed
    }

    /// Observed wire volume (`V·m`): payload bytes deposited on the wire.
    pub fn observed_wire_bytes(&self) -> u64 {
        self.totals.wire_bytes_sent
    }

    /// Whether observation matches prediction exactly — fault-free
    /// combining executions satisfy this; trivial or faulty runs may not.
    pub fn matches_prediction(&self) -> bool {
        self.observed_rounds() == self.predicted_rounds
            && self.observed_wire_bytes() == self.predicted_wire_bytes
    }
}

/// Named per-tenant accumulation of job deltas and schedule predictions.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    /// First-seen-ordered, so reports are stable across runs.
    tenants: Mutex<Vec<(String, TenantEntry)>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn with_entry<R>(&self, tenant: &str, f: impl FnOnce(&mut TenantEntry) -> R) -> R {
        let mut tenants = self.tenants.lock();
        let entry = match tenants.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, entry)) => entry,
            None => {
                tenants.push((tenant.to_string(), TenantEntry::default()));
                &mut tenants.last_mut().expect("just pushed").1
            }
        };
        f(entry)
    }

    /// Fold one job execution into `tenant`'s stats: the job's scoped
    /// counter traffic plus the schedule's analytical `C` (rounds) and
    /// `V·m` (wire bytes) for that execution. Creates the tenant on first
    /// use.
    pub fn record_job(
        &self,
        tenant: &str,
        predicted_rounds: u64,
        predicted_wire_bytes: u64,
        delta: &MetricsDelta,
    ) {
        self.with_entry(tenant, |entry| {
            entry.stats.jobs += 1;
            entry.stats.predicted_rounds += predicted_rounds;
            entry.stats.predicted_wire_bytes += predicted_wire_bytes;
            entry.stats.totals += **delta;
        });
    }

    /// Fold one job's lifecycle-stage durations (queue wait, coalesce
    /// delay, execute, reply — [`STAGE_NAMES`] order, ns) into `tenant`'s
    /// stage distributions. Creates the tenant on first use.
    pub fn record_stages(&self, tenant: &str, stage_ns: [u64; STAGE_COUNT]) {
        self.with_entry(tenant, |entry| {
            for (dist, ns) in entry.stages.iter_mut().zip(stage_ns) {
                dist.record(ns);
            }
        });
    }

    /// The stats for one tenant, if it has recorded any job.
    pub fn stats(&self, tenant: &str) -> Option<TenantStats> {
        self.tenants
            .lock()
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, entry)| entry.stats)
    }

    /// One tenant's per-stage latency distributions ([`STAGE_NAMES`]
    /// order), if the tenant exists.
    pub fn stages(&self, tenant: &str) -> Option<[StageDist; STAGE_COUNT]> {
        self.tenants
            .lock()
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, entry)| entry.stages.clone())
    }

    /// All tenants with their stats, in first-seen order.
    pub fn all(&self) -> Vec<(String, TenantStats)> {
        self.tenants
            .lock()
            .iter()
            .map(|(name, entry)| (name.clone(), entry.stats))
            .collect()
    }

    /// All tenants with their per-stage latency distributions, in
    /// first-seen order — the exporter's histogram source.
    pub fn all_stages(&self) -> Vec<(String, [StageDist; STAGE_COUNT])> {
        self.tenants
            .lock()
            .iter()
            .map(|(name, entry)| (name.clone(), entry.stages.clone()))
            .collect()
    }

    /// Number of tenants seen.
    pub fn len(&self) -> usize {
        self.tenants.lock().len()
    }

    /// True when no tenant has recorded a job yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.lock().is_empty()
    }

    /// The observed-vs-predicted C/V table, one row per tenant:
    ///
    /// ```text
    /// tenant      jobs   C obs   C pred   V obs (B)   V pred (B)   plan hit/miss
    /// ```
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}\n",
            "tenant", "jobs", "C obs", "C pred", "V obs (B)", "V pred (B)", "plan hit/miss"
        ));
        for (name, s) in self.all() {
            out.push_str(&format!(
                "{:<16} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}\n",
                name,
                s.jobs,
                s.observed_rounds(),
                s.predicted_rounds,
                s.observed_wire_bytes(),
                s.predicted_wire_bytes,
                format!(
                    "{}/{}",
                    s.totals.plan_cache_hits, s.totals.plan_cache_misses
                ),
            ));
        }
        out
    }

    /// The table as a JSON array of per-tenant objects (the wire `stats`
    /// reply of the serving layer).
    pub fn to_json(&self) -> String {
        let rows = self
            .all()
            .iter()
            .map(|(name, s)| {
                format!(
                    concat!(
                        "{{\"tenant\":\"{}\",\"jobs\":{},",
                        "\"observed_rounds\":{},\"predicted_rounds\":{},",
                        "\"observed_wire_bytes\":{},\"predicted_wire_bytes\":{},",
                        "\"plan_cache_hits\":{},\"plan_cache_misses\":{},",
                        "\"metrics\":{}}}"
                    ),
                    name.replace('\\', "\\\\").replace('"', "\\\""),
                    s.jobs,
                    s.observed_rounds(),
                    s.predicted_rounds,
                    s.observed_wire_bytes(),
                    s.predicted_wire_bytes,
                    s.totals.plan_cache_hits,
                    s.totals.plan_cache_misses,
                    s.totals.to_json(),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn delta_of(rounds: u64, bytes: usize, hits: u64) -> MetricsDelta {
        let m = MetricsRegistry::new();
        let before = m.snapshot();
        for _ in 0..rounds {
            m.round_started();
            m.round_completed();
        }
        m.add_wire_sent(bytes);
        for _ in 0..hits {
            m.plan_cache_hit();
        }
        m.delta_since(&before)
    }

    #[test]
    fn records_fold_per_tenant() {
        let reg = TenantRegistry::new();
        reg.record_job("a", 4, 100, &delta_of(4, 100, 0));
        reg.record_job("a", 4, 100, &delta_of(4, 100, 1));
        reg.record_job("b", 6, 64, &delta_of(7, 70, 0));
        assert_eq!(reg.len(), 2);

        let a = reg.stats("a").unwrap();
        assert_eq!(a.jobs, 2);
        assert_eq!(a.observed_rounds(), 8);
        assert_eq!(a.predicted_rounds, 8);
        assert_eq!(a.observed_wire_bytes(), 200);
        assert_eq!(a.totals.plan_cache_hits, 1);
        assert!(a.matches_prediction());

        let b = reg.stats("b").unwrap();
        assert!(!b.matches_prediction(), "b observed more than predicted");
        assert!(reg.stats("c").is_none());
    }

    #[test]
    fn stage_durations_accumulate_per_tenant() {
        let reg = TenantRegistry::new();
        reg.record_stages("a", [1_000, 10, 2_000_000, 500]);
        reg.record_stages("a", [3_000, 20, 4_000_000, 700]);
        reg.record_stages("b", [1, 1, 1, 1]);

        let a = reg.stages("a").unwrap();
        assert_eq!(a[0].hist.total(), 2);
        assert_eq!(a[0].sum_ns, 4_000);
        assert_eq!(a[2].sum_ns, 6_000_000);
        let b = reg.stages("b").unwrap();
        assert_eq!(b[3].hist.total(), 1);
        assert!(reg.stages("c").is_none());

        // Stage-only tenants exist in the registry with zero job stats.
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.stats("b").unwrap().jobs, 0);

        let all = reg.all_stages();
        assert_eq!(all.len(), 2);
        assert_eq!(all[0].0, "a");
        assert_eq!(STAGE_NAMES.len(), STAGE_COUNT);
    }

    #[test]
    fn table_and_json_render_all_tenants_in_order() {
        let reg = TenantRegistry::new();
        reg.record_job("zeta", 1, 8, &delta_of(1, 8, 0));
        reg.record_job("alpha", 2, 16, &delta_of(2, 16, 0));
        let table = reg.render_table();
        let zeta_at = table.find("zeta").unwrap();
        let alpha_at = table.find("alpha").unwrap();
        assert!(zeta_at < alpha_at, "first-seen order, not alphabetical");
        assert_eq!(table.lines().count(), 3);

        let json = reg.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"tenant\":\"zeta\""));
        assert!(json.contains("\"predicted_rounds\":2"));
        assert!(json.contains("\"metrics\":{"));
    }
}
