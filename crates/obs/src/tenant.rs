//! Per-tenant attribution of collective traffic — the observability side
//! of serving many clients from one resident process.
//!
//! A serving layer (`cartserve`) executes jobs from independent tenants
//! on shared rank threads. Each rank's [`MetricsRegistry`](crate::MetricsRegistry)
//! keeps counting globally; what serving adds is *attribution*: scope the
//! counters of each job execution as a [`MetricsDelta`] and fold it into
//! that tenant's [`TenantStats`] here, together with the schedule's
//! analytical predictions (`C` rounds per rank, Prop. 3.2; `V·m` wire
//! bytes per rank, Prop. 3.3). The registry then renders the
//! observed-vs-predicted C/V table per tenant — the same accounting the
//! profiler reports per run, aggregated per client instead.
//!
//! The registry is shared across rank threads and the server's control
//! plane, so it is internally synchronized; tenants are kept in first-seen
//! order for stable rendering.

use parking_lot::Mutex;

use crate::metrics::{MetricsDelta, MetricsSnapshot};

/// Accumulated traffic and predictions for one tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TenantStats {
    /// Job executions recorded (rank-jobs: one collective on one rank).
    pub jobs: u64,
    /// Analytical round count summed over recorded jobs (`Σ C`).
    pub predicted_rounds: u64,
    /// Analytical wire volume summed over recorded jobs (`Σ V·m` bytes).
    pub predicted_wire_bytes: u64,
    /// Field-wise sum of the recorded per-job metric deltas.
    pub totals: MetricsSnapshot,
}

impl TenantStats {
    /// Observed rounds (`C`): completed communication rounds.
    pub fn observed_rounds(&self) -> u64 {
        self.totals.rounds_completed
    }

    /// Observed wire volume (`V·m`): payload bytes deposited on the wire.
    pub fn observed_wire_bytes(&self) -> u64 {
        self.totals.wire_bytes_sent
    }

    /// Whether observation matches prediction exactly — fault-free
    /// combining executions satisfy this; trivial or faulty runs may not.
    pub fn matches_prediction(&self) -> bool {
        self.observed_rounds() == self.predicted_rounds
            && self.observed_wire_bytes() == self.predicted_wire_bytes
    }
}

/// Named per-tenant accumulation of job deltas and schedule predictions.
#[derive(Debug, Default)]
pub struct TenantRegistry {
    /// First-seen-ordered, so reports are stable across runs.
    tenants: Mutex<Vec<(String, TenantStats)>>,
}

impl TenantRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fold one job execution into `tenant`'s stats: the job's scoped
    /// counter traffic plus the schedule's analytical `C` (rounds) and
    /// `V·m` (wire bytes) for that execution. Creates the tenant on first
    /// use.
    pub fn record_job(
        &self,
        tenant: &str,
        predicted_rounds: u64,
        predicted_wire_bytes: u64,
        delta: &MetricsDelta,
    ) {
        let mut tenants = self.tenants.lock();
        let stats = match tenants.iter_mut().find(|(name, _)| name == tenant) {
            Some((_, stats)) => stats,
            None => {
                tenants.push((tenant.to_string(), TenantStats::default()));
                &mut tenants.last_mut().expect("just pushed").1
            }
        };
        stats.jobs += 1;
        stats.predicted_rounds += predicted_rounds;
        stats.predicted_wire_bytes += predicted_wire_bytes;
        stats.totals += **delta;
    }

    /// The stats for one tenant, if it has recorded any job.
    pub fn stats(&self, tenant: &str) -> Option<TenantStats> {
        self.tenants
            .lock()
            .iter()
            .find(|(name, _)| name == tenant)
            .map(|(_, stats)| *stats)
    }

    /// All tenants with their stats, in first-seen order.
    pub fn all(&self) -> Vec<(String, TenantStats)> {
        self.tenants.lock().clone()
    }

    /// Number of tenants seen.
    pub fn len(&self) -> usize {
        self.tenants.lock().len()
    }

    /// True when no tenant has recorded a job yet.
    pub fn is_empty(&self) -> bool {
        self.tenants.lock().is_empty()
    }

    /// The observed-vs-predicted C/V table, one row per tenant:
    ///
    /// ```text
    /// tenant      jobs   C obs   C pred   V obs (B)   V pred (B)   plan hit/miss
    /// ```
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<16} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}\n",
            "tenant", "jobs", "C obs", "C pred", "V obs (B)", "V pred (B)", "plan hit/miss"
        ));
        for (name, s) in self.all() {
            out.push_str(&format!(
                "{:<16} {:>6} {:>8} {:>8} {:>12} {:>12} {:>14}\n",
                name,
                s.jobs,
                s.observed_rounds(),
                s.predicted_rounds,
                s.observed_wire_bytes(),
                s.predicted_wire_bytes,
                format!(
                    "{}/{}",
                    s.totals.plan_cache_hits, s.totals.plan_cache_misses
                ),
            ));
        }
        out
    }

    /// The table as a JSON array of per-tenant objects (the wire `stats`
    /// reply of the serving layer).
    pub fn to_json(&self) -> String {
        let rows = self
            .all()
            .iter()
            .map(|(name, s)| {
                format!(
                    concat!(
                        "{{\"tenant\":\"{}\",\"jobs\":{},",
                        "\"observed_rounds\":{},\"predicted_rounds\":{},",
                        "\"observed_wire_bytes\":{},\"predicted_wire_bytes\":{},",
                        "\"plan_cache_hits\":{},\"plan_cache_misses\":{},",
                        "\"metrics\":{}}}"
                    ),
                    name.replace('\\', "\\\\").replace('"', "\\\""),
                    s.jobs,
                    s.observed_rounds(),
                    s.predicted_rounds,
                    s.observed_wire_bytes(),
                    s.predicted_wire_bytes,
                    s.totals.plan_cache_hits,
                    s.totals.plan_cache_misses,
                    s.totals.to_json(),
                )
            })
            .collect::<Vec<_>>()
            .join(",");
        format!("[{rows}]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MetricsRegistry;

    fn delta_of(rounds: u64, bytes: usize, hits: u64) -> MetricsDelta {
        let m = MetricsRegistry::new();
        let before = m.snapshot();
        for _ in 0..rounds {
            m.round_started();
            m.round_completed();
        }
        m.add_wire_sent(bytes);
        for _ in 0..hits {
            m.plan_cache_hit();
        }
        m.delta_since(&before)
    }

    #[test]
    fn records_fold_per_tenant() {
        let reg = TenantRegistry::new();
        reg.record_job("a", 4, 100, &delta_of(4, 100, 0));
        reg.record_job("a", 4, 100, &delta_of(4, 100, 1));
        reg.record_job("b", 6, 64, &delta_of(7, 70, 0));
        assert_eq!(reg.len(), 2);

        let a = reg.stats("a").unwrap();
        assert_eq!(a.jobs, 2);
        assert_eq!(a.observed_rounds(), 8);
        assert_eq!(a.predicted_rounds, 8);
        assert_eq!(a.observed_wire_bytes(), 200);
        assert_eq!(a.totals.plan_cache_hits, 1);
        assert!(a.matches_prediction());

        let b = reg.stats("b").unwrap();
        assert!(!b.matches_prediction(), "b observed more than predicted");
        assert!(reg.stats("c").is_none());
    }

    #[test]
    fn table_and_json_render_all_tenants_in_order() {
        let reg = TenantRegistry::new();
        reg.record_job("zeta", 1, 8, &delta_of(1, 8, 0));
        reg.record_job("alpha", 2, 16, &delta_of(2, 16, 0));
        let table = reg.render_table();
        let zeta_at = table.find("zeta").unwrap();
        let alpha_at = table.find("alpha").unwrap();
        assert!(zeta_at < alpha_at, "first-seen order, not alphabetical");
        assert_eq!(table.lines().count(), 3);

        let json = reg.to_json();
        assert!(json.starts_with('[') && json.ends_with(']'));
        assert!(json.contains("\"tenant\":\"zeta\""));
        assert!(json.contains("\"predicted_rounds\":2"));
        assert!(json.contains("\"metrics\":{"));
    }
}
