//! Golden-file test for the Perfetto (Chrome trace-event) export.
//!
//! The fixture is a hand-built two-rank trace exercising every event class
//! the exporter emits: metadata tracks, `X` slices, `s`/`f` flow arrows, a
//! retransmit overlay (attempts > 1), and cumulative pool / plan-cache
//! counter tracks. The rendered JSON must match
//! `tests/golden/perfetto_2rank.json` byte for byte.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p cartcomm-obs --test perfetto_golden
//! ```

use cartcomm_obs::{PerfettoExport, TraceCollector, TraceEvent, TraceRecord};

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/perfetto_2rank.json")
}

/// Two ranks, three wires (one of them retransmitted once), plus pool and
/// plan-cache traffic on rank 0. All timestamps are hand-picked so the
/// fixed-point microsecond rendering covers the sub-µs, exact-µs, and
/// multi-µs cases.
fn fixture() -> Vec<Vec<TraceRecord>> {
    let start = |phase, round, to, wire_bytes, attempt| TraceEvent::RoundStart {
        phase,
        round,
        to,
        from: to,
        wire_bytes,
        attempt,
    };
    let end = |phase, round, from, wire_bytes, attempt| TraceEvent::RoundEnd {
        phase,
        round,
        to: from,
        from,
        wire_bytes,
        attempt,
    };
    vec![
        vec![
            TraceRecord {
                t_ns: 0,
                rank: 0,
                event: TraceEvent::PlanCacheMiss {
                    fingerprint: 0xabcd,
                },
            },
            TraceRecord {
                t_ns: 500,
                rank: 0,
                event: start(0, 0, 1, 256, 0),
            },
            TraceRecord {
                t_ns: 700,
                rank: 0,
                event: TraceEvent::PoolHit { bytes: 256 },
            },
            TraceRecord {
                t_ns: 4_000,
                rank: 0,
                event: start(1, 0, 1, 64, 0),
            },
            // Retransmission of the phase-1 wire: an overlay on the
            // existing node, never a new slice.
            TraceRecord {
                t_ns: 6_000,
                rank: 0,
                event: start(1, 0, 1, 64, 1),
            },
            TraceRecord {
                t_ns: 6_100,
                rank: 0,
                event: TraceEvent::PoolMiss { bytes: 64 },
            },
        ],
        vec![
            TraceRecord {
                t_ns: 100,
                rank: 1,
                event: TraceEvent::PlanCacheHit {
                    fingerprint: 0xabcd,
                },
            },
            TraceRecord {
                t_ns: 2_500,
                rank: 1,
                event: end(0, 0, 0, 256, 0),
            },
            TraceRecord {
                t_ns: 3_000,
                rank: 1,
                event: start(0, 1, 0, 128, 0),
            },
            TraceRecord {
                t_ns: 8_000,
                rank: 1,
                event: end(1, 0, 0, 64, 1),
            },
        ],
    ]
}

/// Rank 1's phase-0 round-1 wire lands on rank 0; complete the pairing so
/// the fixture has no unpaired nodes.
fn fixture_complete() -> Vec<Vec<TraceRecord>> {
    let mut recs = fixture();
    recs[0].push(TraceRecord {
        t_ns: 5_000,
        rank: 0,
        event: TraceEvent::RoundEnd {
            phase: 0,
            round: 1,
            to: 1,
            from: 1,
            wire_bytes: 128,
            attempt: 0,
        },
    });
    recs
}

fn render() -> String {
    let records = fixture_complete();
    let dag = TraceCollector::from_ranks(records.clone()).build();
    assert_eq!(dag.unpaired_starts, 0, "fixture must pair fully");
    assert_eq!(dag.unpaired_ends, 0);
    PerfettoExport::new(&dag)
        .with_counters(&records)
        .with_process_name("golden")
        .to_json()
}

#[test]
fn export_matches_golden_file() {
    let json = render();
    let path = golden_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &json).unwrap();
        return;
    }
    let golden = std::fs::read_to_string(&path)
        .expect("golden file missing — run with BLESS_GOLDEN=1 to create it");
    assert_eq!(
        json, golden,
        "Perfetto export drifted from tests/golden/perfetto_2rank.json; \
         if intentional, re-bless with BLESS_GOLDEN=1"
    );
}

/// Structural validation against the trace-event schema, independent of
/// the golden bytes: framing, required keys per phase type, balanced
/// braces, and flow `s`/`f` pairing.
#[test]
fn export_satisfies_trace_event_schema() {
    let json = render();
    assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"));
    assert!(json.ends_with("\n]}\n"));
    assert_eq!(
        json.chars().filter(|&c| c == '{').count(),
        json.chars().filter(|&c| c == '}').count(),
        "balanced braces"
    );

    let body = json
        .strip_prefix("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n")
        .unwrap()
        .strip_suffix("\n]}\n")
        .unwrap();
    let (mut slices, mut flows_s, mut flows_f) = (0usize, 0usize, 0usize);
    for line in body.lines() {
        let line = line.trim_end_matches(',');
        assert!(
            line.starts_with('{') && line.ends_with('}'),
            "one event per line"
        );
        assert!(line.contains("\"ph\":\""), "every event has a phase type");
        assert!(line.contains("\"pid\":1"), "single-process trace");
        if line.contains("\"ph\":\"M\"") {
            assert!(
                line.contains("\"name\":\"process_name\"")
                    || line.contains("\"name\":\"thread_name\"")
            );
        } else {
            assert!(
                line.contains("\"ts\":"),
                "non-metadata events are timestamped"
            );
        }
        if line.contains("\"ph\":\"X\"") {
            slices += 1;
            assert!(line.contains("\"dur\":") && line.contains("\"tid\":"));
            assert!(
                line.contains("\"attempts\":"),
                "slices carry the attempt count"
            );
        }
        if line.contains("\"ph\":\"s\"") {
            flows_s += 1;
            assert!(line.contains("\"id\":"));
        }
        if line.contains("\"ph\":\"f\"") {
            flows_f += 1;
            assert!(
                line.contains("\"bp\":\"e\""),
                "flow end binds to enclosing slice"
            );
        }
        if line.contains("\"ph\":\"C\"") {
            assert!(line.contains("\"hits\":") && line.contains("\"misses\":"));
        }
    }
    assert_eq!(slices, 3, "three wires in the fixture");
    assert_eq!(flows_s, flows_f, "every flow start has a flow end");
    assert_eq!(flows_s, 3, "all three wires arrived");
    // The retransmitted wire renders once, with attempts folded in.
    assert_eq!(json.matches("\"attempts\":2").count(), 1);
}
