//! Live-telemetry integration suite: attach-on-demand profiling under
//! concurrent load, OpenMetrics scrape stability, the plain-HTTP metrics
//! listener, request-lifecycle stage events, and the extended PING.
//!
//! Job shapes are unique to this file (2×2 torus, elem size 2) so the
//! process-wide plan store keeps other test files' hit/miss assertions
//! honest.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use cartcomm_obs::{RingBufferSink, ServeStageKind, TraceEvent, TraceSink};
use cartcomm_serve::proto::{AlgoSpec, JobSpec, OpSpec, ProfileSpec};
use cartcomm_serve::{reference, Client, ServeConfig, Server};

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cartserve-obs-{}-{}-{}.sock",
        tag,
        std::process::id(),
        SOCK_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

fn payload_for(spec: &JobSpec, salt: u8) -> Vec<u8> {
    (0..spec.ranks() * spec.send_bytes_per_rank())
        .map(|i| (i as u8).wrapping_mul(37).wrapping_add(salt))
        .collect()
}

/// The shape every test here uses: 2×2 periodic torus, von Neumann
/// neighborhood, combining alltoallv of 2-byte elements.
fn shape() -> JobSpec {
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    JobSpec {
        dims: vec![2, 2],
        periods: vec![true, true],
        offsets,
        op: OpSpec::Alltoallv {
            elem_size: 2,
            sendcounts: vec![6; t],
            senddispls: (0..t).map(|i| i * 6).collect(),
            recvcounts: vec![6; t],
            recvdispls: (0..t).map(|i| i * 6).collect(),
        },
        algo: AlgoSpec::Combining,
    }
}

/// The tentpole acceptance scenario: tenant A's next jobs are profiled
/// while tenants B and C keep submitting the *same shape* (so profiled
/// and unprofiled jobs can share a coalesced batch); A's live capture
/// passes the C/V validation, B/C stay byte-identical to the daemon-free
/// reference, and detach leaves zero sinks installed.
#[test]
fn attach_under_load_validates_cv_and_leaves_no_sinks() {
    let sock = sock_path("attach");
    let server = Server::bind_uds(&sock, ServeConfig::default()).expect("bind");

    let spec = shape();
    let payload_a = payload_for(&spec, 3);
    let payload_b = payload_for(&spec, 5);
    let payload_c = payload_for(&spec, 9);
    let golden_a = reference::execute(&spec, &payload_a).expect("golden A");
    let golden_b = reference::execute(&spec, &payload_b).expect("golden B");
    let golden_c = reference::execute(&spec, &payload_c).expect("golden C");

    const PROFILED_JOBS: u32 = 4;

    // The observer blocks on the deferred PROFILE_OK while everyone else
    // works.
    let observer = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_uds(&sock, "observer").expect("observer connect");
            c.profile(&ProfileSpec {
                tenant: "prof-a".into(),
                jobs: PROFILED_JOBS,
                duration_ms: 20_000,
                ring_capacity: 0,
                include_trace: true,
            })
            .expect("profile")
        })
    };
    // Let the PROFILE registration land before the budgeted jobs run.
    std::thread::sleep(Duration::from_millis(200));

    let bystanders: Vec<_> = [
        ("load-b", payload_b, golden_b),
        ("load-c", payload_c, golden_c),
    ]
    .into_iter()
    .map(|(tenant, payload, golden)| {
        let sock = sock.clone();
        let spec = spec.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_uds(&sock, tenant).expect("connect");
            for i in 0..5 {
                let out = c.submit_retrying(&spec, &payload, 100).expect("submit");
                assert_eq!(
                    out, golden,
                    "{tenant} job {i} diverged while another tenant was profiled"
                );
            }
        })
    })
    .collect();

    let mut a = Client::connect_uds(&sock, "prof-a").expect("connect A");
    for i in 0..PROFILED_JOBS {
        let out = a.submit_retrying(&spec, &payload_a, 100).expect("submit A");
        assert_eq!(out, golden_a, "profiled job {i} result diverged");
    }

    let (json, trace) = observer.join().expect("observer thread");
    for b in bystanders {
        b.join().expect("bystander thread");
    }

    assert!(
        json.contains("\"schema\":\"cartserve-profile-v1\""),
        "report schema missing: {json}"
    );
    assert!(
        json.contains(&format!("\"jobs_captured\":{PROFILED_JOBS}")),
        "wrong capture count: {json}"
    );
    assert!(
        json.contains("\"all_checks_passed\":true"),
        "live C/V validation failed: {json}"
    );
    assert!(
        json.contains("\"dropped_records\":0"),
        "capture lost records: {json}"
    );
    let trace = String::from_utf8(trace).expect("perfetto trace is JSON text");
    assert!(
        trace.contains("cartserve-live"),
        "embedded trace is missing its process name"
    );

    // Detach is complete: no sinks remain and no session is active.
    let stats = server.stats_json();
    assert!(
        stats.contains("\"profile\":{\"active\":false,\"sinks_installed\":0}"),
        "profiling left residue: {stats}"
    );

    server.shutdown();
}

/// Two consecutive scrapes expose the identical metric-name set (CI
/// diffs exactly this), stage histograms cover all four lifecycle stages
/// with one count per job, and the wire METRICS text equals what the
/// plain-HTTP listener serves.
#[test]
fn metrics_scrapes_are_stable_and_served_over_http() {
    let sock = sock_path("metrics");
    let cfg = ServeConfig {
        metrics_http: Some("127.0.0.1:0".into()),
        ..ServeConfig::default()
    };
    let server = Server::bind_uds(&sock, cfg).expect("bind");
    let http_addr = server.metrics_endpoint().expect("metrics http bound");

    let spec = shape();
    let payload = payload_for(&spec, 11);
    let mut client = Client::connect_uds(&sock, "met-a").expect("connect");
    for _ in 0..2 {
        client
            .submit_retrying(&spec, &payload, 100)
            .expect("submit");
    }

    let names = |text: &str| -> Vec<String> {
        text.lines()
            .filter(|l| l.starts_with("# TYPE "))
            .map(|l| l.to_string())
            .collect()
    };
    let scrape1 = client.metrics_text().expect("scrape 1");
    let scrape2 = client.metrics_text().expect("scrape 2");
    assert!(!names(&scrape1).is_empty());
    assert_eq!(
        names(&scrape1),
        names(&scrape2),
        "metric families changed between consecutive scrapes"
    );
    assert!(scrape1.ends_with("# EOF\n"));

    for stage in ["queue", "coalesce", "execute", "reply"] {
        let count_line =
            format!("cartserve_job_stage_seconds_count{{tenant=\"met-a\",stage=\"{stage}\"}} 2");
        assert!(
            scrape2.contains(&count_line),
            "missing stage histogram sample {count_line:?} in:\n{scrape2}"
        );
    }
    // record_job is per rank: 2 jobs on a 2×2 universe → 8 executions.
    assert!(
        scrape2.contains("cartserve_tenant_jobs_total{tenant=\"met-a\"} 8"),
        "{scrape2}"
    );
    assert!(scrape2.contains("cartserve_jobs_completed_total 2"));

    // The HTTP listener serves the same document shape.
    let mut http = TcpStream::connect(http_addr).expect("http connect");
    http.write_all(b"GET /metrics HTTP/1.1\r\nHost: cartserve\r\n\r\n")
        .expect("http write");
    let mut response = String::new();
    http.read_to_string(&mut response).expect("http read");
    assert!(response.starts_with("HTTP/1.1 200 OK"), "{response}");
    assert!(response.contains("cartserve_uptime_seconds"));
    assert!(response.ends_with("# EOF\n"));

    let mut bad = TcpStream::connect(http_addr).expect("http connect");
    bad.write_all(b"GET /nope HTTP/1.1\r\nHost: cartserve\r\n\r\n")
        .expect("http write");
    let mut response = String::new();
    bad.read_to_string(&mut response).expect("http read");
    assert!(response.starts_with("HTTP/1.1 404"), "{response}");

    server.shutdown();
}

/// Every job emits the full accepted→coalesced→dispatched→executed→
/// replied stage-event sequence on the daemon's Obs handle, the stats
/// JSON carries the v2 schema with the slowest-jobs ring, and PONG
/// reports uptime and build version.
#[test]
fn lifecycle_events_stats_schema_and_extended_ping() {
    let sock = sock_path("lifecycle");
    let server = Server::bind_uds(&sock, ServeConfig::default()).expect("bind");

    let sink = Arc::new(RingBufferSink::new(256));
    server
        .obs()
        .attach_sink(Arc::clone(&sink) as Arc<dyn TraceSink>);

    let spec = shape();
    let payload = payload_for(&spec, 21);
    let mut client = Client::connect_uds(&sock, "life-a").expect("connect");
    client
        .submit_retrying(&spec, &payload, 100)
        .expect("submit");

    let stages: Vec<ServeStageKind> = sink
        .take()
        .into_iter()
        .filter_map(|r| match r.event {
            TraceEvent::ServeStage { stage, .. } => Some(stage),
            _ => None,
        })
        .collect();
    let codes: Vec<u64> = stages.iter().map(|s| s.code()).collect();
    assert_eq!(
        codes,
        vec![0, 1, 2, 3, 4],
        "expected one event per lifecycle stage in order, got {stages:?}"
    );

    let stats = server.stats_json();
    assert!(
        stats.contains("\"schema\":\"cartserve-stats-v2\""),
        "{stats}"
    );
    assert!(
        stats.contains("\"slowest\":[{\"job\":"),
        "slowest-jobs ring missing: {stats}"
    );
    assert!(
        stats.contains("\"tenant\":\"life-a\""),
        "slow ring lost the tenant: {stats}"
    );

    std::thread::sleep(Duration::from_millis(5));
    let (echo, uptime_ms, version) = client.ping_info(b"obs").expect("ping");
    assert_eq!(echo, b"obs");
    assert!(uptime_ms > 0, "daemon reported zero uptime");
    assert_eq!(version, env!("CARGO_PKG_VERSION"));

    server.shutdown();
}

/// A duration-budget session (jobs = 0) finalizes at its deadline even if
/// no job ever ran, and a second concurrent session is refused.
#[test]
fn duration_budget_expires_and_sessions_are_exclusive() {
    let sock = sock_path("deadline");
    let server = Server::bind_uds(&sock, ServeConfig::default()).expect("bind");

    let observer = {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_uds(&sock, "observer").expect("connect");
            c.profile(&ProfileSpec {
                tenant: "nobody".into(),
                jobs: 0,
                duration_ms: 300,
                ring_capacity: 0,
                include_trace: false,
            })
            .expect("profile")
        })
    };
    std::thread::sleep(Duration::from_millis(100));

    // While the first session is live, a second one is refused.
    let mut rival = Client::connect_uds(&sock, "rival").expect("connect");
    let err = rival
        .profile(&ProfileSpec {
            tenant: "nobody".into(),
            jobs: 1,
            duration_ms: 100,
            ring_capacity: 0,
            include_trace: false,
        })
        .expect_err("second concurrent session must be refused");
    assert!(err.to_string().contains("already active"), "{err}");

    let (json, trace) = observer.join().expect("observer");
    assert!(json.contains("\"jobs_captured\":0"), "{json}");
    // Zero captures cannot pass the checks — the report says so honestly.
    assert!(json.contains("\"all_checks_passed\":false"), "{json}");
    assert!(trace.is_empty(), "no trace was requested");

    server.shutdown();
}
