//! Golden-file test for the cartserve OpenMetrics exporter.
//!
//! The exporter is a pure function over [`MetricsInputs`], so a fixed
//! fixture — two tenants with hand-picked counters and stage durations —
//! must render byte-for-byte the document in
//! `tests/golden/openmetrics.txt`. This pins metric *names*, label sets,
//! histogram bucket edges, and number formatting: renaming any of them is
//! a dashboard-breaking change and must show up as a golden diff.
//!
//! To regenerate after an intentional format change:
//!
//! ```text
//! BLESS_GOLDEN=1 cargo test -p cartcomm-serve --test openmetrics_golden
//! ```

use cartcomm::PlanStoreStats;
use cartcomm_obs::{MetricsDelta, MetricsSnapshot, TenantRegistry};
use cartcomm_serve::exporter::{render, MetricsInputs};
use cartcomm_serve::ServerCounters;

fn golden_path() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/golden/openmetrics.txt")
}

/// A delta whose observed rounds/bytes are exactly the prediction, so the
/// fixture tenants read as clean Prop. 3.2/3.3 matches.
fn clean_delta(rounds: u64, wire_bytes: u64) -> MetricsDelta {
    MetricsDelta(MetricsSnapshot {
        rounds_started: rounds,
        rounds_completed: rounds,
        wire_bytes_sent: wire_bytes,
        wire_bytes_recv: wire_bytes,
        ..MetricsSnapshot::default()
    })
}

fn fixture_tenants() -> TenantRegistry {
    let reg = TenantRegistry::new();
    // Tenant "acme": two jobs of C = 8, V·m = 1024 each, with stage
    // durations spanning the µs-to-ms decades of the histogram.
    reg.record_job("acme", 8, 1024, &clean_delta(8, 1024));
    reg.record_job("acme", 8, 1024, &clean_delta(8, 1024));
    reg.record_stages("acme", [1_000, 50_000, 2_000_000, 10_000]);
    reg.record_stages("acme", [2_000, 80_000, 3_000_000, 12_000]);
    // Tenant "zeta": one job, different shape.
    reg.record_job("zeta", 4, 256, &clean_delta(4, 256));
    reg.record_stages("zeta", [500, 20_000, 900_000, 5_000]);
    reg
}

#[test]
fn exporter_output_matches_golden_file() {
    let tenants = fixture_tenants();
    let inputs = MetricsInputs {
        version: "0.0.0-golden",
        uptime_seconds: 12.5,
        counters: ServerCounters {
            jobs_submitted: 5,
            jobs_rejected: 1,
            jobs_drained: 0,
            jobs_completed: 3,
            batches_executed: 2,
            jobs_coalesced: 1,
        },
        queue_depth: 2,
        draining: false,
        plan_store: PlanStoreStats {
            hits: 10,
            misses: 2,
            evictions: 1,
            schedule_hits: 7,
            schedule_misses: 3,
        },
        profile_active: true,
        profile_sinks_installed: 4,
        tenants: &tenants,
    };
    let text = render(&inputs);

    let path = golden_path();
    if std::env::var_os("BLESS_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &text).unwrap();
        eprintln!("blessed {}", path.display());
        return;
    }
    let golden = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "cannot read {} ({e}); run with BLESS_GOLDEN=1 to create it",
            path.display()
        )
    });
    assert_eq!(
        text, golden,
        "OpenMetrics output drifted from the golden file; if intentional, \
         re-bless with BLESS_GOLDEN=1 and review the diff"
    );
}

#[test]
fn rendering_is_idempotent_over_the_fixture() {
    let tenants = fixture_tenants();
    let mk = || {
        render(&MetricsInputs {
            version: "1.0.0",
            uptime_seconds: 1.0,
            counters: ServerCounters::default(),
            queue_depth: 0,
            draining: true,
            plan_store: PlanStoreStats::default(),
            profile_active: false,
            profile_sinks_installed: 0,
            tenants: &tenants,
        })
    };
    assert_eq!(mk(), mk());
}
