//! Loopback integration suite: a real cartserve daemon on a Unix-domain
//! socket, real clients, concurrent tenants, and the behaviors the
//! serving layer exists for — plan sharing across tenants, same-shape
//! batch coalescing, bounded admission, and graceful drain.
//!
//! Job shapes are unique per test function: the daemon executes against
//! the process-wide plan store, so a shape reused across tests would blur
//! the per-tenant hit/miss assertions.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use cartcomm_serve::proto::{AlgoSpec, JobSpec, OpSpec};
use cartcomm_serve::{reference, Client, ServeConfig, Server, Submission};

static SOCK_SEQ: AtomicU64 = AtomicU64::new(0);

fn sock_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "cartserve-loopback-{}-{}-{}.sock",
        tag,
        std::process::id(),
        SOCK_SEQ.fetch_add(1, Ordering::Relaxed),
    ))
}

/// Deterministic, rank-and-offset-dependent payload bytes.
fn payload_for(spec: &JobSpec, salt: u8) -> Vec<u8> {
    (0..spec.ranks() * spec.send_bytes_per_rank())
        .map(|i| (i as u8).wrapping_mul(31).wrapping_add(salt))
        .collect()
}

/// Shape A for the main test: 3x2 periodic torus, von Neumann
/// neighborhood, message-combining alltoallv of 4-byte elements.
fn shape_a() -> JobSpec {
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    JobSpec {
        dims: vec![3, 2],
        periods: vec![true, true],
        offsets,
        op: OpSpec::Alltoallv {
            elem_size: 4,
            sendcounts: vec![3; t],
            senddispls: (0..t).map(|i| i * 3).collect(),
            recvcounts: vec![3; t],
            recvdispls: (0..t).map(|i| i * 3).collect(),
        },
        algo: AlgoSpec::Combining,
    }
}

/// Shape B: same universe size as A but a different collective — a
/// combining allgatherv — so it lands on different plan-store entries
/// and must not coalesce with A.
fn shape_b() -> JobSpec {
    let offsets: Vec<Vec<i64>> = vec![vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]];
    let t = offsets.len();
    JobSpec {
        dims: vec![3, 2],
        periods: vec![true, true],
        offsets,
        op: OpSpec::Allgatherv {
            elem_size: 4,
            sendcount: 5,
            recvdispls: (0..t).map(|i| i * 5).collect(),
        },
        algo: AlgoSpec::Combining,
    }
}

#[test]
fn three_tenants_share_plans_coalesce_and_drain() {
    let sock = sock_path("main");
    let server = Server::bind_uds(&sock, ServeConfig::default()).expect("bind");

    let spec_a = shape_a();
    let spec_b = shape_b();
    let golden_a = reference::execute(&spec_a, &payload_for(&spec_a, 7)).expect("golden A");
    let golden_b = reference::execute(&spec_b, &payload_for(&spec_b, 9)).expect("golden B");
    let p = spec_a.ranks();

    // --- Tenant 1 warms shape A: every rank compiles, nothing hits. ---
    let mut t1 = Client::connect_uds(&sock, "tenant-1").expect("connect t1");
    assert_eq!(t1.ping(b"up?").expect("ping"), b"up?");
    let out = t1
        .submit_retrying(&spec_a, &payload_for(&spec_a, 7), 100)
        .expect("t1 shape A");
    assert_eq!(out, golden_a, "daemon result matches direct exchange");
    let s1 = server.tenants().stats("tenant-1").expect("t1 stats");
    assert_eq!(s1.jobs, p as u64, "one rank-job per rank");
    assert_eq!(
        s1.totals.plan_cache_misses, p as u64,
        "t1 compiled per rank"
    );
    assert_eq!(s1.totals.plan_cache_hits, 0);
    assert!(
        s1.matches_prediction(),
        "fault-free combining run matches the analytical C/V: {s1:?}"
    );

    // --- Tenant 2, same shape: a pure plan-store hit, zero compiles. ---
    let mut t2 = Client::connect_uds(&sock, "tenant-2").expect("connect t2");
    let out = t2
        .submit_retrying(&spec_a, &payload_for(&spec_a, 7), 100)
        .expect("t2 shape A");
    assert_eq!(out, golden_a, "same job, same bytes, different tenant");
    let s2 = server.tenants().stats("tenant-2").expect("t2 stats");
    assert_eq!(
        s2.totals.plan_cache_misses, 0,
        "tenant 2 rode plans tenant 1 compiled"
    );
    assert_eq!(s2.totals.plan_cache_hits, p as u64);

    // --- Tenant 3, different shape: its own compiles, not A's. ---
    let mut t3 = Client::connect_uds(&sock, "tenant-3").expect("connect t3");
    let out = t3
        .submit_retrying(&spec_b, &payload_for(&spec_b, 9), 100)
        .expect("t3 shape B");
    assert_eq!(out, golden_b);
    let s3 = server.tenants().stats("tenant-3").expect("t3 stats");
    assert_eq!(
        s3.totals.plan_cache_misses, p as u64,
        "new shape, new plans"
    );

    // --- Coalescing: pause the dispatcher, pile up a mixed burst. ---
    let before = server.counters();
    server.pause_dispatch();
    let burst: Vec<std::thread::JoinHandle<(String, Vec<u8>)>> = [
        (
            "tenant-1",
            spec_a.clone(),
            payload_for(&spec_a, 7),
            golden_a.clone(),
        ),
        (
            "tenant-2",
            spec_a.clone(),
            payload_for(&spec_a, 7),
            golden_a.clone(),
        ),
        (
            "tenant-3",
            spec_a.clone(),
            payload_for(&spec_a, 7),
            golden_a.clone(),
        ),
        (
            "tenant-1",
            spec_b.clone(),
            payload_for(&spec_b, 9),
            golden_b.clone(),
        ),
    ]
    .into_iter()
    .map(|(tenant, spec, payload, want)| {
        let sock = sock.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_uds(&sock, tenant).expect("burst connect");
            let got = c.submit_retrying(&spec, &payload, 100).expect("burst job");
            assert_eq!(got, want, "burst result for {tenant}");
            (tenant.to_string(), got)
        })
    })
    .collect();

    // All four must be queued before the dispatcher moves again.
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 4 {
        assert!(Instant::now() < deadline, "burst never queued up");
        std::thread::sleep(Duration::from_millis(2));
    }
    server.resume_dispatch();
    for h in burst {
        h.join().expect("burst thread");
    }
    let after = server.counters();
    assert_eq!(
        after.batches_executed - before.batches_executed,
        2,
        "three same-shape jobs fold into one batch, the odd shape runs alone"
    );
    assert_eq!(
        after.jobs_coalesced - before.jobs_coalesced,
        2,
        "two jobs rode the shape-A batch"
    );
    assert_eq!(after.jobs_submitted - before.jobs_submitted, 4);
    assert_eq!(after.jobs_completed - before.jobs_completed, 4);

    // --- The wire stats command reports every tenant and the counters. ---
    let stats = t1.stats().expect("stats");
    for tenant in ["tenant-1", "tenant-2", "tenant-3"] {
        assert!(
            stats.contains(&format!("\"tenant\":\"{tenant}\"")),
            "stats JSON names {tenant}: {stats}"
        );
    }
    assert!(stats.contains("\"batches_executed\""));
    assert!(stats.contains("\"plan_store\""));

    // --- Graceful drain over the wire. ---
    t2.shutdown().expect("wire shutdown");
    server.wait();
    assert!(!sock.exists(), "socket unlinked after drain");
    assert!(
        Client::connect_uds(&sock, "late").is_err(),
        "daemon is gone after drain"
    );
}

#[test]
fn full_queue_answers_busy_with_retry_hint() {
    let sock = sock_path("busy");
    let cfg = ServeConfig {
        queue_cap: 1,
        busy_retry_ms: 7,
        ..ServeConfig::default()
    };
    let server = Server::bind_uds(&sock, cfg).expect("bind");

    // Unique shape for this test: 2x2 torus, 1D-pair neighborhood.
    let spec = JobSpec {
        dims: vec![2, 2],
        periods: vec![true, true],
        offsets: vec![vec![1, 0], vec![-1, 0]],
        op: OpSpec::Alltoallv {
            elem_size: 2,
            sendcounts: vec![4, 4],
            senddispls: vec![0, 4],
            recvcounts: vec![4, 4],
            recvdispls: vec![0, 4],
        },
        algo: AlgoSpec::Combining,
    };
    let payload = payload_for(&spec, 3);
    let golden = reference::execute(&spec, &payload).expect("golden");

    // Hold the dispatcher so the queue (capacity 1) fills.
    server.pause_dispatch();
    let first = {
        let sock = sock.clone();
        let spec = spec.clone();
        let payload = payload.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect_uds(&sock, "filler").expect("connect");
            c.submit(&spec, &payload).expect("first job")
        })
    };
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.queue_depth() < 1 {
        assert!(Instant::now() < deadline, "first job never queued");
        std::thread::sleep(Duration::from_millis(2));
    }

    // The queue is full: the next submission is refused, not buffered.
    let mut c = Client::connect_uds(&sock, "spiller").expect("connect");
    match c.submit(&spec, &payload).expect("second submit") {
        Submission::Busy { retry_after_ms } => assert_eq!(retry_after_ms, 7),
        other => panic!("expected BUSY from a full queue, got {other:?}"),
    }
    assert_eq!(server.counters().jobs_rejected, 1);

    // After resume the queued job runs; the refused client retries in.
    server.resume_dispatch();
    match first.join().expect("filler thread") {
        Submission::Done(out) => assert_eq!(out, golden),
        other => panic!("queued job should complete, got {other:?}"),
    }
    let out = c.submit_retrying(&spec, &payload, 100).expect("retry in");
    assert_eq!(out, golden);

    // Host-side drain for this one: no wire shutdown involved.
    server.shutdown();
    assert!(!sock.exists());
}

#[test]
fn reduction_jobs_serve_and_match_direct_exchange() {
    use cartcomm_types::{Primitive, RedOp, Reducer};

    let sock = sock_path("reduce");
    let server = Server::bind_uds(&sock, ServeConfig::default()).expect("bind");

    // Unique shape: 3x2 torus, von Neumann plus the zero offset (the own
    // contribution must fold in exactly once), combining allreduce of u32
    // sums — exact in integers, so the daemon's combining result must be
    // byte-identical to the reference's trivial exchange.
    let allreduce = JobSpec {
        dims: vec![3, 2],
        periods: vec![true, true],
        offsets: vec![vec![0, 0], vec![-1, 0], vec![1, 0], vec![0, -1], vec![0, 1]],
        op: OpSpec::Allreduce {
            red: Reducer::new(RedOp::Sum, Primitive::U32),
            count: 6,
        },
        algo: AlgoSpec::Combining,
    };
    let payload = payload_for(&allreduce, 13);
    let golden = reference::execute(&allreduce, &payload).expect("golden allreduce");

    let mut c = Client::connect_uds(&sock, "reduce-tenant").expect("connect");
    let out = c
        .submit_retrying(&allreduce, &payload, 100)
        .expect("allreduce job");
    assert_eq!(out, golden, "combining allreduce matches direct exchange");
    let s = server.tenants().stats("reduce-tenant").expect("stats");
    assert!(
        s.matches_prediction(),
        "fault-free combining reduction matches the analytical C/V: {s:?}"
    );

    // Reduce-scatter on the same topology but its own coalesce shape.
    let reduce_scatter = JobSpec {
        op: OpSpec::ReduceScatter {
            red: Reducer::new(RedOp::Min, Primitive::U32),
            count: 4,
        },
        ..allreduce.clone()
    };
    let payload = payload_for(&reduce_scatter, 17);
    let golden = reference::execute(&reduce_scatter, &payload).expect("golden reduce_scatter");
    let out = c
        .submit_retrying(&reduce_scatter, &payload, 100)
        .expect("reduce_scatter job");
    assert_eq!(
        out, golden,
        "combining reduce_scatter matches direct exchange"
    );

    c.shutdown().expect("wire shutdown");
    server.wait();
}

#[test]
fn tcp_endpoint_serves_and_reports_stats() {
    let server = Server::bind_tcp("127.0.0.1:0", ServeConfig::default()).expect("bind tcp");
    let addr = match server.endpoint() {
        cartcomm_serve::Endpoint::Tcp(a) => *a,
        other => panic!("expected tcp endpoint, got {other:?}"),
    };

    // Unique shape: 4-rank ring, w-blocks over raw bytes.
    let spec = JobSpec {
        dims: vec![4],
        periods: vec![true],
        offsets: vec![vec![1], vec![2]],
        op: OpSpec::Alltoallw {
            send_blocks: vec![(0, 6), (6, 6)],
            recv_blocks: vec![(0, 6), (6, 6)],
        },
        algo: AlgoSpec::Combining,
    };
    let payload = payload_for(&spec, 11);
    let golden = reference::execute(&spec, &payload).expect("golden");

    let mut c = Client::connect_tcp(&addr.to_string(), "tcp-tenant").expect("connect");
    let out = c.submit_retrying(&spec, &payload, 100).expect("job");
    assert_eq!(out, golden, "tcp daemon matches direct exchange");
    let stats = c.stats().expect("stats");
    assert!(stats.contains("\"tenant\":\"tcp-tenant\""));

    c.shutdown().expect("wire shutdown");
    server.wait();
}
