//! The cartserve wire protocol: job submission and control messages.
//!
//! Every message travels as one [`Envelope`] frame in the byte format of
//! [`cartcomm_comm::transport::wire`] — the exact encoding the socket and
//! shared-memory transports use for rank-to-rank traffic, reused here for
//! the client↔daemon control plane. The envelope `tag` carries the message
//! type, the envelope `ctx` carries a client-chosen request id that the
//! daemon echoes in its reply, and the payload carries the message body.
//!
//! Request tags (client → daemon):
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | `0x01` | `HELLO` | tenant name |
//! | `0x02` | `SUBMIT` | tenant + [`JobSpec`] + send payload |
//! | `0x03` | `STATS` | empty |
//! | `0x04` | `SHUTDOWN` | empty |
//! | `0x05` | `PING` | opaque bytes, echoed |
//! | `0x06` | `PROFILE` | tenant + job/duration budget + capture knobs |
//! | `0x07` | `METRICS` | empty |
//!
//! Reply tags (daemon → client):
//!
//! | tag | message | body |
//! |-----|---------|------|
//! | `0x81` | `HELLO_OK` | protocol version (`u32`) |
//! | `0x82` | `RESULT` | `p` concatenated per-rank receive buffers |
//! | `0x83` | `BUSY` | retry-after hint in ms (`u32`) |
//! | `0x84` | `ERR` | UTF-8 error message |
//! | `0x85` | `STATS_OK` | UTF-8 JSON report |
//! | `0x86` | `SHUTDOWN_OK` | empty |
//! | `0x87` | `PONG` | the `PING` bytes + uptime (`u64` ms) + version |
//! | `0x88` | `PROFILE_OK` | UTF-8 JSON report + optional Perfetto trace |
//! | `0x89` | `METRICS_OK` | UTF-8 OpenMetrics text |
//!
//! A [`JobSpec`] names a complete collective: the Cartesian topology
//! (dims and periodicity), the isomorphic relative neighborhood, the
//! operation with its counts/displacements (in the units of the matching
//! `CartComm` method), and the algorithm. The submit payload carries the
//! send buffers of **all** `p` ranks back to back — the service owns the
//! ranks, the client owns the data. All integers little-endian.

use cartcomm::ops::Algo;
use cartcomm_comm::envelope::Envelope;
use cartcomm_comm::transport::wire;
use cartcomm_types::Reducer;

/// Protocol version sent in `HELLO_OK`. Version 2 added the
/// `PROFILE`/`METRICS` requests and extended `PONG` with daemon uptime
/// and build version.
pub const PROTO_VERSION: u32 = 2;

/// Request tags.
pub const TAG_HELLO: u32 = 0x01;
pub const TAG_SUBMIT: u32 = 0x02;
pub const TAG_STATS: u32 = 0x03;
pub const TAG_SHUTDOWN: u32 = 0x04;
pub const TAG_PING: u32 = 0x05;
pub const TAG_PROFILE: u32 = 0x06;
pub const TAG_METRICS: u32 = 0x07;

/// Reply tags.
pub const TAG_HELLO_OK: u32 = 0x81;
pub const TAG_RESULT: u32 = 0x82;
pub const TAG_BUSY: u32 = 0x83;
pub const TAG_ERR: u32 = 0x84;
pub const TAG_STATS_OK: u32 = 0x85;
pub const TAG_SHUTDOWN_OK: u32 = 0x86;
pub const TAG_PONG: u32 = 0x87;
pub const TAG_PROFILE_OK: u32 = 0x88;
pub const TAG_METRICS_OK: u32 = 0x89;

/// Which algorithm the daemon should run the collective with.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoSpec {
    /// The t-round trivial algorithm (Listing 4).
    Trivial,
    /// The message-combining schedule (§3).
    Combining,
}

impl AlgoSpec {
    /// The ops-layer algorithm selector.
    pub fn to_algo(self) -> Algo {
        match self {
            AlgoSpec::Trivial => Algo::Trivial,
            AlgoSpec::Combining => Algo::Combining,
        }
    }

    fn to_byte(self) -> u8 {
        match self {
            AlgoSpec::Trivial => 0,
            AlgoSpec::Combining => 1,
        }
    }

    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(AlgoSpec::Trivial),
            1 => Some(AlgoSpec::Combining),
            _ => None,
        }
    }
}

/// The collective operation of a job, with per-neighbor counts and
/// displacements in the units of the matching [`cartcomm::CartComm`]
/// method. `w` blocks are `(byte displacement, byte count)` pairs over the
/// byte datatype.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OpSpec {
    /// `Cart_alltoallv`: counts/displs in elements of `elem_size` bytes.
    Alltoallv {
        elem_size: usize,
        sendcounts: Vec<usize>,
        senddispls: Vec<usize>,
        recvcounts: Vec<usize>,
        recvdispls: Vec<usize>,
    },
    /// `Cart_allgatherv`: one send block of `sendcount` elements,
    /// `t` receive displacements.
    Allgatherv {
        elem_size: usize,
        sendcount: usize,
        recvdispls: Vec<usize>,
    },
    /// `Cart_alltoallw` over byte blocks.
    Alltoallw {
        send_blocks: Vec<(i64, usize)>,
        recv_blocks: Vec<(i64, usize)>,
    },
    /// `Cart_allgatherw` over byte blocks.
    Allgatherw {
        send_block: (i64, usize),
        recv_blocks: Vec<(i64, usize)>,
    },
    /// `Cart_reduce_scatter`: each rank contributes `t` blocks of `count`
    /// elements of the reducer's primitive and receives one combined
    /// block of `count` elements.
    ReduceScatter { red: Reducer, count: usize },
    /// `Cart_allreduce`: one block of `count` elements in, the reduced
    /// block of `count` elements out.
    Allreduce { red: Reducer, count: usize },
}

/// A complete job: topology, neighborhood, operation, algorithm. The
/// tenant name and the payload travel beside the spec in `SUBMIT`, so the
/// spec itself is exactly the *shape* of the job — two submissions with
/// equal specs hit the same plan-store entries and may be coalesced into
/// one batch by the daemon (see [`JobSpec::coalesce_key`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSpec {
    /// Grid extent per dimension; the job runs on `Π dims` ranks.
    pub dims: Vec<usize>,
    /// Periodicity per dimension.
    pub periods: Vec<bool>,
    /// The isomorphic relative neighborhood, one offset vector per
    /// neighbor, each of `dims.len()` coordinates.
    pub offsets: Vec<Vec<i64>>,
    /// The collective to run.
    pub op: OpSpec,
    /// Which algorithm to run it with.
    pub algo: AlgoSpec,
}

impl JobSpec {
    /// Number of ranks the job needs: the product of the grid dims.
    pub fn ranks(&self) -> usize {
        self.dims.iter().product()
    }

    /// Neighborhood size `t`.
    pub fn neighbor_count(&self) -> usize {
        self.offsets.len()
    }

    /// Bytes each rank contributes in the submit payload.
    pub fn send_bytes_per_rank(&self) -> usize {
        match &self.op {
            OpSpec::Alltoallv {
                elem_size,
                sendcounts,
                senddispls,
                ..
            } => span_bytes(sendcounts, senddispls, *elem_size),
            OpSpec::Allgatherv {
                elem_size,
                sendcount,
                ..
            } => sendcount * elem_size,
            OpSpec::Alltoallw { send_blocks, .. } => w_span(send_blocks),
            OpSpec::Allgatherw { send_block, .. } => w_span(std::slice::from_ref(send_block)),
            OpSpec::ReduceScatter { red, count } => self.neighbor_count() * count * red.width(),
            OpSpec::Allreduce { red, count } => count * red.width(),
        }
    }

    /// Bytes each rank receives in the result payload.
    pub fn recv_bytes_per_rank(&self) -> usize {
        match &self.op {
            OpSpec::Alltoallv {
                elem_size,
                recvcounts,
                recvdispls,
                ..
            } => span_bytes(recvcounts, recvdispls, *elem_size),
            OpSpec::Allgatherv {
                elem_size,
                sendcount,
                recvdispls,
            } => span_bytes(&vec![*sendcount; recvdispls.len()], recvdispls, *elem_size),
            OpSpec::Alltoallw { recv_blocks, .. } | OpSpec::Allgatherw { recv_blocks, .. } => {
                w_span(recv_blocks)
            }
            OpSpec::ReduceScatter { red, count } | OpSpec::Allreduce { red, count } => {
                count * red.width()
            }
        }
    }

    /// Per-neighbor receive-block sizes in bytes — the `block_bytes` the
    /// executor's layouts carry, used for the analytical volume
    /// prediction (`V·m`, Prop. 3.3).
    pub fn recv_block_bytes(&self) -> Vec<usize> {
        match &self.op {
            OpSpec::Alltoallv {
                elem_size,
                recvcounts,
                ..
            } => recvcounts.iter().map(|c| c * elem_size).collect(),
            OpSpec::Allgatherv {
                elem_size,
                sendcount,
                recvdispls,
            } => vec![sendcount * elem_size; recvdispls.len()],
            OpSpec::Alltoallw { recv_blocks, .. } | OpSpec::Allgatherw { recv_blocks, .. } => {
                recv_blocks.iter().map(|&(_, count)| count).collect()
            }
            OpSpec::ReduceScatter { red, count } | OpSpec::Allreduce { red, count } => {
                vec![count * red.width(); self.neighbor_count()]
            }
        }
    }

    /// Structural validation: everything a daemon must check before
    /// spending a universe on the job.
    pub fn validate(&self) -> Result<(), String> {
        let d = self.dims.len();
        if d == 0 {
            return Err("job has no dimensions".into());
        }
        if self.periods.len() != d {
            return Err(format!("{} periods for {} dims", self.periods.len(), d));
        }
        if self.dims.contains(&0) {
            return Err("zero-extent dimension".into());
        }
        let t = self.neighbor_count();
        if t == 0 {
            return Err("empty neighborhood".into());
        }
        if let Some(bad) = self.offsets.iter().find(|o| o.len() != d) {
            return Err(format!("offset {bad:?} has wrong arity (want {d})"));
        }
        let check = |name: &str, len: usize, want: usize| -> Result<(), String> {
            if len != want {
                Err(format!("{name} has {len} entries, want {want}"))
            } else {
                Ok(())
            }
        };
        match &self.op {
            OpSpec::Alltoallv {
                elem_size,
                sendcounts,
                senddispls,
                recvcounts,
                recvdispls,
            } => {
                if *elem_size == 0 {
                    return Err("elem_size is zero".into());
                }
                check("sendcounts", sendcounts.len(), t)?;
                check("senddispls", senddispls.len(), t)?;
                check("recvcounts", recvcounts.len(), t)?;
                check("recvdispls", recvdispls.len(), t)?;
            }
            OpSpec::Allgatherv {
                elem_size,
                recvdispls,
                ..
            } => {
                if *elem_size == 0 {
                    return Err("elem_size is zero".into());
                }
                check("recvdispls", recvdispls.len(), t)?;
            }
            OpSpec::Alltoallw {
                send_blocks,
                recv_blocks,
            } => {
                check("send_blocks", send_blocks.len(), t)?;
                check("recv_blocks", recv_blocks.len(), t)?;
            }
            OpSpec::Allgatherw { recv_blocks, .. } => {
                check("recv_blocks", recv_blocks.len(), t)?;
            }
            OpSpec::ReduceScatter { .. } | OpSpec::Allreduce { .. } => {
                // The reducer is validated structurally at decode time and
                // the buffer sizes follow from `count` alone.
            }
        }
        Ok(())
    }

    /// The coalescing key: an FNV-1a hash of the full spec encoding.
    /// Jobs with equal keys share topology, neighborhood, operation
    /// shape, and algorithm — they resolve to the same plan-store entries
    /// and are safe to batch onto one resident universe back to back.
    pub fn coalesce_key(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in &self.encode() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Serialize the spec body (without tenant or payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let d = self.dims.len();
        out.push(d as u8);
        for &x in &self.dims {
            put_u32(&mut out, x as u32);
        }
        for &p in &self.periods {
            out.push(p as u8);
        }
        put_u32(&mut out, self.offsets.len() as u32);
        for off in &self.offsets {
            for &c in off {
                put_i64(&mut out, c);
            }
        }
        out.push(self.algo.to_byte());
        match &self.op {
            OpSpec::Alltoallv {
                elem_size,
                sendcounts,
                senddispls,
                recvcounts,
                recvdispls,
            } => {
                out.push(0);
                put_u32(&mut out, *elem_size as u32);
                put_usize_vec(&mut out, sendcounts);
                put_usize_vec(&mut out, senddispls);
                put_usize_vec(&mut out, recvcounts);
                put_usize_vec(&mut out, recvdispls);
            }
            OpSpec::Allgatherv {
                elem_size,
                sendcount,
                recvdispls,
            } => {
                out.push(1);
                put_u32(&mut out, *elem_size as u32);
                put_u64(&mut out, *sendcount as u64);
                put_usize_vec(&mut out, recvdispls);
            }
            OpSpec::Alltoallw {
                send_blocks,
                recv_blocks,
            } => {
                out.push(2);
                put_block_vec(&mut out, send_blocks);
                put_block_vec(&mut out, recv_blocks);
            }
            OpSpec::Allgatherw {
                send_block,
                recv_blocks,
            } => {
                out.push(3);
                put_i64(&mut out, send_block.0);
                put_u64(&mut out, send_block.1 as u64);
                put_block_vec(&mut out, recv_blocks);
            }
            OpSpec::ReduceScatter { red, count } => {
                out.push(4);
                out.extend_from_slice(&red.encode());
                put_u64(&mut out, *count as u64);
            }
            OpSpec::Allreduce { red, count } => {
                out.push(5);
                out.extend_from_slice(&red.encode());
                put_u64(&mut out, *count as u64);
            }
        }
        out
    }

    /// Deserialize a spec body.
    pub fn decode(buf: &[u8]) -> Result<Self, String> {
        let mut c = Cursor::new(buf);
        let spec = Self::read(&mut c)?;
        if !c.at_end() {
            return Err("trailing bytes after job spec".into());
        }
        Ok(spec)
    }

    fn read(c: &mut Cursor<'_>) -> Result<Self, String> {
        let d = c.u8()? as usize;
        let dims = (0..d)
            .map(|_| c.u32().map(|x| x as usize))
            .collect::<Result<Vec<_>, _>>()?;
        let periods = (0..d)
            .map(|_| c.u8().map(|b| b != 0))
            .collect::<Result<Vec<_>, _>>()?;
        let t = c.u32()? as usize;
        if t > MAX_NEIGHBORS {
            return Err(format!("neighborhood of {t} exceeds limit"));
        }
        let offsets = (0..t)
            .map(|_| (0..d).map(|_| c.i64()).collect::<Result<Vec<_>, _>>())
            .collect::<Result<Vec<_>, _>>()?;
        let algo = AlgoSpec::from_byte(c.u8()?).ok_or("bad algo byte")?;
        let op = match c.u8()? {
            0 => OpSpec::Alltoallv {
                elem_size: c.u32()? as usize,
                sendcounts: c.usize_vec()?,
                senddispls: c.usize_vec()?,
                recvcounts: c.usize_vec()?,
                recvdispls: c.usize_vec()?,
            },
            1 => OpSpec::Allgatherv {
                elem_size: c.u32()? as usize,
                sendcount: c.u64()? as usize,
                recvdispls: c.usize_vec()?,
            },
            2 => OpSpec::Alltoallw {
                send_blocks: c.block_vec()?,
                recv_blocks: c.block_vec()?,
            },
            3 => OpSpec::Allgatherw {
                send_block: (c.i64()?, c.u64()? as usize),
                recv_blocks: c.block_vec()?,
            },
            4 => OpSpec::ReduceScatter {
                red: c.reducer()?,
                count: c.u64()? as usize,
            },
            5 => OpSpec::Allreduce {
                red: c.reducer()?,
                count: c.u64()? as usize,
            },
            k => return Err(format!("unknown op kind {k}")),
        };
        Ok(JobSpec {
            dims,
            periods,
            offsets,
            op,
            algo,
        })
    }
}

/// Sanity bound on decoded vector lengths (a malformed frame must not
/// allocate unbounded memory).
const MAX_NEIGHBORS: usize = 1 << 20;

/// An attach-on-demand profiling request: capture the next `jobs` jobs of
/// `tenant` (or until `duration_ms` elapses, whichever comes first) with
/// per-rank ring sinks, and reply with the analyzed report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProfileSpec {
    /// Tenant whose jobs get captured; other tenants run unperturbed.
    pub tenant: String,
    /// Number of jobs to capture. `0` means "until the deadline".
    pub jobs: u32,
    /// Wall-clock budget in ms. `0` means the daemon default (30 s).
    pub duration_ms: u32,
    /// Per-rank ring-sink capacity in records. `0` means the daemon
    /// default.
    pub ring_capacity: u32,
    /// Embed a Perfetto trace of the last captured job in the reply.
    pub include_trace: bool,
}

impl ProfileSpec {
    /// Structural validation mirroring [`JobSpec::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.tenant.is_empty() {
            return Err("profile request names no tenant".into());
        }
        if self.jobs == 0 && self.duration_ms == 0 {
            return Err("profile request has neither a job nor a duration budget".into());
        }
        Ok(())
    }

    fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(17 + self.tenant.len());
        put_u32(&mut out, self.tenant.len() as u32);
        out.extend_from_slice(self.tenant.as_bytes());
        put_u32(&mut out, self.jobs);
        put_u32(&mut out, self.duration_ms);
        put_u32(&mut out, self.ring_capacity);
        out.push(self.include_trace as u8);
        out
    }

    fn decode(body: &[u8]) -> Result<Self, String> {
        let mut c = Cursor::new(body);
        let tlen = c.u32()? as usize;
        let tenant = utf8(c.take(tlen)?)?;
        let spec = ProfileSpec {
            tenant,
            jobs: c.u32()?,
            duration_ms: c.u32()?,
            ring_capacity: c.u32()?,
            include_trace: c.u8()? != 0,
        };
        if !c.at_end() {
            return Err("trailing bytes after profile spec".into());
        }
        Ok(spec)
    }
}

/// A decoded client→daemon request.
///
/// `Submit` dwarfs the other variants by design — a request either is a
/// job or is a few bytes of control — so boxing the spec would only add
/// an indirection on the hot path.
#[derive(Debug, Clone, PartialEq, Eq)]
#[allow(clippy::large_enum_variant)]
pub enum Request {
    Hello {
        tenant: String,
    },
    Submit {
        tenant: String,
        spec: JobSpec,
        payload: Vec<u8>,
    },
    Stats,
    Shutdown,
    Ping {
        payload: Vec<u8>,
    },
    Profile {
        spec: ProfileSpec,
    },
    Metrics,
}

impl Request {
    /// Frame the request as one wire envelope with request id `ctx`.
    pub fn encode_frame(&self, ctx: u32) -> Vec<u8> {
        let (tag, body) = match self {
            Request::Hello { tenant } => (TAG_HELLO, tenant.as_bytes().to_vec()),
            Request::Submit {
                tenant,
                spec,
                payload,
            } => {
                let spec_bytes = spec.encode();
                let mut body =
                    Vec::with_capacity(8 + tenant.len() + spec_bytes.len() + payload.len());
                put_u32(&mut body, tenant.len() as u32);
                body.extend_from_slice(tenant.as_bytes());
                put_u32(&mut body, spec_bytes.len() as u32);
                body.extend_from_slice(&spec_bytes);
                body.extend_from_slice(payload);
                (TAG_SUBMIT, body)
            }
            Request::Stats => (TAG_STATS, Vec::new()),
            Request::Shutdown => (TAG_SHUTDOWN, Vec::new()),
            Request::Ping { payload } => (TAG_PING, payload.clone()),
            Request::Profile { spec } => (TAG_PROFILE, spec.encode()),
            Request::Metrics => (TAG_METRICS, Vec::new()),
        };
        frame(ctx, tag, body)
    }

    /// Decode a request from an envelope.
    pub fn decode_env(env: &Envelope) -> Result<Self, String> {
        let body: &[u8] = &env.data;
        match env.tag {
            TAG_HELLO => Ok(Request::Hello {
                tenant: utf8(body)?,
            }),
            TAG_SUBMIT => {
                let mut c = Cursor::new(body);
                let tlen = c.u32()? as usize;
                let tenant = utf8(c.take(tlen)?)?;
                let slen = c.u32()? as usize;
                let spec = JobSpec::decode(c.take(slen)?)?;
                let payload = c.rest().to_vec();
                Ok(Request::Submit {
                    tenant,
                    spec,
                    payload,
                })
            }
            TAG_STATS => Ok(Request::Stats),
            TAG_SHUTDOWN => Ok(Request::Shutdown),
            TAG_PING => Ok(Request::Ping {
                payload: body.to_vec(),
            }),
            TAG_PROFILE => Ok(Request::Profile {
                spec: ProfileSpec::decode(body)?,
            }),
            TAG_METRICS => Ok(Request::Metrics),
            t => Err(format!("unknown request tag {t:#x}")),
        }
    }
}

/// A decoded daemon→client reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Reply {
    HelloOk {
        version: u32,
    },
    Result {
        payload: Vec<u8>,
    },
    Busy {
        retry_after_ms: u32,
    },
    Err {
        message: String,
    },
    StatsOk {
        json: String,
    },
    ShutdownOk,
    /// Echo of the `PING` bytes plus liveness identity: how long this
    /// daemon process has been up and which build it is — enough for a
    /// health check to tell a restarted daemon from a stale one.
    Pong {
        payload: Vec<u8>,
        uptime_ms: u64,
        version: String,
    },
    /// The analyzed attach-profiling report: a JSON summary plus, when
    /// requested, an embedded Perfetto trace of the last captured job.
    ProfileOk {
        json: String,
        trace: Vec<u8>,
    },
    /// The OpenMetrics text exposition of the daemon's live metrics.
    MetricsOk {
        text: String,
    },
}

impl Reply {
    /// Frame the reply as one wire envelope echoing request id `ctx`.
    pub fn encode_frame(&self, ctx: u32) -> Vec<u8> {
        let (tag, body) = match self {
            Reply::HelloOk { version } => {
                let mut b = Vec::with_capacity(4);
                put_u32(&mut b, *version);
                (TAG_HELLO_OK, b)
            }
            Reply::Result { payload } => (TAG_RESULT, payload.clone()),
            Reply::Busy { retry_after_ms } => {
                let mut b = Vec::with_capacity(4);
                put_u32(&mut b, *retry_after_ms);
                (TAG_BUSY, b)
            }
            Reply::Err { message } => (TAG_ERR, message.as_bytes().to_vec()),
            Reply::StatsOk { json } => (TAG_STATS_OK, json.as_bytes().to_vec()),
            Reply::ShutdownOk => (TAG_SHUTDOWN_OK, Vec::new()),
            Reply::Pong {
                payload,
                uptime_ms,
                version,
            } => {
                let mut b = Vec::with_capacity(12 + payload.len() + version.len());
                put_u32(&mut b, payload.len() as u32);
                b.extend_from_slice(payload);
                put_u64(&mut b, *uptime_ms);
                b.extend_from_slice(version.as_bytes());
                (TAG_PONG, b)
            }
            Reply::ProfileOk { json, trace } => {
                let mut b = Vec::with_capacity(4 + json.len() + trace.len());
                put_u32(&mut b, json.len() as u32);
                b.extend_from_slice(json.as_bytes());
                b.extend_from_slice(trace);
                (TAG_PROFILE_OK, b)
            }
            Reply::MetricsOk { text } => (TAG_METRICS_OK, text.as_bytes().to_vec()),
        };
        frame(ctx, tag, body)
    }

    /// Decode a reply from an envelope.
    pub fn decode_env(env: &Envelope) -> Result<Self, String> {
        let body: &[u8] = &env.data;
        match env.tag {
            TAG_HELLO_OK => {
                let mut c = Cursor::new(body);
                Ok(Reply::HelloOk { version: c.u32()? })
            }
            TAG_RESULT => Ok(Reply::Result {
                payload: body.to_vec(),
            }),
            TAG_BUSY => {
                let mut c = Cursor::new(body);
                Ok(Reply::Busy {
                    retry_after_ms: c.u32()?,
                })
            }
            TAG_ERR => Ok(Reply::Err {
                message: utf8(body)?,
            }),
            TAG_STATS_OK => Ok(Reply::StatsOk { json: utf8(body)? }),
            TAG_SHUTDOWN_OK => Ok(Reply::ShutdownOk),
            TAG_PONG => {
                let mut c = Cursor::new(body);
                let plen = c.u32()? as usize;
                let payload = c.take(plen)?.to_vec();
                let uptime_ms = c.u64()?;
                let version = utf8(c.rest())?;
                Ok(Reply::Pong {
                    payload,
                    uptime_ms,
                    version,
                })
            }
            TAG_PROFILE_OK => {
                let mut c = Cursor::new(body);
                let jlen = c.u32()? as usize;
                let json = utf8(c.take(jlen)?)?;
                let trace = c.rest().to_vec();
                Ok(Reply::ProfileOk { json, trace })
            }
            TAG_METRICS_OK => Ok(Reply::MetricsOk { text: utf8(body)? }),
            t => Err(format!("unknown reply tag {t:#x}")),
        }
    }
}

fn frame(ctx: u32, tag: u32, body: Vec<u8>) -> Vec<u8> {
    let env = Envelope::new(ctx, 0, tag, body);
    let mut out = Vec::with_capacity(wire::HEADER_BYTES + env.data.len());
    wire::encode_into(&env, &mut out);
    out
}

fn utf8(b: &[u8]) -> Result<String, String> {
    String::from_utf8(b.to_vec()).map_err(|_| "invalid utf-8".to_string())
}

fn span_bytes(counts: &[usize], displs: &[usize], elem_size: usize) -> usize {
    counts
        .iter()
        .zip(displs)
        .map(|(c, d)| (d + c) * elem_size)
        .max()
        .unwrap_or(0)
}

fn w_span(blocks: &[(i64, usize)]) -> usize {
    blocks
        .iter()
        .map(|&(disp, count)| disp.max(0) as usize + count)
        .max()
        .unwrap_or(0)
}

// ----- little-endian primitives -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, x: u32) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, x: u64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, x: i64) {
    out.extend_from_slice(&x.to_le_bytes());
}

fn put_usize_vec(out: &mut Vec<u8>, v: &[usize]) {
    put_u32(out, v.len() as u32);
    for &x in v {
        put_u64(out, x as u64);
    }
}

fn put_block_vec(out: &mut Vec<u8>, v: &[(i64, usize)]) {
    put_u32(out, v.len() as u32);
    for &(disp, count) in v {
        put_i64(out, disp);
        put_u64(out, count as u64);
    }
}

struct Cursor<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
        if self.buf.len() - self.at < n {
            return Err("truncated message".into());
        }
        let s = &self.buf[self.at..self.at + n];
        self.at += n;
        Ok(s)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.at..];
        self.at = self.buf.len();
        s
    }

    fn at_end(&self) -> bool {
        self.at == self.buf.len()
    }

    fn u8(&mut self) -> Result<u8, String> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, String> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, String> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn i64(&mut self) -> Result<i64, String> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>, String> {
        let n = self.u32()? as usize;
        if n > MAX_NEIGHBORS {
            return Err(format!("vector of {n} exceeds limit"));
        }
        (0..n).map(|_| self.u64().map(|x| x as usize)).collect()
    }

    fn reducer(&mut self) -> Result<Reducer, String> {
        let bytes = [self.u8()?, self.u8()?];
        Reducer::decode(bytes).ok_or_else(|| format!("bad reducer encoding {bytes:?}"))
    }

    fn block_vec(&mut self) -> Result<Vec<(i64, usize)>, String> {
        let n = self.u32()? as usize;
        if n > MAX_NEIGHBORS {
            return Err(format!("vector of {n} exceeds limit"));
        }
        (0..n)
            .map(|_| Ok((self.i64()?, self.u64()? as usize)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cartcomm_comm::WirePool;
    use std::sync::Arc;

    fn moore_spec(algo: AlgoSpec) -> JobSpec {
        let offsets: Vec<Vec<i64>> = (-1..=1)
            .flat_map(|a| (-1..=1).map(move |b| vec![a, b]))
            .filter(|o| o.iter().any(|&c| c != 0))
            .collect();
        let t = offsets.len();
        JobSpec {
            dims: vec![3, 3],
            periods: vec![true, true],
            offsets,
            op: OpSpec::Alltoallv {
                elem_size: 4,
                sendcounts: vec![2; t],
                senddispls: (0..t).map(|i| i * 2).collect(),
                recvcounts: vec![2; t],
                recvdispls: (0..t).map(|i| i * 2).collect(),
            },
            algo,
        }
    }

    fn roundtrip_req(req: &Request) -> Request {
        let bytes = req.encode_frame(7);
        let pool = Arc::new(WirePool::new());
        let (env, used) = wire::decode_from(&bytes, &pool).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(env.ctx, 7);
        Request::decode_env(&env).expect("request decodes")
    }

    fn roundtrip_reply(rep: &Reply) -> Reply {
        let bytes = rep.encode_frame(9);
        let pool = Arc::new(WirePool::new());
        let (env, used) = wire::decode_from(&bytes, &pool).expect("decodes");
        assert_eq!(used, bytes.len());
        assert_eq!(env.ctx, 9);
        Reply::decode_env(&env).expect("reply decodes")
    }

    #[test]
    fn spec_roundtrips_and_sizes_add_up() {
        let spec = moore_spec(AlgoSpec::Combining);
        assert_eq!(JobSpec::decode(&spec.encode()).unwrap(), spec);
        assert_eq!(spec.ranks(), 9);
        assert_eq!(spec.neighbor_count(), 8);
        assert_eq!(spec.send_bytes_per_rank(), 8 * 2 * 4);
        assert_eq!(spec.recv_bytes_per_rank(), 8 * 2 * 4);
        assert_eq!(spec.recv_block_bytes(), vec![8; 8]);
        spec.validate().expect("valid");
    }

    #[test]
    fn reduce_specs_roundtrip_and_size() {
        use cartcomm_types::{Primitive, RedOp};
        let mut s = moore_spec(AlgoSpec::Combining);
        s.op = OpSpec::Allreduce {
            red: Reducer::new(RedOp::Sum, Primitive::F64),
            count: 5,
        };
        assert_eq!(JobSpec::decode(&s.encode()).unwrap(), s);
        assert_eq!(s.send_bytes_per_rank(), 5 * 8);
        assert_eq!(s.recv_bytes_per_rank(), 5 * 8);
        assert_eq!(s.recv_block_bytes(), vec![40; 8]);
        s.validate().expect("valid allreduce spec");

        let mut s2 = moore_spec(AlgoSpec::Trivial);
        s2.op = OpSpec::ReduceScatter {
            red: Reducer::new(RedOp::Max, Primitive::I16),
            count: 3,
        };
        assert_eq!(JobSpec::decode(&s2.encode()).unwrap(), s2);
        assert_eq!(s2.send_bytes_per_rank(), 8 * 3 * 2);
        assert_eq!(s2.recv_bytes_per_rank(), 3 * 2);
        s2.validate().expect("valid reduce_scatter spec");
        assert_ne!(s.coalesce_key(), s2.coalesce_key());

        // A bad reducer byte must fail decode, not panic downstream.
        let mut bytes = s.encode();
        let n = bytes.len();
        bytes[n - 9] = 0xFF; // primitive code byte of the reducer
        assert!(JobSpec::decode(&bytes).is_err());
    }

    #[test]
    fn coalesce_key_tracks_shape_not_tenant_or_payload() {
        let a = moore_spec(AlgoSpec::Combining);
        let b = moore_spec(AlgoSpec::Combining);
        assert_eq!(a.coalesce_key(), b.coalesce_key());
        let c = moore_spec(AlgoSpec::Trivial);
        assert_ne!(
            a.coalesce_key(),
            c.coalesce_key(),
            "algo is part of the shape"
        );
        let mut d = moore_spec(AlgoSpec::Combining);
        d.dims = vec![9, 1];
        assert_ne!(
            a.coalesce_key(),
            d.coalesce_key(),
            "topology is part of the shape"
        );
    }

    #[test]
    fn requests_and_replies_roundtrip_the_wire_format() {
        let spec = moore_spec(AlgoSpec::Combining);
        let payload = vec![0xAB; spec.ranks() * spec.send_bytes_per_rank()];
        for req in [
            Request::Hello {
                tenant: "t1".into(),
            },
            Request::Submit {
                tenant: "t1".into(),
                spec: spec.clone(),
                payload: payload.clone(),
            },
            Request::Stats,
            Request::Shutdown,
            Request::Ping {
                payload: vec![1, 2, 3],
            },
            Request::Profile {
                spec: ProfileSpec {
                    tenant: "t1".into(),
                    jobs: 4,
                    duration_ms: 0,
                    ring_capacity: 1 << 14,
                    include_trace: true,
                },
            },
            Request::Metrics,
        ] {
            assert_eq!(roundtrip_req(&req), req);
        }
        for rep in [
            Reply::HelloOk {
                version: PROTO_VERSION,
            },
            Reply::Result {
                payload: payload.clone(),
            },
            Reply::Busy { retry_after_ms: 5 },
            Reply::Err {
                message: "nope".into(),
            },
            Reply::StatsOk { json: "[]".into() },
            Reply::ShutdownOk,
            Reply::Pong {
                payload: vec![9; 4],
                uptime_ms: 123_456,
                version: "0.1.0".into(),
            },
            Reply::ProfileOk {
                json: "{\"schema\":\"cartserve-profile-v1\"}".into(),
                trace: vec![0x7B, 0x7D],
            },
            Reply::MetricsOk {
                text: "# EOF\n".into(),
            },
        ] {
            assert_eq!(roundtrip_reply(&rep), rep);
        }
    }

    #[test]
    fn profile_spec_validates_budgets() {
        let ok = ProfileSpec {
            tenant: "t".into(),
            jobs: 1,
            duration_ms: 0,
            ring_capacity: 0,
            include_trace: false,
        };
        ok.validate().expect("job budget suffices");
        let by_time = ProfileSpec {
            jobs: 0,
            duration_ms: 250,
            ..ok.clone()
        };
        by_time.validate().expect("duration budget suffices");
        let no_budget = ProfileSpec {
            jobs: 0,
            duration_ms: 0,
            ..ok.clone()
        };
        assert!(no_budget.validate().is_err());
        let no_tenant = ProfileSpec {
            tenant: String::new(),
            ..ok
        };
        assert!(no_tenant.validate().is_err());
    }

    #[test]
    fn validation_rejects_malformed_specs() {
        let mut s = moore_spec(AlgoSpec::Combining);
        s.periods.pop();
        assert!(s.validate().is_err());
        let mut s = moore_spec(AlgoSpec::Combining);
        s.offsets[0].pop();
        assert!(s.validate().is_err());
        let mut s = moore_spec(AlgoSpec::Combining);
        if let OpSpec::Alltoallv { sendcounts, .. } = &mut s.op {
            sendcounts.pop();
        }
        assert!(s.validate().is_err());
        assert!(JobSpec::decode(&[1, 2, 3]).is_err(), "truncated spec");
    }
}
