//! A blocking cartserve client: one connection, one tenant, one
//! outstanding request at a time.
//!
//! The client frames [`Request`](crate::proto::Request)s onto the socket
//! and parses [`Reply`](crate::proto::Reply) frames back, matching the
//! echoed request id. [`Client::submit`] surfaces admission control
//! directly — a full daemon queue comes back as [`Submission::Busy`] with
//! the daemon's retry-after hint, and [`Client::submit_retrying`] wraps
//! the obvious backoff loop for callers that just want the bytes.

use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::time::Duration;

use cartcomm_comm::transport::wire;
use cartcomm_comm::WirePool;

use crate::proto::{JobSpec, ProfileSpec, Reply, Request, PROTO_VERSION};

enum Stream {
    Uds(UnixStream),
    Tcp(TcpStream),
}

impl Stream {
    fn reader(&mut self) -> &mut dyn Read {
        match self {
            Stream::Uds(s) => s,
            Stream::Tcp(s) => s,
        }
    }

    fn writer(&mut self) -> &mut dyn Write {
        match self {
            Stream::Uds(s) => s,
            Stream::Tcp(s) => s,
        }
    }
}

/// The outcome of one submission attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job ran; `p` concatenated per-rank receive buffers.
    Done(Vec<u8>),
    /// The daemon's queue was full; retry after the hinted delay.
    Busy {
        /// Daemon's backoff hint in milliseconds.
        retry_after_ms: u32,
    },
}

/// A connected cartserve client for one tenant.
pub struct Client {
    stream: Stream,
    tenant: String,
    buf: Vec<u8>,
    pool: Arc<WirePool>,
    next_ctx: u32,
}

impl Client {
    /// Connect over a Unix-domain socket and handshake as `tenant`.
    pub fn connect_uds(path: impl AsRef<Path>, tenant: &str) -> io::Result<Client> {
        let s = UnixStream::connect(path)?;
        Self::handshake(Stream::Uds(s), tenant)
    }

    /// Connect over TCP and handshake as `tenant`.
    pub fn connect_tcp(addr: &str, tenant: &str) -> io::Result<Client> {
        let s = TcpStream::connect(addr)?;
        s.set_nodelay(true)?;
        Self::handshake(Stream::Tcp(s), tenant)
    }

    fn handshake(stream: Stream, tenant: &str) -> io::Result<Client> {
        let mut c = Client {
            stream,
            tenant: tenant.to_string(),
            buf: Vec::with_capacity(4096),
            pool: Arc::new(WirePool::new()),
            next_ctx: 1,
        };
        match c.roundtrip(&Request::Hello {
            tenant: tenant.to_string(),
        })? {
            Reply::HelloOk { version } if version == PROTO_VERSION => Ok(c),
            Reply::HelloOk { version } => Err(other(format!(
                "daemon speaks protocol v{version}, client v{PROTO_VERSION}"
            ))),
            r => Err(other(format!("unexpected hello reply: {r:?}"))),
        }
    }

    /// The tenant this connection submits as.
    pub fn tenant(&self) -> &str {
        &self.tenant
    }

    /// Submit one job. `payload` must hold the send buffers of all
    /// `spec.ranks()` ranks back to back.
    pub fn submit(&mut self, spec: &JobSpec, payload: &[u8]) -> io::Result<Submission> {
        let req = Request::Submit {
            tenant: self.tenant.clone(),
            spec: spec.clone(),
            payload: payload.to_vec(),
        };
        match self.roundtrip(&req)? {
            Reply::Result { payload } => Ok(Submission::Done(payload)),
            Reply::Busy { retry_after_ms } => Ok(Submission::Busy { retry_after_ms }),
            Reply::Err { message } => Err(other(message)),
            r => Err(other(format!("unexpected submit reply: {r:?}"))),
        }
    }

    /// Submit, sleeping out `BUSY` responses, up to `max_attempts`.
    pub fn submit_retrying(
        &mut self,
        spec: &JobSpec,
        payload: &[u8],
        max_attempts: usize,
    ) -> io::Result<Vec<u8>> {
        for _ in 0..max_attempts.max(1) {
            match self.submit(spec, payload)? {
                Submission::Done(out) => return Ok(out),
                Submission::Busy { retry_after_ms } => {
                    std::thread::sleep(Duration::from_millis(retry_after_ms.max(1) as u64));
                }
            }
        }
        Err(other("daemon stayed busy past the retry budget"))
    }

    /// Fetch the daemon's stats report (JSON).
    pub fn stats(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Stats)? {
            Reply::StatsOk { json } => Ok(json),
            r => Err(other(format!("unexpected stats reply: {r:?}"))),
        }
    }

    /// Liveness probe: the daemon echoes `payload`.
    pub fn ping(&mut self, payload: &[u8]) -> io::Result<Vec<u8>> {
        self.ping_info(payload).map(|(payload, _, _)| payload)
    }

    /// Liveness probe with daemon identity: the echoed payload plus the
    /// daemon's uptime in milliseconds and its build version.
    pub fn ping_info(&mut self, payload: &[u8]) -> io::Result<(Vec<u8>, u64, String)> {
        match self.roundtrip(&Request::Ping {
            payload: payload.to_vec(),
        })? {
            Reply::Pong {
                payload,
                uptime_ms,
                version,
            } => Ok((payload, uptime_ms, version)),
            r => Err(other(format!("unexpected ping reply: {r:?}"))),
        }
    }

    /// Start an attach-profiling session and block until the daemon sends
    /// the deferred `PROFILE_OK` — after `spec.jobs` jobs of the target
    /// tenant ran, or the duration budget expired. Returns the JSON
    /// summary and the (possibly empty) embedded Perfetto trace.
    pub fn profile(&mut self, spec: &ProfileSpec) -> io::Result<(String, Vec<u8>)> {
        match self.roundtrip(&Request::Profile { spec: spec.clone() })? {
            Reply::ProfileOk { json, trace } => Ok((json, trace)),
            Reply::Err { message } => Err(other(message)),
            r => Err(other(format!("unexpected profile reply: {r:?}"))),
        }
    }

    /// Fetch the daemon's OpenMetrics text document.
    pub fn metrics_text(&mut self) -> io::Result<String> {
        match self.roundtrip(&Request::Metrics)? {
            Reply::MetricsOk { text } => Ok(text),
            r => Err(other(format!("unexpected metrics reply: {r:?}"))),
        }
    }

    /// Ask the daemon to drain and stop. Returns once the drain is
    /// complete (`SHUTDOWN_OK` received).
    pub fn shutdown(&mut self) -> io::Result<()> {
        match self.roundtrip(&Request::Shutdown)? {
            Reply::ShutdownOk => Ok(()),
            r => Err(other(format!("unexpected shutdown reply: {r:?}"))),
        }
    }

    fn roundtrip(&mut self, req: &Request) -> io::Result<Reply> {
        let ctx = self.next_ctx;
        self.next_ctx = self.next_ctx.wrapping_add(1);
        let bytes = req.encode_frame(ctx);
        self.stream.writer().write_all(&bytes)?;
        self.stream.writer().flush()?;
        self.read_reply(ctx)
    }

    fn read_reply(&mut self, ctx: u32) -> io::Result<Reply> {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            while let Some((env, used)) = wire::decode_from(&self.buf, &self.pool) {
                self.buf.drain(..used);
                if env.ctx != ctx {
                    // Stale reply to an abandoned request; skip it.
                    continue;
                }
                return Reply::decode_env(&env).map_err(other);
            }
            let n = self.stream.reader().read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }
}

fn other(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}
